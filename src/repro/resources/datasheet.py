"""Datasheet resource numbers for the processor-side components.

The paper obtains "resource usage of the MicroBlaze processor and the
two LMB interface controllers ... from the Xilinx data sheet".  The
constants below follow the published Virtex-II Pro MicroBlaze v4-era
figures: a base core around 450 slices, three embedded 18×18
multipliers when the hardware multiplier option is enabled, and small
option-dependent increments for the barrel shifter and divider.
"""

from __future__ import annotations

from repro.resources.types import Resources

#: One Virtex-II Pro block RAM stores 18 kbit = 2 KB of data (+parity).
BRAM_BYTES = 2048

#: MicroBlaze base core (no optional units), Virtex-II Pro.
MICROBLAZE_BASE_RESOURCES = Resources(slices=450)

#: The hardware multiplier option consumes 3 embedded MULT18X18s
#: (32x32 product assembled from 18-bit partial products).
MULTIPLIER_OPTION = Resources(slices=30, mult18=3)

#: The barrel shifter option.
BARREL_SHIFTER_OPTION = Resources(slices=120)

#: The hardware divider option.
DIVIDER_OPTION = Resources(slices=150)

#: One LMB interface controller (instruction- or data-side).
LMB_CONTROLLER_RESOURCES = Resources(slices=14)

#: One FSL link (unidirectional FIFO + handshake), 16-deep, 32-bit.
FSL_LINK_RESOURCES = Resources(slices=24)


def microblaze_resources(
    use_hw_multiplier: bool = True,
    use_barrel_shifter: bool = True,
    use_hw_divider: bool = False,
) -> Resources:
    """Processor resources for a given configuration.

    Matches the knobs on :class:`repro.iss.cpu.CPUConfig` — the paper's
    point is precisely that these configuration choices shift the
    resource/performance trade-off.
    """
    total = MICROBLAZE_BASE_RESOURCES
    if use_hw_multiplier:
        total = total + MULTIPLIER_OPTION
    if use_barrel_shifter:
        total = total + BARREL_SHIFTER_OPTION
    if use_hw_divider:
        total = total + DIVIDER_OPTION
    return total
