"""Resource vector type shared by sysgen blocks and the estimator."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Resources:
    """FPGA resource usage: slices / BRAMs / embedded 18×18 multipliers."""

    slices: int = 0
    brams: int = 0
    mult18: int = 0

    def __add__(self, other: "Resources") -> "Resources":
        return Resources(
            self.slices + other.slices,
            self.brams + other.brams,
            self.mult18 + other.mult18,
        )

    def __mul__(self, n: int) -> "Resources":
        return Resources(self.slices * n, self.brams * n, self.mult18 * n)

    __rmul__ = __mul__

    def __str__(self) -> str:
        return f"{self.slices} slices / {self.brams} BRAM / {self.mult18} MULT18"


ZERO = Resources()
