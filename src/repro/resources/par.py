"""Place-and-route "actual" resource numbers.

The paper compares its rapid estimates against the actual usage read
from ISE ``.par`` reports.  Our equivalent: lower the peripheral to the
RTL netlist (the same netlist the low-level simulation runs), count the
cells the mapper would place — LUTs, flip-flops, carry muxes, embedded
multipliers, BRAM macros — and pack them into slices.  Constant
propagation during lowering (constant shifts and slices become wiring,
constant mux legs fold) makes the netlist counts come out slightly
below the blockwise estimates, the same direction Table I shows
(estimated 729 vs actual 721, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resources.datasheet import (
    FSL_LINK_RESOURCES,
    LMB_CONTROLLER_RESOURCES,
    microblaze_resources,
)
from repro.resources.estimator import DesignEstimate, program_brams
from repro.resources.types import Resources


def peripheral_actual(model) -> Resources:
    """Map-and-pack the peripheral netlist and report its resources."""
    from repro.rtl.kernel import Kernel
    from repro.rtl.lowering import lower_model

    kernel = Kernel()
    clk = kernel.add_clock("clk", 10)
    # FSL blocks need bound channels to lower; bind throwaways.
    from repro.bus.fsl import FSLChannel
    from repro.sysgen.blocks.fsl import FSLRead, FSLWrite

    rebind = []
    for block in model.blocks:
        if isinstance(block, (FSLRead, FSLWrite)) and block.channel is None:
            block.bind(FSLChannel(name="par_probe"))
            rebind.append(block)
    try:
        lowered = lower_model(model, kernel, clk, name=f"{model.name}_par")
    finally:
        for block in rebind:
            block.channel = None
    stats = lowered.netlist.stats
    return Resources(slices=stats.slices, brams=stats.brams,
                     mult18=stats.mult18)


@dataclass(frozen=True)
class ParReport:
    """Estimated vs actual, per Table I's paired columns."""

    estimated: Resources
    actual: Resources

    def row(self) -> str:
        e, a = self.estimated, self.actual
        return (
            f"{e.slices} / {a.slices} slices   "
            f"{e.brams} / {a.brams} BRAM   "
            f"{e.mult18} / {a.mult18} MULT18"
        )


def design_actual(
    model=None,
    program=None,
    cpu_config=None,
    n_fsl_links: int = 0,
) -> Resources:
    """Actual usage of the complete design: datasheet cores plus the
    mapped peripheral netlist plus program BRAMs."""
    if cpu_config is not None:
        total = microblaze_resources(
            use_hw_multiplier=cpu_config.use_hw_multiplier,
            use_barrel_shifter=cpu_config.use_barrel_shifter,
            use_hw_divider=cpu_config.use_hw_divider,
        )
    else:
        total = microblaze_resources()
    total = total + 2 * LMB_CONTROLLER_RESOURCES
    total = total + n_fsl_links * FSL_LINK_RESOURCES
    if model is not None:
        total = total + peripheral_actual(model)
    if program is not None:
        total = total + Resources(brams=program_brams(program))
    return total


def par_report(estimate: DesignEstimate, actual: Resources) -> ParReport:
    return ParReport(estimated=estimate.total, actual=actual)
