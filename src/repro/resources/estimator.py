"""Rapid design-level resource estimation (paper Section III-C).

``estimate_design`` composes the four contributions the paper lists:
processor datasheet numbers, LMB controllers, the System Generator
resource estimate of the customized peripherals, and the BRAMs holding
the software program (program size / BRAM capacity, the paper's
``mb-objdump`` flow)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.resources.datasheet import (
    BRAM_BYTES,
    FSL_LINK_RESOURCES,
    LMB_CONTROLLER_RESOURCES,
    microblaze_resources,
)
from repro.resources.types import Resources


def program_brams(program) -> int:
    """Number of BRAMs needed to store a linked program.

    Counts initialized image plus .bss plus stack — everything that
    must reside in the on-chip memory at run time.
    """
    footprint = program.memory_size or program.memory_required
    return max(1, -(-footprint // BRAM_BYTES))


@dataclass(frozen=True)
class DesignEstimate:
    """Per-source breakdown of a complete design's resource usage."""

    processor: Resources
    lmb_controllers: Resources
    fsl_links: Resources
    peripheral: Resources
    program_brams: int

    @property
    def total(self) -> Resources:
        return (
            self.processor
            + self.lmb_controllers
            + self.fsl_links
            + self.peripheral
            + Resources(brams=self.program_brams)
        )

    def report(self) -> str:
        rows = [
            ("MicroBlaze core", self.processor),
            ("LMB controllers", self.lmb_controllers),
            ("FSL links", self.fsl_links),
            ("peripheral", self.peripheral),
            ("program BRAMs", Resources(brams=self.program_brams)),
            ("TOTAL", self.total),
        ]
        width = max(len(name) for name, _ in rows)
        return "\n".join(f"{name:<{width}}  {res}" for name, res in rows)


def estimate_design(
    model=None,
    program=None,
    cpu_config=None,
    n_fsl_links: int = 0,
) -> DesignEstimate:
    """Estimate the complete design per Section III-C.

    Parameters
    ----------
    model:
        The :class:`repro.sysgen.Model` of the customized hardware
        peripherals (None for pure-software designs).
    program:
        The linked :class:`repro.asm.linker.Program` (None to skip the
        program-BRAM term).
    cpu_config:
        :class:`repro.iss.cpu.CPUConfig` selecting the processor
        options; defaults to the standard configuration.
    n_fsl_links:
        Number of FSL links connecting processor and peripherals
        (each is a FIFO instance of its own).
    """
    if cpu_config is not None:
        processor = microblaze_resources(
            use_hw_multiplier=cpu_config.use_hw_multiplier,
            use_barrel_shifter=cpu_config.use_barrel_shifter,
            use_hw_divider=cpu_config.use_hw_divider,
        )
    else:
        processor = microblaze_resources()
    peripheral = model.resources() if model is not None else Resources()
    return DesignEstimate(
        processor=processor,
        lmb_controllers=2 * LMB_CONTROLLER_RESOURCES,
        fsl_links=n_fsl_links * FSL_LINK_RESOURCES,
        peripheral=peripheral,
        program_brams=program_brams(program) if program is not None else 0,
    )
