"""Rapid resource estimation (paper Section III-C).

For Xilinx FPGAs the paper tracks three resource classes: logic
*slices*, block RAMs (*BRAMs*) and embedded 18×18 *multipliers*.  Four
sources contribute to a complete design's usage:

1. the MicroBlaze processor core (datasheet numbers),
2. the two LMB interface controllers (datasheet numbers),
3. the customized hardware peripherals (per-block estimates from the
   System Generator models, summed — our ``Block.resources()``),
4. the BRAMs storing the software program (program size from the
   linker, divided by the 2 KB BRAM capacity — the paper's
   ``mb-objdump`` flow).

:func:`estimate_design` combines all four; :mod:`repro.resources.par`
produces the "actual" numbers from the lowered netlist the way the
paper reads them out of ISE ``.par`` reports.
"""

from repro.resources.types import Resources
from repro.resources.datasheet import (
    BRAM_BYTES,
    FSL_LINK_RESOURCES,
    LMB_CONTROLLER_RESOURCES,
    MICROBLAZE_BASE_RESOURCES,
    microblaze_resources,
)
from repro.resources.estimator import DesignEstimate, estimate_design, program_brams

__all__ = [
    "Resources",
    "estimate_design",
    "program_brams",
    "DesignEstimate",
    "microblaze_resources",
    "MICROBLAZE_BASE_RESOURCES",
    "LMB_CONTROLLER_RESOURCES",
    "FSL_LINK_RESOURCES",
    "BRAM_BYTES",
]
