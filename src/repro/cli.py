"""Command-line toolchain.

Console entry points mirroring the Xilinx tool names the paper's flow
uses:

* ``mb32-cc``      — compile mini-C to assembly or a linked image
* ``mb32-run``     — execute a program on the cycle-accurate ISS
* ``mb32-objdump`` — disassemble a linked image / show symbols
* ``mb32-gdbserver`` — serve a program over the GDB remote protocol
* ``mb32-dse``     — run a design-space sweep from a JSON spec file
* ``mb32-conformance`` — fuzz the co-simulation execution modes against
  the per-cycle reference and check the golden-trace corpus
* ``mb32-profile`` — run a program or co-simulation under telemetry
  (Chrome trace, VCD, metrics snapshot, region/phase profilers)
* ``mb32-faultsim`` — seeded fault-injection campaigns with detection
  and rollback recovery over a hardware/software partition
* ``mb32-farm``    — co-simulation as a service: serve an asyncio job
  farm, submit jobs to it, inspect it, drain it

Images are stored in a simple container: a JSON header line (entry,
sizes, symbols) followed by the raw memory image — enough for the
tools to round-trip programs through files.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import dataclass

from repro.asm import assemble, disassemble_program, link
from repro.asm.linker import Program
from repro.iss.cpu import CPUConfig
from repro.iss.run import make_cpu
from repro.mcc import CompileOptions, build_executable, compile_c

MAGIC = "MB32IMG1"


# ----------------------------------------------------------------------
# Image container
# ----------------------------------------------------------------------
def save_image(program: Program, path: str) -> None:
    header = {
        "magic": MAGIC,
        "entry": program.entry,
        "text_size": program.text_size,
        "data_size": program.data_size,
        "bss_size": program.bss_size,
        "stack_size": program.stack_size,
        "memory_size": program.memory_size,
        "symbols": program.symbols,
    }
    with open(path, "wb") as fh:
        fh.write(json.dumps(header).encode("utf-8") + b"\n")
        fh.write(program.image)


def load_image(path: str) -> Program:
    with open(path, "rb") as fh:
        header_line = fh.readline()
        image = fh.read()
    header = json.loads(header_line)
    if header.get("magic") != MAGIC:
        raise ValueError(f"{path}: not an MB32 image")
    return Program(
        image=image,
        symbols={k: int(v) for k, v in header["symbols"].items()},
        entry=header["entry"],
        text_size=header["text_size"],
        data_size=header["data_size"],
        bss_size=header["bss_size"],
        stack_size=header["stack_size"],
        memory_size=header["memory_size"],
    )


@dataclass(frozen=True)
class TargetFlags:
    """Single source of truth for the processor-target CLI flags.

    Both the compiler's :class:`CompileOptions` and the ISS's
    :class:`CPUConfig` derive from the same record, so the two can
    never disagree on a target flag (a mismatch traps at the first
    offending instruction instead of miscomputing).
    """

    hw_multiplier: bool = True
    hw_divider: bool = False
    hw_barrel_shifter: bool = True
    register_locals: bool = True

    @classmethod
    def from_args(cls, args: argparse.Namespace) -> "TargetFlags":
        return cls(
            hw_multiplier=not args.no_mult,
            hw_divider=args.hw_div,
            hw_barrel_shifter=not args.no_barrel,
            register_locals=not args.no_regalloc,
        )

    def compile_options(self) -> CompileOptions:
        return CompileOptions(
            hw_multiplier=self.hw_multiplier,
            hw_divider=self.hw_divider,
            hw_barrel_shifter=self.hw_barrel_shifter,
            register_locals=self.register_locals,
        )

    def cpu_config(self) -> CPUConfig:
        return CPUConfig(
            use_hw_multiplier=self.hw_multiplier,
            use_hw_divider=self.hw_divider,
            use_barrel_shifter=self.hw_barrel_shifter,
        )


def _add_target_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-mult", action="store_true",
                        help="target a processor without the hardware "
                             "multiplier")
    parser.add_argument("--hw-div", action="store_true",
                        help="target a processor with the hardware divider")
    parser.add_argument("--no-barrel", action="store_true",
                        help="target a processor without the barrel shifter")
    parser.add_argument("--no-regalloc", action="store_true",
                        help="disable register allocation of locals")


def _read_source(path: str) -> str:
    """Read a source file, with ``-`` denoting stdin."""
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as fh:
        return fh.read()


# ----------------------------------------------------------------------
# mb32-cc
# ----------------------------------------------------------------------
def cc_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mb32-cc", description="mini-C compiler for MB32"
    )
    parser.add_argument("source", help="mini-C source file ('-' for stdin)")
    parser.add_argument("-o", "--output", help="output file")
    parser.add_argument("-S", action="store_true",
                        help="emit assembly text instead of a linked image")
    _add_target_flags(parser)
    args = parser.parse_args(argv)

    text = _read_source(args.source)
    options = TargetFlags.from_args(args).compile_options()
    try:
        if args.S:
            asm = compile_c(text, options)
            if args.output:
                with open(args.output, "w", encoding="utf-8") as fh:
                    fh.write(asm)
            else:
                sys.stdout.write(asm)
            return 0
        program = build_executable(text, options)
    except Exception as exc:
        print(f"mb32-cc: error: {exc}", file=sys.stderr)
        return 1
    out = args.output or "a.img"
    save_image(program, out)
    print(f"mb32-cc: wrote {out} ({program.load_size} bytes, "
          f"entry {program.entry:#x})")
    return 0


# ----------------------------------------------------------------------
# mb32-as
# ----------------------------------------------------------------------
def as_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mb32-as", description="MB32 assembler + linker"
    )
    parser.add_argument("sources", nargs="+",
                        help="assembly files ('-' for stdin)")
    parser.add_argument("-o", "--output", default="a.img")
    parser.add_argument("--entry", default="_start")
    args = parser.parse_args(argv)
    try:
        modules = [
            assemble(_read_source(p),
                     name="<stdin>" if p == "-" else p)
            for p in args.sources
        ]
        program = link(modules, entry_symbol=args.entry)
    except Exception as exc:
        print(f"mb32-as: error: {exc}", file=sys.stderr)
        return 1
    save_image(program, args.output)
    print(f"mb32-as: wrote {args.output} ({program.load_size} bytes)")
    return 0


# ----------------------------------------------------------------------
# mb32-run
# ----------------------------------------------------------------------
def run_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mb32-run", description="run an MB32 image on the ISS"
    )
    parser.add_argument("image")
    parser.add_argument("--max-cycles", type=int, default=50_000_000)
    parser.add_argument("--stats", action="store_true",
                        help="print execution statistics")
    parser.add_argument("--trace", type=int, metavar="N", default=0,
                        help="print the first N retired instructions")
    _add_target_flags(parser)
    args = parser.parse_args(argv)

    program = load_image(args.image)
    cpu = make_cpu(program, config=TargetFlags.from_args(args).cpu_config())
    tracer = None
    if args.trace:
        from repro.iss.trace import InstructionTracer

        tracer = InstructionTracer(cpu, limit=args.trace).install()
    cpu.run(max_cycles=args.max_cycles)
    if tracer is not None:
        print(tracer.text())
    if cpu.mem.console.text:
        sys.stdout.write(cpu.mem.console.text)
        if not cpu.mem.console.text.endswith("\n"):
            sys.stdout.write("\n")
    if args.stats:
        print(cpu.stats.summary())
        print(f"simulated time: {cpu.simulated_time_s() * 1e6:.1f} us "
              f"at {cpu.config.frequency_hz / 1e6:.0f} MHz")
    if cpu.exit_code is None:
        print("mb32-run: program did not exit "
              f"(stopped after {cpu.cycle} cycles)", file=sys.stderr)
        return 2
    print(f"mb32-run: exit code {cpu.exit_code} ({cpu.cycle} cycles)")
    return 0 if cpu.exit_code == 0 else min(max(cpu.exit_code, 0), 125)


# ----------------------------------------------------------------------
# mb32-objdump
# ----------------------------------------------------------------------
def objdump_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mb32-objdump", description="disassemble an MB32 image"
    )
    parser.add_argument("image")
    parser.add_argument("-t", "--symbols", action="store_true",
                        help="print the symbol table instead")
    args = parser.parse_args(argv)
    program = load_image(args.image)
    try:
        if args.symbols:
            for name, addr in sorted(program.symbols.items(),
                                     key=lambda kv: kv[1]):
                print(f"{addr:08x}  {name}")
            return 0
        print(disassemble_program(program.image, 0, program.text_size,
                                  symbols=program.symbols))
    except BrokenPipeError:  # e.g. piped into `head`
        sys.stderr.close()
    return 0


# ----------------------------------------------------------------------
# mb32-gdbserver
# ----------------------------------------------------------------------
def gdbserver_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mb32-gdbserver",
        description="serve an MB32 image over the GDB remote protocol",
    )
    parser.add_argument("image")
    parser.add_argument(
        "--port", type=int, default=0,
        help="TCP port to bind (default 0 = ephemeral: the kernel picks "
             "a free port, so parallel CI jobs never race)",
    )
    parser.add_argument(
        "--port-file", metavar="FILE",
        help="write the actually bound port number to FILE (the "
             "machine-readable handshake scripts poll instead of "
             "parsing stdout)",
    )
    _add_target_flags(parser)
    args = parser.parse_args(argv)

    from repro.gdb import Debugger, GdbServer

    program = load_image(args.image)
    cpu = make_cpu(program, config=TargetFlags.from_args(args).cpu_config())
    server = GdbServer(Debugger(cpu, program), port=args.port)
    host, port = server.address[0], server.address[1]
    print(f"mb32-gdbserver: listening on {host}:{port}")
    # a stable, single-token machine-readable line (also on stdout)
    print(f"mb32-gdbserver: port {port}", flush=True)
    if args.port_file:
        with open(args.port_file, "w", encoding="utf-8") as fh:
            fh.write(f"{port}\n")
    try:
        server.serve_one()
    except KeyboardInterrupt:
        server.stop()
        print("mb32-gdbserver: interrupted — shut down cleanly")
        return 0
    print(f"mb32-gdbserver: session ended "
          f"(pc={cpu.pc:#010x}, exit={cpu.exit_code})")
    return 0


# ----------------------------------------------------------------------
# mb32-dse
# ----------------------------------------------------------------------
def _load_sweep_spec(path: str):
    """Parse an ``mb32-dse`` spec file into (specs, options).

    The file is JSON with two ways to name points:

    * ``"points"`` — explicit :class:`DesignSpec` records
      (``name``/``factory``/``params``),
    * ``"generate"`` — shorthand for the built-in families, e.g.
      ``{"app": "cordic", "ps": [0, 2, 4], "iters": 24, "ndata": 32}``
      or ``{"app": "matmul", "blocks": [0, 2, 4], "matn": 16}``.

    Top-level ``workers``/``timeout_s``/``retries``/``cache``/
    ``constraints`` become sweep options (CLI flags override them).
    """
    from repro.cosim.partition import DesignSpec

    data = json.loads(_read_source(path))
    if not isinstance(data, dict):
        raise ValueError("spec file must be a JSON object")
    points = data.get("points", [])
    if not isinstance(points, list):
        raise ValueError('"points" must be a JSON array of point objects')
    specs = []
    for index, point in enumerate(points):
        if not isinstance(point, dict):
            raise ValueError(
                f'"points"[{index}] must be an object with '
                f'"name"/"factory"/"params", got {type(point).__name__}')
        try:
            specs.append(DesignSpec.from_dict(point))
        except KeyError as exc:
            raise ValueError(
                f'"points"[{index}] is missing required key {exc}') from exc
    generate = data.get("generate")
    if generate is not None:
        if not isinstance(generate, dict):
            raise ValueError('"generate" must be a JSON object')
        params = dict(generate)
        app = params.pop("app", None)
        if app == "cordic":
            from repro.apps.cordic.design import cordic_design_specs

            if "ps" in params:
                params["ps"] = tuple(params["ps"])
            specs += cordic_design_specs(**params)
        elif app == "matmul":
            from repro.apps.matmul.design import matmul_design_specs

            if "blocks" in params:
                params["blocks"] = tuple(params["blocks"])
            specs += matmul_design_specs(**params)
        else:
            raise ValueError(
                f"unknown generate.app {app!r} (expected 'cordic' or "
                f"'matmul')"
            )
    if not specs:
        raise ValueError("spec file names no design points")
    options = {
        "workers": data.get("workers"),
        "timeout_s": data.get("timeout_s"),
        "retries": data.get("retries"),
        "cache": data.get("cache"),
        "constraints": data.get("constraints", {}),
    }
    return specs, options


def dse_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mb32-dse",
        description="run a design-space sweep from a JSON spec file",
    )
    parser.add_argument("spec", help="sweep spec file ('-' for stdin)")
    parser.add_argument("-o", "--output", metavar="FILE",
                        help="write the JSON report here")
    parser.add_argument("--markdown", metavar="FILE",
                        help="also write a Markdown report")
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (0 = in-process sequential)")
    parser.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-point wall-clock budget in seconds")
    parser.add_argument("--retries", type=int, default=None,
                        help="extra attempts for timeout/error points")
    parser.add_argument("--retry-backoff", type=float, default=0.0,
                        metavar="S",
                        help="base seconds of seeded jittered exponential "
                             "backoff between retries (0 = immediate); "
                             "the schedule is recorded per point")
    parser.add_argument("--cache", metavar="DIR",
                        help="on-disk result cache directory")
    parser.add_argument("--journal", metavar="FILE",
                        help="JSON-lines resume journal: every completed "
                             "point is flushed here as it lands")
    parser.add_argument("--resume", action="store_true",
                        help="replay completed points from --journal and "
                             "evaluate only the rest (a killed sweep "
                             "continues where it stopped)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore any cache named in the spec file")
    parser.add_argument("--telemetry", action="store_true",
                        help="run every point instrumented and attach its "
                             "metric snapshot to the per-point report "
                             "record (cache hits carry none)")
    parser.add_argument("--batch", nargs="?", const=-1, type=int,
                        default=None, metavar="WIDTH",
                        help="evaluate structurally identical points in "
                             "lockstep on the batched vector engine, up to "
                             "WIDTH lanes at a time (default 32); "
                             "incompatible with --workers/--retries/"
                             "--journal/--telemetry")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-point progress line")
    args = parser.parse_args(argv)

    from repro.cosim.report import format_sweep, sweep_to_json, \
        sweep_to_markdown
    from repro.cosim.sweep import sweep
    from repro.cosim.sweep_batched import DEFAULT_BATCH_WIDTH, sweep_batched

    try:
        specs, options = _load_sweep_spec(args.spec)
    except (OSError, ValueError, KeyError) as exc:
        print(f"mb32-dse: spec error: {exc}", file=sys.stderr)
        return 2

    workers = args.workers if args.workers is not None else \
        int(options["workers"] or 0)
    timeout_s = args.timeout if args.timeout is not None else \
        options["timeout_s"]
    retries = args.retries if args.retries is not None else \
        int(options["retries"] or 0)
    cache_dir = None if args.no_cache else (args.cache or options["cache"])
    if args.resume and not args.journal:
        print("mb32-dse: spec error: --resume needs --journal FILE",
              file=sys.stderr)
        return 2
    batch_width = args.batch
    if batch_width == -1:
        batch_width = DEFAULT_BATCH_WIDTH
    if batch_width is not None and (
        workers > 0 or retries > 0 or args.journal or args.telemetry
    ):
        print("mb32-dse: spec error: --batch is incompatible with "
              "--workers/--retries/--journal/--telemetry (those are "
              "scalar-sweep features)", file=sys.stderr)
        return 2

    def progress(p):
        if args.quiet:
            return
        last = p.last.point.name if p.last is not None else ""
        status = p.last.status if p.last is not None else ""
        print(
            f"mb32-dse: [{p.done}/{p.total}] {last}: {status}"
            f"{' (cached)' if p.last is not None and p.last.cache_hit else ''}"
            f" — {p.cache_hits} cache hits, {p.active_workers} active, "
            f"{p.cycles_per_second:,.0f} cyc/s aggregate",
            file=sys.stderr,
        )

    try:
        if batch_width is not None:
            report = sweep_batched(
                specs,
                batch_width=batch_width,
                timeout_s=timeout_s,
                cache_dir=cache_dir,
                progress=progress,
            )
        else:
            report = sweep(
                specs,
                workers=workers,
                timeout_s=timeout_s,
                retries=retries,
                retry_backoff_s=args.retry_backoff,
                cache_dir=cache_dir,
                journal=args.journal,
                resume=args.resume,
                progress=progress,
                telemetry=args.telemetry,
            )
    except ValueError as exc:  # journal/spec mismatch on --resume
        print(f"mb32-dse: spec error: {exc}", file=sys.stderr)
        return 2

    constraints = {
        key: options["constraints"][spec_key]
        for key, spec_key in (
            ("max_slices", "max_slices"),
            ("max_brams", "max_brams"),
            ("max_mult18", "max_mult18"),
        )
        if spec_key in options["constraints"]
    }
    print(format_sweep(report))
    if constraints and report.ok:
        winner = report.best(**constraints)
        if winner.ok:
            print(f"\nfastest within {constraints}: {winner.point.name} "
                  f"({winner.cycles} cycles, {winner.slices} slices)")
    payload = sweep_to_json(report)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
        print(f"mb32-dse: wrote {args.output}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as fh:
            fh.write(sweep_to_markdown(report))
        print(f"mb32-dse: wrote {args.markdown}")
    if not args.output and not args.markdown:
        print(payload)
    return 0 if not report.failed else 1


# ----------------------------------------------------------------------
# mb32-profile
# ----------------------------------------------------------------------
def _add_profile_output_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="FILE",
                        help="write a Chrome trace-event JSON file "
                             "('-' for stdout) — open in Perfetto or "
                             "chrome://tracing")
    parser.add_argument("--vcd", metavar="FILE",
                        help="write a value-change dump of pc, stall "
                             "state and FIFO occupancies")
    parser.add_argument("--metrics", metavar="FILE",
                        help="write the metrics snapshot as JSON "
                             "('-' for stdout)")
    parser.add_argument("--regions", action="store_true",
                        help="profile simulated cycles by program "
                             "symbol/region")
    parser.add_argument("--phases", action="store_true",
                        help="time simulator wall clock by phase "
                             "(CPU step / block step / fast-forward scan)")
    parser.add_argument("--per-cycle", action="store_true",
                        help="use per-cycle co-simulation instead of the "
                             "fast-forward kernel (co-sim apps only)")
    parser.add_argument("--max-trace-events", type=int, default=1_000_000,
                        metavar="N",
                        help="cap Chrome trace records to bound memory "
                             "(default 1000000; excess is counted as "
                             "dropped)")


def _profile_preflight(args: argparse.Namespace) -> str | None:
    """Validate input/output paths before any (possibly long) run.

    Returns a one-line error message, or ``None`` when everything is
    usable — ``mb32-profile`` turns a message into exit code 2 so a
    bad path fails in milliseconds instead of after the simulation.
    """
    if args.app == "run" and args.source != "-":
        if not os.path.exists(args.source):
            return f"image or source file not found: {args.source}"
        if os.path.isdir(args.source):
            return f"{args.source} is a directory, not a program"
        if not os.access(args.source, os.R_OK):
            return f"cannot read {args.source}: permission denied"
    for flag in ("trace", "vcd", "metrics"):
        path = getattr(args, flag, None)
        if not path or path == "-":
            continue
        parent = os.path.dirname(path) or "."
        if not os.path.isdir(parent):
            return (f"--{flag}: directory does not exist: "
                    f"{parent}")
        if os.path.isdir(path):
            return f"--{flag}: {path} is a directory"
        probe = path if os.path.exists(path) else parent
        if not os.access(probe, os.W_OK):
            return f"--{flag}: cannot write {path}: permission denied"
    return None


def profile_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mb32-profile",
        description="run a program or co-simulation under telemetry: "
                    "Chrome trace, VCD, metrics snapshot, profilers",
    )
    sub = parser.add_subparsers(dest="app", required=True)

    run_p = sub.add_parser(
        "run", help="profile a mini-C program or image on the bare ISS")
    run_p.add_argument("source",
                       help="mini-C source ('-' for stdin) or a .img image")
    run_p.add_argument("--max-cycles", type=int, default=50_000_000)
    _add_target_flags(run_p)

    cordic_p = sub.add_parser(
        "cordic", help="profile a CORDIC co-simulation design point")
    cordic_p.add_argument("--p", type=int, default=4,
                          help="pipeline PEs (0 = pure software)")
    cordic_p.add_argument("--iters", type=int, default=24)
    cordic_p.add_argument("--ndata", type=int, default=32)
    cordic_p.add_argument("--fifo-depth", type=int, default=16)

    matmul_p = sub.add_parser(
        "matmul", help="profile a matmul co-simulation design point")
    matmul_p.add_argument("--block", type=int, default=4,
                          help="hardware block size (0 = pure software)")
    matmul_p.add_argument("--matn", type=int, default=16)
    matmul_p.add_argument("--fifo-depth", type=int, default=16)

    for p in (run_p, cordic_p, matmul_p):
        _add_profile_output_flags(p)
    args = parser.parse_args(argv)

    error = _profile_preflight(args)
    if error is not None:
        print(f"mb32-profile: error: {error}", file=sys.stderr)
        return 2

    import contextlib

    from repro.apps.common import VerificationError, run_software_only
    from repro.cosim.environment import CoSimDeadlock
    from repro.telemetry import Telemetry, telemetry_scope
    from repro.telemetry.export import ChromeTraceExporter, CosimVCDExporter

    # -- build the target ----------------------------------------------
    if args.app == "run":
        flags = TargetFlags.from_args(args)
        try:
            if args.source != "-" and args.source.endswith(".img"):
                program = load_image(args.source)
            else:
                program = build_executable(
                    _read_source(args.source), flags.compile_options())
        except Exception as exc:
            print(f"mb32-profile: error: {exc}", file=sys.stderr)
            return 1
        name = args.source
        channels = ()

        def runner():
            result, _cpu = run_software_only(
                program, flags.cpu_config(), max_cycles=args.max_cycles)
            return result
    elif args.app == "cordic":
        from repro.apps.cordic.design import CordicDesign

        design = CordicDesign(p=args.p, iters=args.iters, ndata=args.ndata,
                              fifo_depth=args.fifo_depth,
                              fast_forward=not args.per_cycle)
        program, name = design.program, design.name
        channels = design.mb.channels() if design.mb is not None else ()
        runner = design.run
    else:
        from repro.apps.matmul.design import MatmulDesign

        design = MatmulDesign(block=args.block, matn=args.matn,
                              fifo_depth=args.fifo_depth,
                              fast_forward=not args.per_cycle)
        program, name = design.program, design.name
        channels = design.mb.channels() if design.mb is not None else ()
        runner = design.run

    # -- wire telemetry + exporters, then run --------------------------
    telemetry = Telemetry()
    if args.regions:
        telemetry.enable_regions(program)
    if args.phases:
        telemetry.enable_phases()
    tracer = None
    if args.trace:
        tracer = ChromeTraceExporter(telemetry.bus,
                                     max_events=args.max_trace_events)

    status = 0
    with contextlib.ExitStack() as stack:
        vcd = None
        if args.vcd:
            vcd_fh = stack.enter_context(
                open(args.vcd, "w", encoding="utf-8"))
            vcd = CosimVCDExporter(telemetry.bus, vcd_fh, channels)
        try:
            with telemetry_scope(telemetry):
                result = runner()
        except (VerificationError, CoSimDeadlock) as exc:
            print(f"mb32-profile: {name}: {type(exc).__name__}: {exc}",
                  file=sys.stderr)
            return 1

    # -- emit ----------------------------------------------------------
    if tracer is not None:
        if args.trace == "-":
            tracer.write(sys.stdout)
        else:
            with open(args.trace, "w", encoding="utf-8") as fh:
                tracer.write(fh)
            print(f"mb32-profile: wrote {args.trace} "
                  f"({len(tracer.trace_events())} trace events, "
                  f"{tracer.dropped} dropped)", file=sys.stderr)
    if vcd is not None:
        print(f"mb32-profile: wrote {args.vcd} ({vcd.changes} value "
              f"changes)", file=sys.stderr)

    snapshot = telemetry.snapshot(result)
    if args.metrics:
        payload = json.dumps(snapshot, indent=2, sort_keys=True)
        if args.metrics == "-":
            print(payload)
        else:
            with open(args.metrics, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            print(f"mb32-profile: wrote {args.metrics}", file=sys.stderr)
    else:
        print(f"mb32-profile: {name}: exit {result.exit_code} — "
              f"{result.cycles} cycles, {result.instructions} "
              f"instructions, {result.stall_cycles} stalls "
              f"({result.cycles_per_wall_second:,.0f} cyc/s)")
        stalls = snapshot.get("stalls_by_channel", {})
        if stalls:
            for channel, cycles in sorted(stalls.items()):
                print(f"  stall {channel}: {cycles} cycles")
        ff = snapshot.get("fast_forward")
        if ff and ff.get("windows"):
            print(f"  fast-forward: {ff['windows']} windows, "
                  f"{ff['skipped_cycles']} cycles "
                  f"({100.0 * ff['skip_ratio']:.1f}% skipped)")
        if telemetry.regions is not None:
            print(telemetry.regions.text())
        if telemetry.phases is not None:
            print(telemetry.phases.text(result.wall_seconds))
    if result.exit_code is None:
        print(f"mb32-profile: {name}: did not terminate", file=sys.stderr)
        status = 2
    return status


# ----------------------------------------------------------------------
# mb32-conformance
# ----------------------------------------------------------------------
def conformance_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mb32-conformance",
        description="differential conformance fuzzing of the "
                    "co-simulation execution modes",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="scenario-generator seed (default 0)")
    parser.add_argument("--count", type=int, default=50, metavar="N",
                        help="number of random scenarios to check "
                             "(default 50; 0 = corpus check only)")
    parser.add_argument("--family", choices=("single", "multi"),
                        default="single",
                        help="scenario family: 'single' fuzzes one CPU "
                             "with a random hardware pipeline, 'multi' "
                             "fuzzes 2-4 CPUs over pipeline/ring/mesh "
                             "FSL topologies (default single)")
    parser.add_argument("--engine", choices=("auto", "compiled",
                                             "interpreter"),
                        default="auto",
                        help="sysgen execution engine for every run "
                             "(default auto)")
    parser.add_argument("--modes", default=None, metavar="M1,M2,...",
                        help="execution modes to diff against per_cycle "
                             "(default: all)")
    parser.add_argument("--corpus", metavar="DIR",
                        help="golden-trace corpus directory to check "
                             "(or write, with --bless)")
    parser.add_argument("--bless", action="store_true",
                        help="(re)write golden traces for the pinned "
                             "scenarios instead of checking them")
    parser.add_argument("--pin", default=None, metavar="I1,I2,...",
                        help="scenario indexes to bless into the corpus "
                             "(default: 0..count-1)")
    parser.add_argument("-o", "--output", metavar="FILE",
                        help="write the JSON report here")
    parser.add_argument("--max-cycles", type=int, default=60_000,
                        help="per-scenario cycle budget (default 60000)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip shrinking divergent scenarios")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the per-scenario progress line")
    args = parser.parse_args(argv)

    from repro.conformance import (
        ALL_MODES,
        ConformanceReport,
        MultiScenarioGenerator,
        ScenarioGenerator,
        bless_golden,
        check_golden,
        check_scenario,
        shrink_scenario,
    )
    from repro.cosim.report import (
        conformance_to_json,
        format_conformance,
        format_drift,
    )

    if args.modes is None:
        modes = ALL_MODES
    else:
        modes = tuple(m.strip() for m in args.modes.split(",") if m.strip())
        unknown = [m for m in modes if m not in ALL_MODES]
        if unknown:
            print(f"mb32-conformance: unknown mode(s) "
                  f"{', '.join(unknown)}; choose from {', '.join(ALL_MODES)}",
                  file=sys.stderr)
            return 2
        if not modes:
            print("mb32-conformance: --modes names no modes",
                  file=sys.stderr)
            return 2
    if args.count < 0:
        print("mb32-conformance: --count must be >= 0", file=sys.stderr)
        return 2
    if args.bless and not args.corpus:
        print("mb32-conformance: --bless needs --corpus DIR",
              file=sys.stderr)
        return 2

    generator_cls = (MultiScenarioGenerator if args.family == "multi"
                     else ScenarioGenerator)
    generator = generator_cls(seed=args.seed, max_cycles=args.max_cycles)

    if args.pin is not None:
        try:
            pinned = [int(p) for p in args.pin.split(",") if p.strip()]
        except ValueError:
            print(f"mb32-conformance: --pin must be a comma-separated "
                  f"index list, got {args.pin!r}", file=sys.stderr)
            return 2
    else:
        pinned = list(range(args.count))

    if args.bless:
        scenarios = [generator.scenario(i) for i in pinned]
        if not scenarios:
            print("mb32-conformance: nothing to bless (use --count or "
                  "--pin)", file=sys.stderr)
            return 2
        written = bless_golden(args.corpus, scenarios)
        for path in written:
            print(f"mb32-conformance: blessed {path}")
        return 0

    failed = False

    if args.corpus:
        entries = check_golden(args.corpus, modes=modes)
        if not entries:
            print(f"mb32-conformance: no golden traces in {args.corpus}",
                  file=sys.stderr)
            return 2
        print(format_drift(entries))
        if any(not e.ok for e in entries):
            failed = True

    report = ConformanceReport(seed=args.seed, modes=modes)
    if args.count > 0:
        for index in range(args.count):
            scenario = generator.scenario(index)
            verdict = check_scenario(scenario, modes, engine=args.engine)
            if not verdict.ok and not verdict.build_error \
                    and not args.no_shrink:
                failing = tuple(verdict.divergences)
                verdict.shrunk = shrink_scenario(scenario, failing)
            report.verdicts.append(verdict)
            if not args.quiet:
                status = (verdict.reference.status if verdict.reference
                          else "build-error")
                tag = "ok" if verdict.ok else "DIVERGED"
                print(f"mb32-conformance: [{index + 1}/{args.count}] "
                      f"{scenario.name}: {tag} ({status})",
                      file=sys.stderr)
        print(format_conformance(report))
        if not report.ok:
            failed = True

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(conformance_to_json(report) + "\n")
        print(f"mb32-conformance: wrote {args.output}")
    return 1 if failed else 0


# ----------------------------------------------------------------------
# mb32-faultsim
# ----------------------------------------------------------------------
def faultsim_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mb32-faultsim",
        description="run a seeded fault-injection campaign against a "
                    "hardware/software partition and classify every "
                    "trial (masked / sdc / detected / hang / crash / "
                    "recovered)",
    )
    sub = parser.add_subparsers(dest="app", required=True)

    cordic_p = sub.add_parser(
        "cordic", help="inject into a CORDIC co-simulation")
    cordic_p.add_argument("--p", type=int, default=4,
                          help="pipeline PEs (must be >= 1)")
    cordic_p.add_argument("--iters", type=int, default=24)
    cordic_p.add_argument("--ndata", type=int, default=32)
    cordic_p.add_argument("--fifo-depth", type=int, default=16)

    matmul_p = sub.add_parser(
        "matmul", help="inject into a matmul co-simulation")
    matmul_p.add_argument("--block", type=int, default=4,
                          help="hardware block size (must be >= 1)")
    matmul_p.add_argument("--matn", type=int, default=16)
    matmul_p.add_argument("--fifo-depth", type=int, default=16)

    pipe_p = sub.add_parser(
        "cordic-pipe",
        help="inject into the K-CPU pipelined CORDIC (adds link_drop "
             "and node_stall fault kinds)")
    pipe_p.add_argument("--stages", type=int, default=4,
                        help="rotation-stage CPUs (n_cpus = stages + 2)")
    pipe_p.add_argument("--iters", type=int, default=24)
    pipe_p.add_argument("--ndata", type=int, default=32)
    pipe_p.add_argument("--link-depth", type=int, default=16,
                        help="inter-CPU FSL link depth")

    mesh_p = sub.add_parser(
        "mesh",
        help="inject into a 2D-mesh dataflow design (one CPU per mesh "
             "node; link_drop/node_stall in the kind pool)")
    mesh_p.add_argument("--rows", type=int, default=2)
    mesh_p.add_argument("--cols", type=int, default=2)
    mesh_p.add_argument("--tokens", type=int, default=8,
                        help="data words streamed through the mesh")
    mesh_p.add_argument("--link-depth", type=int, default=8,
                        help="inter-CPU FSL link depth")

    for p in (cordic_p, matmul_p, pipe_p, mesh_p):
        p.add_argument("--trials", type=int, default=100,
                       help="number of seeded injections (default 100)")
        p.add_argument("--seed", type=int, default=2005,
                       help="campaign master seed; trial i derives "
                            "'{seed}/{i}'")
        p.add_argument("--recovery", choices=("none", "rollback"),
                       default="none",
                       help="rollback restores the pre-fault checkpoint "
                            "and re-runs on any non-masked outcome")
        p.add_argument("--max-retries", type=int, default=2,
                       help="rollback attempts per trial (default 2)")
        p.add_argument("--deadlock-window", type=int, default=2_048,
                       help="progress-watchdog window in cycles "
                            "(default 2048 — tight, to detect hangs fast)")
        p.add_argument("--max-cycles", type=int, default=2_000_000,
                       help="per-trial cycle budget")
        p.add_argument("--jobs", type=int, default=0, metavar="N",
                       help="worker processes (0 = in-process sequential; "
                            "reports are identical either way)")
        p.add_argument("--batch", nargs="?", const=-1, type=int,
                       default=None, metavar="WIDTH",
                       help="run trials in lockstep on the batched vector "
                            "engine, up to WIDTH at a time (default 32); "
                            "the report is identical to the scalar one; "
                            "incompatible with --jobs/--timeout/--journal")
        p.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-trial wall-clock budget in seconds")
        p.add_argument("--journal", metavar="FILE",
                       help="JSON-lines resume journal for the trial sweep")
        p.add_argument("--resume", action="store_true",
                       help="replay completed trials from --journal")
        p.add_argument("--json", metavar="FILE", dest="json_out",
                       help="write the deterministic JSON report here "
                            "('-' for stdout)")
        p.add_argument("--markdown", metavar="FILE",
                       help="write a Markdown outcome table here")
        p.add_argument("--quiet", action="store_true",
                       help="suppress the per-trial progress line")
    args = parser.parse_args(argv)

    from repro.apps.common import VerificationError
    from repro.faults import CampaignConfig, run_campaign

    if args.app == "cordic":
        design = {"p": args.p, "iters": args.iters, "ndata": args.ndata,
                  "fifo_depth": args.fifo_depth}
    elif args.app == "cordic-pipe":
        design = {"stages": args.stages, "iters": args.iters,
                  "ndata": args.ndata, "link_depth": args.link_depth}
    elif args.app == "mesh":
        design = {"rows": args.rows, "cols": args.cols,
                  "tokens": args.tokens, "link_depth": args.link_depth}
    else:
        design = {"block": args.block, "matn": args.matn,
                  "fifo_depth": args.fifo_depth}
    if args.resume and not args.journal:
        print("mb32-faultsim: error: --resume needs --journal FILE",
              file=sys.stderr)
        return 2
    batch_width = args.batch
    if batch_width == -1:
        batch_width = 32
    if batch_width is not None and (
        args.jobs or args.timeout or args.journal or args.resume
    ):
        print("mb32-faultsim: error: --batch is incompatible with "
              "--jobs/--timeout/--journal/--resume (those are "
              "scalar-engine features)", file=sys.stderr)
        return 2
    try:
        config = CampaignConfig(
            app=args.app,
            design=design,
            trials=args.trials,
            seed=args.seed,
            recovery=args.recovery,
            max_retries=args.max_retries,
            deadlock_window=args.deadlock_window,
            max_cycles=args.max_cycles,
        )
    except ValueError as exc:
        print(f"mb32-faultsim: error: {exc}", file=sys.stderr)
        return 2

    def progress(p):
        if args.quiet:
            return
        last = p.last.metrics if p.last is not None and p.last.metrics \
            else None
        outcome = last["outcome"] if last else (
            p.last.status if p.last is not None else "")
        print(f"mb32-faultsim: [{p.done}/{p.total}] {outcome}",
              file=sys.stderr)

    try:
        report = run_campaign(
            config,
            workers=args.jobs,
            timeout_s=args.timeout,
            journal=args.journal,
            resume=args.resume,
            progress=progress,
            batch_width=batch_width,
        )
    except ValueError as exc:  # bad design params or journal mismatch
        print(f"mb32-faultsim: error: {exc}", file=sys.stderr)
        return 2
    except VerificationError as exc:
        print(f"mb32-faultsim: baseline run failed: {exc}",
              file=sys.stderr)
        return 1

    print(report.to_markdown())
    if args.json_out:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json_out == "-":
            print(payload)
        else:
            with open(args.json_out, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            print(f"mb32-faultsim: wrote {args.json_out}")
    if args.markdown:
        with open(args.markdown, "w", encoding="utf-8") as fh:
            fh.write(report.to_markdown())
        print(f"mb32-faultsim: wrote {args.markdown}")
    counts = report.counts
    return 1 if counts["crash"] else 0


# ----------------------------------------------------------------------
# mb32-farm
# ----------------------------------------------------------------------
def _farm_client(args):
    from repro.farm import FarmClient

    return FarmClient(args.host, args.port, tenant=args.tenant)


def _farm_serve(args) -> int:
    import asyncio
    import contextlib
    import signal

    from repro.farm.gateway import FarmGateway

    if args.recover and not args.journal:
        print("mb32-farm: --recover needs --journal", file=sys.stderr)
        return 2

    async def main() -> None:
        gateway = FarmGateway(
            workers=args.workers,
            host=args.host,
            port=args.port,
            cache_dir=args.cache_dir,
            max_queue=args.max_queue,
            journal_path=args.journal,
            recover=args.recover,
            wal_fsync=args.wal_fsync,
        )
        await gateway.start()
        host, port = gateway.address
        print(f"mb32-farm: {args.workers} workers, "
              f"listening on {host}:{port}")
        if args.recover:
            print(f"mb32-farm: recovered {len(gateway.jobs)} job(s) "
                  f"from {args.journal}")
        print(f"mb32-farm: port {port}", flush=True)
        if args.port_file:
            with open(args.port_file, "w", encoding="utf-8") as fh:
                fh.write(f"{port}\n")
        # graceful SIGTERM: finish queued/running jobs, then exit
        loop = asyncio.get_running_loop()
        with contextlib.suppress(NotImplementedError, RuntimeError):
            loop.add_signal_handler(
                signal.SIGTERM,
                lambda: asyncio.ensure_future(gateway.drain()),
            )
        try:
            await gateway.serve_forever()
        finally:
            await gateway.close()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        print("mb32-farm: interrupted — shut down cleanly")
        return 0
    print("mb32-farm: drained")
    return 0


def _farm_submit(args) -> int:
    from repro.farm import FarmError

    if args.payload == "-":
        payload = json.load(sys.stdin)
    else:
        with open(args.payload, encoding="utf-8") as fh:
            payload = json.load(fh)
    client = _farm_client(args)
    try:
        doc = client.submit(
            args.kind,
            payload,
            cacheable=not args.no_cache,
            wait=args.wait,
            timeout_s=args.timeout,
        )
    except FarmError as exc:
        print(f"mb32-farm: error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(doc, indent=2, sort_keys=True))
    if args.wait and doc.get("state") != "done":
        return 1
    return 0


def _farm_status(args) -> int:
    from repro.farm import FarmError

    client = _farm_client(args)
    try:
        if args.job:
            doc = client.status(
                args.job, wait=args.wait, timeout_s=args.timeout
            )
        else:
            doc = client.farm_status()
    except FarmError as exc:
        print(f"mb32-farm: error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def _farm_drain(args) -> int:
    from repro.farm import FarmError

    try:
        doc = _farm_client(args).drain()
    except FarmError as exc:
        print(f"mb32-farm: error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(doc, indent=2, sort_keys=True))
    return 0


def _farm_chaos(args) -> int:
    import tempfile

    from repro.farm.chaos import CHAOS_KINDS, run_chaos_campaign

    kinds = CHAOS_KINDS
    if args.kinds:
        kinds = tuple(
            k.strip() for k in args.kinds.split(",") if k.strip()
        )
        unknown = [k for k in kinds if k not in CHAOS_KINDS]
        if unknown:
            print(f"mb32-farm: unknown chaos kind(s) {unknown} "
                  f"(choose from {', '.join(CHAOS_KINDS)})",
                  file=sys.stderr)
            return 2

    cleanup: tempfile.TemporaryDirectory | None = None
    if args.root:
        root = args.root
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="mb32-chaos-")
        root = cleanup.name
    try:
        report = run_chaos_campaign(
            root,
            seed=args.seed,
            jobs=args.jobs,
            faults=args.faults,
            workers=args.workers,
            kinds=kinds,
            gateway_restarts=args.restarts,
            progress=lambda msg: print(f"mb32-farm: {msg}", flush=True),
            collect_timeout_s=args.timeout,
        )
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    print(report.table())
    print(f"mb32-farm: {report.jobs} jobs, "
          f"{report.faults_applied} faults, "
          f"{report.restarts} gateway restart(s), "
          f"{report.cache_quarantined} quarantined cache entr(ies), "
          f"{report.wall_s:.1f}s")
    if args.report:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.report == "-":
            print(payload)
        else:
            with open(args.report, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
            print(f"mb32-farm: wrote {args.report}")
    if report.ok:
        print("mb32-farm: invariant held — every job byte-identical "
              "to the fault-free baseline")
        return 0
    print(f"mb32-farm: INVARIANT VIOLATED — divergent="
          f"{report.divergent} failed={sorted(report.failed)} "
          f"second_divergent={report.second_divergent} "
          f"second_failed={sorted(report.second_failed)}",
          file=sys.stderr)
    return 1


def farm_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mb32-farm",
        description="co-simulation as a service: asyncio job farm with "
                    "content-addressed caching and checkpoint migration",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a gateway (foreground)")
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default 0 = ephemeral; actual port is printed "
             "and written to --port-file)",
    )
    serve.add_argument(
        "--port-file", metavar="FILE",
        help="write the actually bound port to FILE",
    )
    serve.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed result cache directory (no caching "
             "across restarts without it)",
    )
    serve.add_argument("--max-queue", type=int, default=10_000,
                       help="queue depth beyond which submissions are "
                            "shed with 503")
    serve.add_argument(
        "--journal", metavar="FILE",
        help="append-only write-ahead journal of job submissions and "
             "state transitions (crash recovery)",
    )
    serve.add_argument(
        "--recover", action="store_true",
        help="replay --journal on startup: completed jobs serve from "
             "cache, interrupted jobs resume from their last "
             "checkpoint / completed units",
    )
    serve.add_argument(
        "--wal-fsync", action="store_true",
        help="fsync the journal on every append (power-loss "
             "durability at a per-event fsync cost)",
    )
    serve.set_defaults(func=_farm_serve)

    def _client_flags(p) -> None:
        p.add_argument("--host", default="127.0.0.1")
        p.add_argument("--port", type=int, required=True)
        p.add_argument("--tenant", default="default")

    submit = sub.add_parser("submit", help="submit one job")
    _client_flags(submit)
    submit.add_argument(
        "kind",
        choices=("simulate", "scenario", "multi_scenario", "sweep",
                 "campaign"),
    )
    submit.add_argument(
        "payload", help='payload JSON file ("-" for stdin)'
    )
    submit.add_argument("--no-cache", action="store_true",
                        help="bypass dedup/cache for this job")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job finishes")
    submit.add_argument("--timeout", type=float, default=None,
                        help="seconds to wait before returning anyway")
    submit.set_defaults(func=_farm_submit)

    status = sub.add_parser(
        "status", help="farm status, or one job's status with --job"
    )
    _client_flags(status)
    status.add_argument("--job", help="job id to inspect")
    status.add_argument("--wait", action="store_true")
    status.add_argument("--timeout", type=float, default=None)
    status.set_defaults(func=_farm_status)

    drain = sub.add_parser(
        "drain", help="finish all jobs, then shut the gateway down"
    )
    _client_flags(drain)
    drain.set_defaults(func=_farm_drain)

    chaos = sub.add_parser(
        "chaos",
        help="seeded deterministic fault campaign against a live farm "
             "(worker kills/stalls, corrupt cache writes, dropped "
             "connections, gateway crash+recover); verifies every job "
             "finishes byte-identical to a fault-free run",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--jobs", type=int, default=200,
                       help="workload size (simulate/sweep/campaign mix)")
    chaos.add_argument("--faults", type=int, default=30,
                       help="total fault events to inject")
    chaos.add_argument("--workers", type=int, default=3)
    chaos.add_argument(
        "--kinds", default=None,
        help="comma-separated fault kinds to enable: worker_kill, "
             "worker_stall, cache_torn_write, cache_bitflip, "
             "conn_drop, conn_truncate, gateway_restart (default all)",
    )
    chaos.add_argument("--restarts", type=int, default=1,
                       help="gateway crash+recover events")
    chaos.add_argument(
        "--root", metavar="DIR", default=None,
        help="scratch directory (default: a fresh temp dir)",
    )
    chaos.add_argument(
        "--report", metavar="FILE", default=None,
        help='write the JSON report to FILE ("-" for stdout)',
    )
    chaos.add_argument("--timeout", type=float, default=600.0,
                       help="per-phase collect deadline in seconds")
    chaos.set_defaults(func=_farm_chaos)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - manual dispatch
    tool = sys.argv[1] if len(sys.argv) > 1 else ""
    mains = {"cc": cc_main, "as": as_main, "run": run_main,
             "objdump": objdump_main, "gdbserver": gdbserver_main,
             "dse": dse_main, "conformance": conformance_main,
             "profile": profile_main, "faultsim": faultsim_main,
             "farm": farm_main}
    sys.exit(mains.get(tool, cc_main)(sys.argv[2:]))
