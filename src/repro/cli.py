"""Command-line toolchain.

Console entry points mirroring the Xilinx tool names the paper's flow
uses:

* ``mb32-cc``      — compile mini-C to assembly or a linked image
* ``mb32-run``     — execute a program on the cycle-accurate ISS
* ``mb32-objdump`` — disassemble a linked image / show symbols
* ``mb32-gdbserver`` — serve a program over the GDB remote protocol

Images are stored in a simple container: a JSON header line (entry,
sizes, symbols) followed by the raw memory image — enough for the
tools to round-trip programs through files.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.asm import assemble, disassemble_program, link
from repro.asm.linker import Program
from repro.iss.cpu import CPUConfig
from repro.iss.run import make_cpu
from repro.mcc import CompileOptions, build_executable, compile_c

MAGIC = "MB32IMG1"


# ----------------------------------------------------------------------
# Image container
# ----------------------------------------------------------------------
def save_image(program: Program, path: str) -> None:
    header = {
        "magic": MAGIC,
        "entry": program.entry,
        "text_size": program.text_size,
        "data_size": program.data_size,
        "bss_size": program.bss_size,
        "stack_size": program.stack_size,
        "memory_size": program.memory_size,
        "symbols": program.symbols,
    }
    with open(path, "wb") as fh:
        fh.write(json.dumps(header).encode("utf-8") + b"\n")
        fh.write(program.image)


def load_image(path: str) -> Program:
    with open(path, "rb") as fh:
        header_line = fh.readline()
        image = fh.read()
    header = json.loads(header_line)
    if header.get("magic") != MAGIC:
        raise ValueError(f"{path}: not an MB32 image")
    return Program(
        image=image,
        symbols={k: int(v) for k, v in header["symbols"].items()},
        entry=header["entry"],
        text_size=header["text_size"],
        data_size=header["data_size"],
        bss_size=header["bss_size"],
        stack_size=header["stack_size"],
        memory_size=header["memory_size"],
    )


def _compile_options(args) -> CompileOptions:
    return CompileOptions(
        hw_multiplier=not args.no_mult,
        hw_divider=args.hw_div,
        hw_barrel_shifter=not args.no_barrel,
        register_locals=not args.no_regalloc,
    )


def _cpu_config(args) -> CPUConfig:
    return CPUConfig(
        use_hw_multiplier=not args.no_mult,
        use_hw_divider=args.hw_div,
        use_barrel_shifter=not args.no_barrel,
    )


def _add_target_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--no-mult", action="store_true",
                        help="target a processor without the hardware "
                             "multiplier")
    parser.add_argument("--hw-div", action="store_true",
                        help="target a processor with the hardware divider")
    parser.add_argument("--no-barrel", action="store_true",
                        help="target a processor without the barrel shifter")
    parser.add_argument("--no-regalloc", action="store_true",
                        help="disable register allocation of locals")


# ----------------------------------------------------------------------
# mb32-cc
# ----------------------------------------------------------------------
def cc_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mb32-cc", description="mini-C compiler for MB32"
    )
    parser.add_argument("source", help="mini-C source file ('-' for stdin)")
    parser.add_argument("-o", "--output", help="output file")
    parser.add_argument("-S", action="store_true",
                        help="emit assembly text instead of a linked image")
    _add_target_flags(parser)
    args = parser.parse_args(argv)

    text = sys.stdin.read() if args.source == "-" else \
        open(args.source, "r", encoding="utf-8").read()
    options = _compile_options(args)
    try:
        if args.S:
            asm = compile_c(text, options)
            if args.output:
                open(args.output, "w", encoding="utf-8").write(asm)
            else:
                sys.stdout.write(asm)
            return 0
        program = build_executable(text, options)
    except Exception as exc:
        print(f"mb32-cc: error: {exc}", file=sys.stderr)
        return 1
    out = args.output or "a.img"
    save_image(program, out)
    print(f"mb32-cc: wrote {out} ({program.load_size} bytes, "
          f"entry {program.entry:#x})")
    return 0


# ----------------------------------------------------------------------
# mb32-as
# ----------------------------------------------------------------------
def as_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mb32-as", description="MB32 assembler + linker"
    )
    parser.add_argument("sources", nargs="+", help="assembly files")
    parser.add_argument("-o", "--output", default="a.img")
    parser.add_argument("--entry", default="_start")
    args = parser.parse_args(argv)
    try:
        modules = [
            assemble(open(p, encoding="utf-8").read(), name=p)
            for p in args.sources
        ]
        program = link(modules, entry_symbol=args.entry)
    except Exception as exc:
        print(f"mb32-as: error: {exc}", file=sys.stderr)
        return 1
    save_image(program, args.output)
    print(f"mb32-as: wrote {args.output} ({program.load_size} bytes)")
    return 0


# ----------------------------------------------------------------------
# mb32-run
# ----------------------------------------------------------------------
def run_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mb32-run", description="run an MB32 image on the ISS"
    )
    parser.add_argument("image")
    parser.add_argument("--max-cycles", type=int, default=50_000_000)
    parser.add_argument("--stats", action="store_true",
                        help="print execution statistics")
    parser.add_argument("--trace", type=int, metavar="N", default=0,
                        help="print the first N retired instructions")
    _add_target_flags(parser)
    args = parser.parse_args(argv)

    program = load_image(args.image)
    cpu = make_cpu(program, config=_cpu_config(args))
    tracer = None
    if args.trace:
        from repro.iss.trace import InstructionTracer

        tracer = InstructionTracer(cpu, limit=args.trace).install()
    cpu.run(max_cycles=args.max_cycles)
    if tracer is not None:
        print(tracer.text())
    if cpu.mem.console.text:
        sys.stdout.write(cpu.mem.console.text)
        if not cpu.mem.console.text.endswith("\n"):
            sys.stdout.write("\n")
    if args.stats:
        print(cpu.stats.summary())
        print(f"simulated time: {cpu.simulated_time_s() * 1e6:.1f} us "
              f"at {cpu.config.frequency_hz / 1e6:.0f} MHz")
    if cpu.exit_code is None:
        print("mb32-run: program did not exit "
              f"(stopped after {cpu.cycle} cycles)", file=sys.stderr)
        return 2
    print(f"mb32-run: exit code {cpu.exit_code} ({cpu.cycle} cycles)")
    return 0 if cpu.exit_code == 0 else min(max(cpu.exit_code, 0), 125)


# ----------------------------------------------------------------------
# mb32-objdump
# ----------------------------------------------------------------------
def objdump_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mb32-objdump", description="disassemble an MB32 image"
    )
    parser.add_argument("image")
    parser.add_argument("-t", "--symbols", action="store_true",
                        help="print the symbol table instead")
    args = parser.parse_args(argv)
    program = load_image(args.image)
    try:
        if args.symbols:
            for name, addr in sorted(program.symbols.items(),
                                     key=lambda kv: kv[1]):
                print(f"{addr:08x}  {name}")
            return 0
        print(disassemble_program(program.image, 0, program.text_size,
                                  symbols=program.symbols))
    except BrokenPipeError:  # e.g. piped into `head`
        sys.stderr.close()
    return 0


# ----------------------------------------------------------------------
# mb32-gdbserver
# ----------------------------------------------------------------------
def gdbserver_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mb32-gdbserver",
        description="serve an MB32 image over the GDB remote protocol",
    )
    parser.add_argument("image")
    parser.add_argument("--port", type=int, default=0)
    _add_target_flags(parser)
    args = parser.parse_args(argv)

    from repro.gdb import Debugger, GdbServer

    program = load_image(args.image)
    cpu = make_cpu(program, config=_cpu_config(args))
    server = GdbServer(Debugger(cpu, program), port=args.port)
    print(f"mb32-gdbserver: listening on {server.address[0]}:"
          f"{server.address[1]}")
    server.serve_one()
    print(f"mb32-gdbserver: session ended "
          f"(pc={cpu.pc:#010x}, exit={cpu.exit_code})")
    return 0


if __name__ == "__main__":  # pragma: no cover - manual dispatch
    tool = sys.argv[1] if len(sys.argv) > 1 else ""
    mains = {"cc": cc_main, "as": as_main, "run": run_main,
             "objdump": objdump_main, "gdbserver": gdbserver_main}
    sys.exit(mains.get(tool, cc_main)(sys.argv[2:]))
