"""Telemetry exporters: Chrome trace-event JSON and co-sim-level VCD.

``ChromeTraceExporter`` renders the event stream as a Chrome
trace-event file (the JSON array format) loadable in Perfetto or
``chrome://tracing``: the CPU, each FSL channel and each hardware block
become tracks; retired instructions and stall windows become duration
slices; FIFO occupancy becomes a counter track; fast-forwarded windows
become slices on the engine track so skipped time is visible rather
than silently absent.

``CosimVCDExporter`` writes the same stream as a value-change dump
(via the shared :class:`~repro.rtl.vcd.VCDFile` core) with one signal
per channel occupancy plus the CPU's pc and stall state — the
"logic-analyzer view" companion to the Perfetto timeline.

One simulated clock cycle maps to one trace-time unit (1 µs in the
Chrome trace's microsecond timebase, one timescale tick in the VCD),
so cursor math in either viewer reads directly in cycles.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable

from repro.bus.fsl import FSLChannel
from repro.rtl.vcd import VCDFile
from repro.telemetry.events import (
    BLOCK_FIRE,
    COSIM_TRACK,
    CPU_TRACK,
    DEADLOCK,
    FAST_FORWARD,
    FSL_POP,
    FSL_PUSH,
    RETIRE,
    STALL_BEGIN,
    STALL_END,
    EventBus,
    TelemetryEvent,
)


class ChromeTraceExporter:
    """Builds a Chrome trace-event JSON document from the event bus."""

    #: process id used for all tracks (one simulated system)
    PID = 1

    def __init__(self, bus: EventBus, *, max_events: int | None = None):
        self.max_events = max_events
        self.dropped = 0
        self._events: list[dict[str, Any]] = []
        self._tids: dict[str, int] = {}
        #: per-CPU-track pending retire slice: track -> (cycle, pc, mn).
        #: Multi-CPU runs retire on several tracks concurrently, so the
        #: coalescing slot is keyed by track.
        self._last_retire: dict[str, tuple[int, int, str]] = {}
        self._open_stalls: dict[str, int] = {}  # channel -> begin cycle
        self._final_cycle = 0
        bus.subscribe(self._on_event)

    # ------------------------------------------------------------------
    def _tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = self._tids[track] = len(self._tids)
        return tid

    def _add(self, record: dict[str, Any]) -> None:
        if self.max_events is not None and len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(record)

    def _on_event(self, event: TelemetryEvent) -> None:
        kind = event.kind
        if event.cycle > self._final_cycle:
            self._final_cycle = event.cycle
        if kind == RETIRE:
            self._flush_retire(event.track, next_cycle=event.cycle)
            self._last_retire[event.track] = (
                event.cycle, event.value, event.text)
        elif kind == STALL_BEGIN:
            self._open_stalls[event.track] = event.cycle
        elif kind == STALL_END:
            begin = self._open_stalls.pop(event.track, event.cycle - event.aux)
            self._add({
                "name": f"stall {event.track}",
                "ph": "X",
                "ts": begin,
                "dur": max(event.cycle - begin, 1),
                "pid": self.PID,
                # the stalling CPU's track rides in the event text (the
                # event's own track names the channel); absent — e.g.
                # events recorded before the CPU grew tracks — fall
                # back to the classic single-CPU track
                "tid": self._tid(event.text or CPU_TRACK),
                "args": {"channel": event.track, "cycles": event.aux},
            })
        elif kind == FSL_PUSH or kind == FSL_POP:
            direction = "push" if kind == FSL_PUSH else "pop"
            self._add({
                "name": direction,
                "ph": "i",
                "s": "t",
                "ts": event.cycle,
                "pid": self.PID,
                "tid": self._tid(event.track),
                "args": {
                    "data": f"{event.value:#010x}",
                    "control": event.text == "ctrl",
                    "occupancy": event.aux,
                },
            })
            self._add({
                "name": f"occupancy {event.track}",
                "ph": "C",
                "ts": event.cycle,
                "pid": self.PID,
                "tid": self._tid(event.track),
                "args": {"words": event.aux},
            })
        elif kind == BLOCK_FIRE:
            self._add({
                "name": "fire",
                "ph": "i",
                "s": "t",
                "ts": event.cycle,
                "pid": self.PID,
                "tid": self._tid(event.track),
                "args": {},
            })
        elif kind == FAST_FORWARD:
            self._add({
                "name": "fast-forward",
                "ph": "X",
                "ts": event.cycle - event.value,
                "dur": event.value,
                "pid": self.PID,
                "tid": self._tid(COSIM_TRACK),
                "args": {"skipped_cycles": event.value},
            })
        elif kind == DEADLOCK:
            self._add({
                "name": "DEADLOCK",
                "ph": "i",
                "s": "g",
                "ts": event.cycle,
                "pid": self.PID,
                "tid": self._tid(COSIM_TRACK),
                "args": {"pc": f"{event.value:#010x}"},
            })

    def _flush_retire(self, track: str | None = None,
                      next_cycle: int | None = None) -> None:
        tracks = (track,) if track is not None else tuple(self._last_retire)
        for t in tracks:
            pending = self._last_retire.pop(t, None)
            if pending is None:
                continue
            cycle, pc, mnemonic = pending
            end = next_cycle if next_cycle is not None else \
                max(self._final_cycle, cycle + 1)
            self._add({
                "name": mnemonic,
                "ph": "X",
                "ts": cycle,
                "dur": max(end - cycle, 1),
                "pid": self.PID,
                "tid": self._tid(t),
                "args": {"pc": f"{pc:#010x}"},
            })

    # ------------------------------------------------------------------
    def trace_events(self) -> list[dict[str, Any]]:
        """All records, including per-track metadata naming events."""
        self._flush_retire()
        meta: list[dict[str, Any]] = [{
            "name": "process_name",
            "ph": "M",
            "pid": self.PID,
            "tid": 0,
            "args": {"name": "mb32 co-simulation (1 us = 1 cycle)"},
        }]
        for track, tid in self._tids.items():
            meta.append({
                "name": "thread_name",
                "ph": "M",
                "pid": self.PID,
                "tid": tid,
                "args": {"name": track},
            })
        return meta + self._events

    def to_json(self) -> str:
        document = {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "mb32-profile",
                "time_unit": "1 trace us = 1 simulated cycle",
                "dropped_events": self.dropped,
            },
        }
        return json.dumps(document)

    def write(self, stream: IO[str]) -> None:
        stream.write(self.to_json())
        stream.write("\n")


class CosimVCDExporter:
    """Streams co-simulation telemetry as a VCD file.

    Signals: per-channel FIFO occupancy (word count), the CPU program
    counter and a 1-bit CPU stall flag.  Fast-forwarded windows need no
    special handling — no signal changes during a quiescent skip, and
    the next real event's timestamp restores the timeline.
    """

    def __init__(self, bus: EventBus, stream: IO[str],
                 channels: Iterable[FSLChannel] = (),
                 timescale: str = "20 ns",
                 cpu_tracks: Iterable[str] = (CPU_TRACK,)):
        """``cpu_tracks`` declares one ``{track}_pc``/``{track}_stall``
        signal pair per processor (VCD headers cannot grow after
        ``begin()``); multi-CPU simulations pass their node names.  The
        single-entry default keeps the historical ``cpu_pc``/
        ``cpu_stall`` signal names."""
        self._file = VCDFile(stream, timescale=timescale,
                             date="generated by repro.telemetry")
        self._pc: dict[str, str] = {}
        self._stall: dict[str, str] = {}
        for track in cpu_tracks:
            self._pc[track] = self._file.add_var(f"{track}_pc", 32)
            self._stall[track] = self._file.add_var(f"{track}_stall", 1)
        self._default_track = next(iter(self._pc))
        self._occ: dict[str, str] = {}
        self.changes = 0
        for channel in channels:
            self._occ[channel.name] = self._file.add_var(
                f"{channel.name}_occupancy", 16, initial=channel.occupancy
            )
        self._file.begin()
        bus.subscribe(
            self._on_event,
            kinds=(RETIRE, STALL_BEGIN, STALL_END, FSL_PUSH, FSL_POP),
        )

    def _cpu_var(self, table: dict[str, str], track: str) -> str:
        return table.get(track) or table[self._default_track]

    def _on_event(self, event: TelemetryEvent) -> None:
        kind = event.kind
        if kind == RETIRE:
            self._file.change(event.cycle,
                              self._cpu_var(self._pc, event.track),
                              event.value)
        elif kind == STALL_BEGIN:
            self._file.change(event.cycle,
                              self._cpu_var(self._stall, event.text), 1)
        elif kind == STALL_END:
            self._file.change(event.cycle,
                              self._cpu_var(self._stall, event.text), 0)
        else:  # FSL_PUSH / FSL_POP
            ident = self._occ.get(event.track)
            if ident is not None:
                self._file.change(event.cycle, ident, event.aux)
        self.changes += 1
