"""Telemetry exporters: Chrome trace-event JSON and co-sim-level VCD.

``ChromeTraceExporter`` renders the event stream as a Chrome
trace-event file (the JSON array format) loadable in Perfetto or
``chrome://tracing``: the CPU, each FSL channel and each hardware block
become tracks; retired instructions and stall windows become duration
slices; FIFO occupancy becomes a counter track; fast-forwarded windows
become slices on the engine track so skipped time is visible rather
than silently absent.

``CosimVCDExporter`` writes the same stream as a value-change dump
(via the shared :class:`~repro.rtl.vcd.VCDFile` core) with one signal
per channel occupancy plus the CPU's pc and stall state — the
"logic-analyzer view" companion to the Perfetto timeline.

One simulated clock cycle maps to one trace-time unit (1 µs in the
Chrome trace's microsecond timebase, one timescale tick in the VCD),
so cursor math in either viewer reads directly in cycles.
"""

from __future__ import annotations

import json
from typing import IO, Any, Iterable

from repro.bus.fsl import FSLChannel
from repro.rtl.vcd import VCDFile
from repro.telemetry.events import (
    BLOCK_FIRE,
    COSIM_TRACK,
    CPU_TRACK,
    DEADLOCK,
    FAST_FORWARD,
    FSL_POP,
    FSL_PUSH,
    RETIRE,
    STALL_BEGIN,
    STALL_END,
    EventBus,
    TelemetryEvent,
)


class ChromeTraceExporter:
    """Builds a Chrome trace-event JSON document from the event bus."""

    #: process id used for all tracks (one simulated system)
    PID = 1

    def __init__(self, bus: EventBus, *, max_events: int | None = None):
        self.max_events = max_events
        self.dropped = 0
        self._events: list[dict[str, Any]] = []
        self._tids: dict[str, int] = {}
        self._last_retire: tuple[int, int, str] | None = None  # cycle, pc, mn
        self._open_stalls: dict[str, int] = {}  # channel -> begin cycle
        self._final_cycle = 0
        bus.subscribe(self._on_event)

    # ------------------------------------------------------------------
    def _tid(self, track: str) -> int:
        tid = self._tids.get(track)
        if tid is None:
            tid = self._tids[track] = len(self._tids)
        return tid

    def _add(self, record: dict[str, Any]) -> None:
        if self.max_events is not None and len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append(record)

    def _on_event(self, event: TelemetryEvent) -> None:
        kind = event.kind
        if event.cycle > self._final_cycle:
            self._final_cycle = event.cycle
        if kind == RETIRE:
            self._flush_retire(next_cycle=event.cycle)
            self._last_retire = (event.cycle, event.value, event.text)
        elif kind == STALL_BEGIN:
            self._open_stalls[event.track] = event.cycle
        elif kind == STALL_END:
            begin = self._open_stalls.pop(event.track, event.cycle - event.aux)
            self._add({
                "name": f"stall {event.track}",
                "ph": "X",
                "ts": begin,
                "dur": max(event.cycle - begin, 1),
                "pid": self.PID,
                "tid": self._tid(CPU_TRACK),
                "args": {"channel": event.track, "cycles": event.aux},
            })
        elif kind == FSL_PUSH or kind == FSL_POP:
            direction = "push" if kind == FSL_PUSH else "pop"
            self._add({
                "name": direction,
                "ph": "i",
                "s": "t",
                "ts": event.cycle,
                "pid": self.PID,
                "tid": self._tid(event.track),
                "args": {
                    "data": f"{event.value:#010x}",
                    "control": event.text == "ctrl",
                    "occupancy": event.aux,
                },
            })
            self._add({
                "name": f"occupancy {event.track}",
                "ph": "C",
                "ts": event.cycle,
                "pid": self.PID,
                "tid": self._tid(event.track),
                "args": {"words": event.aux},
            })
        elif kind == BLOCK_FIRE:
            self._add({
                "name": "fire",
                "ph": "i",
                "s": "t",
                "ts": event.cycle,
                "pid": self.PID,
                "tid": self._tid(event.track),
                "args": {},
            })
        elif kind == FAST_FORWARD:
            self._add({
                "name": "fast-forward",
                "ph": "X",
                "ts": event.cycle - event.value,
                "dur": event.value,
                "pid": self.PID,
                "tid": self._tid(COSIM_TRACK),
                "args": {"skipped_cycles": event.value},
            })
        elif kind == DEADLOCK:
            self._add({
                "name": "DEADLOCK",
                "ph": "i",
                "s": "g",
                "ts": event.cycle,
                "pid": self.PID,
                "tid": self._tid(COSIM_TRACK),
                "args": {"pc": f"{event.value:#010x}"},
            })

    def _flush_retire(self, next_cycle: int | None = None) -> None:
        if self._last_retire is None:
            return
        cycle, pc, mnemonic = self._last_retire
        end = next_cycle if next_cycle is not None else \
            max(self._final_cycle, cycle + 1)
        self._add({
            "name": mnemonic,
            "ph": "X",
            "ts": cycle,
            "dur": max(end - cycle, 1),
            "pid": self.PID,
            "tid": self._tid(CPU_TRACK),
            "args": {"pc": f"{pc:#010x}"},
        })
        self._last_retire = None

    # ------------------------------------------------------------------
    def trace_events(self) -> list[dict[str, Any]]:
        """All records, including per-track metadata naming events."""
        self._flush_retire()
        meta: list[dict[str, Any]] = [{
            "name": "process_name",
            "ph": "M",
            "pid": self.PID,
            "tid": 0,
            "args": {"name": "mb32 co-simulation (1 us = 1 cycle)"},
        }]
        for track, tid in self._tids.items():
            meta.append({
                "name": "thread_name",
                "ph": "M",
                "pid": self.PID,
                "tid": tid,
                "args": {"name": track},
            })
        return meta + self._events

    def to_json(self) -> str:
        document = {
            "traceEvents": self.trace_events(),
            "displayTimeUnit": "ms",
            "otherData": {
                "generator": "mb32-profile",
                "time_unit": "1 trace us = 1 simulated cycle",
                "dropped_events": self.dropped,
            },
        }
        return json.dumps(document)

    def write(self, stream: IO[str]) -> None:
        stream.write(self.to_json())
        stream.write("\n")


class CosimVCDExporter:
    """Streams co-simulation telemetry as a VCD file.

    Signals: per-channel FIFO occupancy (word count), the CPU program
    counter and a 1-bit CPU stall flag.  Fast-forwarded windows need no
    special handling — no signal changes during a quiescent skip, and
    the next real event's timestamp restores the timeline.
    """

    def __init__(self, bus: EventBus, stream: IO[str],
                 channels: Iterable[FSLChannel] = (),
                 timescale: str = "20 ns"):
        self._file = VCDFile(stream, timescale=timescale,
                             date="generated by repro.telemetry")
        self._pc = self._file.add_var("cpu_pc", 32)
        self._stall = self._file.add_var("cpu_stall", 1)
        self._occ: dict[str, str] = {}
        self.changes = 0
        for channel in channels:
            self._occ[channel.name] = self._file.add_var(
                f"{channel.name}_occupancy", 16, initial=channel.occupancy
            )
        self._file.begin()
        bus.subscribe(
            self._on_event,
            kinds=(RETIRE, STALL_BEGIN, STALL_END, FSL_PUSH, FSL_POP),
        )

    def _on_event(self, event: TelemetryEvent) -> None:
        kind = event.kind
        if kind == RETIRE:
            self._file.change(event.cycle, self._pc, event.value)
        elif kind == STALL_BEGIN:
            self._file.change(event.cycle, self._stall, 1)
        elif kind == STALL_END:
            self._file.change(event.cycle, self._stall, 0)
        else:  # FSL_PUSH / FSL_POP
            ident = self._occ.get(event.track)
            if ident is not None:
                self._file.change(event.cycle, ident, event.aux)
        self.changes += 1
