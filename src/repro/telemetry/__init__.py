"""Unified telemetry: event bus, metrics, exporters and profilers.

The :class:`Telemetry` facade bundles one :class:`~repro.telemetry.events.EventBus`
with the standard consumers (metrics collector, optional region
profiler / phase timer / exporters) and knows how to attach itself to
the simulation objects that produce events.  Producers keep a nullable
bus reference and emit behind an ``is not None`` check, so simulations
without telemetry pay essentially nothing.

Two ways to enable telemetry:

* explicitly — pass ``telemetry=`` to :class:`~repro.cosim.environment.CoSimulation`;
* ambiently — wrap construction in :func:`telemetry_scope`, which the
  co-simulation constructor and :func:`repro.apps.common.run_software_only`
  consult.  The ambient form reaches simulations built deep inside
  design classes and sweep workers without threading a parameter
  through every layer (mirroring ``repro.cosim.environment.run_timeout``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Iterator

from repro.telemetry.events import (  # noqa: F401  (re-exported)
    ALL_KINDS,
    BLOCK_FIRE,
    COSIM_TRACK,
    CPU_TRACK,
    DEADLOCK,
    FAST_FORWARD,
    FSL_POP,
    FSL_PUSH,
    RETIRE,
    STALL_BEGIN,
    STALL_END,
    EventBus,
    TelemetryEvent,
)
from repro.telemetry.metrics import (  # noqa: F401  (re-exported)
    MetricsCollector,
    MetricsRegistry,
)
from repro.telemetry.profile import PhaseTimer, RegionProfiler

if TYPE_CHECKING:
    from repro.asm.linker import Program
    from repro.bus.fsl import FSLChannel
    from repro.cosim.environment import CoSimResult
    from repro.iss.cpu import CPU

__all__ = [
    "Telemetry",
    "telemetry_scope",
    "current_telemetry",
    "EventBus",
    "TelemetryEvent",
    "MetricsRegistry",
    "MetricsCollector",
    "RegionProfiler",
    "PhaseTimer",
]


class Telemetry:
    """One event bus plus its standard consumers, ready to attach.

    ``Telemetry()`` alone gives the metrics pipeline; call
    :meth:`enable_regions` / :meth:`enable_phases` before the run for
    the profilers, and construct exporters against :attr:`bus`
    directly (see :mod:`repro.telemetry.export`).
    """

    def __init__(self, *, metrics: bool = True) -> None:
        self.bus = EventBus()
        self.registry = MetricsRegistry()
        self.collector = (
            MetricsCollector(self.bus, self.registry) if metrics else None
        )
        self.regions: RegionProfiler | None = None
        self.phases: PhaseTimer | None = None
        self.cpu: "CPU | None" = None
        #: every attached CPU, in attach order — multi-CPU simulations
        #: attach one per node; ``cpu`` stays the first for the
        #: historical single-processor surface
        self.cpus: list["CPU"] = []
        self.channels: list["FSLChannel"] = []

    # -- optional consumers --------------------------------------------
    def enable_regions(self, program: "Program") -> RegionProfiler:
        """Attach a simulated-cycles-by-program-region profiler."""
        if self.regions is None:
            self.regions = RegionProfiler(program, self.bus)
        return self.regions

    def enable_phases(self) -> PhaseTimer:
        """Attach a wall-clock-by-simulator-phase timer."""
        if self.phases is None:
            self.phases = PhaseTimer()
        return self.phases

    # -- producer attachment -------------------------------------------
    def attach_cpu(self, cpu: "CPU") -> None:
        cpu.events = self.bus
        if cpu not in self.cpus:
            self.cpus.append(cpu)
        self.cpu = self.cpus[0]

    def attach_channel(self, channel: "FSLChannel",
                       clock: Any = None) -> None:
        """Attach ``channel``; ``clock`` is a zero-arg callable giving
        the current simulation cycle for event timestamps."""
        channel.events = self.bus
        if clock is not None:
            channel.clock = clock
        if channel not in self.channels:
            self.channels.append(channel)

    def attach_block(self, block: Any, clock: Any = None) -> None:
        """Attach any block exposing an ``events`` attribute slot."""
        if hasattr(block, "events"):
            block.events = self.bus
            if clock is not None and hasattr(block, "telemetry_clock"):
                block.telemetry_clock = clock

    def detach(self) -> None:
        """Unhook every attached producer (bus subscribers stay)."""
        for cpu in self.cpus:
            cpu.events = None
        self.cpus.clear()
        self.cpu = None
        for channel in self.channels:
            channel.events = None
            channel.clock = None
        self.channels.clear()

    # -- lifecycle ------------------------------------------------------
    def reset(self) -> None:
        """Clear accumulated state so a re-run matches a fresh run."""
        self.registry.reset()
        if self.regions is not None:
            self.regions.reset()
        if self.phases is not None:
            self.phases.reset()

    # -- checkpointing --------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Metric contents only — the collector is stateless and the
        profilers are wall-clock instruments, not simulated state."""
        return {"registry": self.registry.state_dict()}

    def load_state(self, state: dict[str, Any]) -> None:
        self.registry.load_state(state["registry"])

    # -- reports --------------------------------------------------------
    def snapshot(self, result: "CoSimResult | None" = None) -> dict[str, Any]:
        """Full metrics snapshot as a plain JSON-safe dict."""
        out: dict[str, Any] = {"metrics": self.registry.snapshot()}
        if self.cpu is not None:
            out["cpu"] = self.cpu.stats.to_dict()
        if len(self.cpus) > 1:
            out["cpus"] = {
                cpu.track: cpu.stats.to_dict() for cpu in self.cpus
            }
        if self.channels:
            out["channels"] = {
                ch.name: {
                    "depth": ch.depth,
                    "occupancy": ch.occupancy,
                    "max_occupancy": ch.max_occupancy,
                    "total_pushed": ch.total_pushed,
                    "total_popped": ch.total_popped,
                    "push_rejects": ch.push_rejects,
                    "pop_rejects": ch.pop_rejects,
                }
                for ch in self.channels
            }
        if self.collector is not None:
            out["stalls_by_channel"] = self.collector.stalls_by_channel()
            out["block_fires"] = self.collector.block_fires()
        if result is not None:
            out["run"] = {
                "exit_code": result.exit_code,
                "cycles": result.cycles,
                "instructions": result.instructions,
                "stall_cycles": result.stall_cycles,
                "wall_seconds": result.wall_seconds,
                "cycles_per_wall_second": result.cycles_per_wall_second,
                "halt_reason": (
                    result.halt_reason.value
                    if result.halt_reason is not None else None
                ),
            }
            if self.collector is not None:
                out["fast_forward"] = self.collector.fast_forward_stats(
                    result.cycles
                )
        if self.regions is not None:
            if result is not None and self.cpu is not None:
                self.regions.finalize(self.cpu.cycle)
            out["regions"] = self.regions.report()
        if self.phases is not None:
            wall = result.wall_seconds if result is not None else None
            out["phases"] = self.phases.report(wall)
        return out

    def invariant_snapshot(self) -> dict[str, Any]:
        """The mode-invariant subset of the snapshot.

        Everything here must be bit-identical between per-cycle and
        fast-forward execution — the conformance oracle compares it
        across modes.  Engine-level metrics (``fast_forward.*``) are
        excluded: how many windows were skipped is a property of the
        execution strategy, not of the simulated design.
        """
        metrics = {
            name: value
            for name, value in self.registry.snapshot().items()
            if not name.startswith("fast_forward.")
        }
        out: dict[str, Any] = {"metrics": metrics}
        if self.cpu is not None:
            out["cpu"] = self.cpu.stats.to_dict()
        if len(self.cpus) > 1:
            out["cpus"] = {
                cpu.track: cpu.stats.to_dict() for cpu in self.cpus
            }
        return out


# ----------------------------------------------------------------------
# Ambient telemetry (mirrors repro.cosim.environment.run_timeout)
# ----------------------------------------------------------------------
_ambient: Telemetry | None = None


@contextmanager
def telemetry_scope(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Make ``telemetry`` the ambient instance within the ``with`` body.

    Simulations constructed inside the scope (including ones built
    internally by design classes and sweep workers) attach to it
    automatically.
    """
    global _ambient
    previous = _ambient
    _ambient = telemetry
    try:
        yield telemetry
    finally:
        _ambient = previous


def current_telemetry() -> Telemetry | None:
    """The ambient :class:`Telemetry`, or ``None`` outside any scope."""
    return _ambient
