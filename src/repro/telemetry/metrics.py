"""Metrics registry: counters, gauges and histograms with plain-dict
snapshots.

The registry is the numeric side of the telemetry subsystem: while the
event bus carries *individual* occurrences, metrics hold *aggregates*
(CPI, stall breakdown by channel, FIFO high-water marks, fast-forward
skip ratio, wall-clock simulation speed).  A snapshot is a plain
``dict`` of JSON-safe values so it can travel through sweep-worker
pipes, conformance observations and CLI reports unchanged.
"""

from __future__ import annotations

import bisect
from typing import Any

from repro.telemetry.events import (
    BLOCK_FIRE,
    DEADLOCK,
    FAST_FORWARD,
    FSL_POP,
    FSL_PUSH,
    STALL_END,
    EventBus,
    TelemetryEvent,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """A point-in-time value that also remembers its high-water mark."""

    __slots__ = ("value", "high_water")

    def __init__(self) -> None:
        self.value = 0
        self.high_water = 0

    def set(self, value: int) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value


class Histogram:
    """Fixed-bucket histogram (upper-bound buckets plus overflow)."""

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: tuple[int, ...]) -> None:
        self.bounds = tuple(sorted(bounds))
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.sum = 0

    def observe(self, value: int) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def to_dict(self) -> dict[str, Any]:
        labels = [f"<={b}" for b in self.bounds] + ["inf"]
        return {
            "buckets": dict(zip(labels, self.counts)),
            "total": self.total,
            "sum": self.sum,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named counters/gauges/histograms, snapshot-able as a dict.

    Metric names are dotted strings (``"stall.cycles.mb_in1"``); the
    snapshot keeps them flat — nesting is the responsibility of
    higher-level report builders like :meth:`Telemetry.snapshot`.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter()
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge()
        return metric

    def histogram(self, name: str,
                  bounds: tuple[int, ...] = (1, 4, 16, 64, 256)) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(bounds)
        return metric

    def reset(self) -> None:
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        for name, counter in sorted(self._counters.items()):
            out[name] = counter.value
        for name, gauge in sorted(self._gauges.items()):
            out[name] = {"value": gauge.value, "high_water": gauge.high_water}
        for name, histogram in sorted(self._histograms.items()):
            out[name] = histogram.to_dict()
        return out

    # -- checkpointing -------------------------------------------------
    def state_dict(self) -> dict[str, Any]:
        """Lossless (unlike :meth:`snapshot`, which renders histograms
        for reporting): enough to rebuild every metric object."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: [g.value, g.high_water]
                       for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {"bounds": list(h.bounds), "counts": list(h.counts),
                    "total": h.total, "sum": h.sum}
                for n, h in sorted(self._histograms.items())
            },
        }

    def load_state(self, state: dict[str, Any]) -> None:
        self.reset()
        for name, value in state["counters"].items():
            self.counter(name).value = value
        for name, (value, high_water) in state["gauges"].items():
            gauge = self.gauge(name)
            gauge.value = value
            gauge.high_water = high_water
        for name, payload in state["histograms"].items():
            histogram = self.histogram(name, tuple(payload["bounds"]))
            histogram.counts = list(payload["counts"])
            histogram.total = payload["total"]
            histogram.sum = payload["sum"]


class MetricsCollector:
    """Bus subscriber that folds events into a :class:`MetricsRegistry`.

    Collects the aggregates that only the event stream can provide —
    the per-channel stall breakdown, per-channel occupancy high-water
    marks, stall-duration histograms, block fire counts, fast-forward
    window statistics and deadlock count.  Counter-style totals that
    the simulator already keeps (:class:`~repro.iss.statistics.CPUStats`,
    per-channel FIFO statistics) are *not* duplicated here; the
    :class:`~repro.telemetry.Telemetry` facade merges both sources into
    one snapshot.
    """

    def __init__(self, bus: EventBus,
                 registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        bus.subscribe(
            self._on_event,
            kinds=(STALL_END, FSL_PUSH, FSL_POP, BLOCK_FIRE, FAST_FORWARD,
                   DEADLOCK),
        )

    def _on_event(self, event: TelemetryEvent) -> None:
        reg = self.registry
        kind = event.kind
        if kind == FSL_PUSH or kind == FSL_POP:
            reg.gauge(f"fifo.occupancy.{event.track}").set(event.aux)
        elif kind == STALL_END:
            reg.counter(f"stall.cycles.{event.track}").inc(event.aux)
            reg.counter(f"stall.episodes.{event.track}").inc()
            reg.histogram(f"stall.duration.{event.track}").observe(event.aux)
        elif kind == BLOCK_FIRE:
            reg.counter(f"block.fires.{event.track}").inc()
        elif kind == FAST_FORWARD:
            reg.counter("fast_forward.windows").inc()
            reg.counter("fast_forward.cycles").inc(event.value)
        else:  # DEADLOCK
            reg.counter("deadlocks").inc()

    # ------------------------------------------------------------------
    def stalls_by_channel(self) -> dict[str, int]:
        prefix = "stall.cycles."
        return {
            name[len(prefix):]: counter.value
            for name, counter in sorted(self.registry._counters.items())
            if name.startswith(prefix)
        }

    def block_fires(self) -> dict[str, int]:
        prefix = "block.fires."
        return {
            name[len(prefix):]: counter.value
            for name, counter in sorted(self.registry._counters.items())
            if name.startswith(prefix)
        }

    def fast_forward_stats(self, total_cycles: int) -> dict[str, Any]:
        skipped = self.registry.counter("fast_forward.cycles").value
        return {
            "windows": self.registry.counter("fast_forward.windows").value,
            "skipped_cycles": skipped,
            "skip_ratio": skipped / total_cycles if total_cycles else 0.0,
        }

    def reset(self) -> None:
        self.registry.reset()
