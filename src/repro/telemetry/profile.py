"""Profilers: simulated cycles by program region, wall-clock by phase.

Two complementary attributions answer the two "where does time go"
questions a co-simulation user has:

* :class:`RegionProfiler` — *simulated* cycles per program region.
  Regions are PC-range buckets derived from the linker's symbol table,
  so the report reads in terms of the user's own functions.  Every
  cycle between one retire and the next (multi-cycle latency, FSL
  stalls, fast-forwarded windows — ``cpu.cycle`` jumps across skips,
  so the attribution is identical in per-cycle and fast-forward mode)
  is charged to the instruction that occupied the pipeline.

* :class:`PhaseTimer` — *wall-clock* seconds per simulator phase
  (CPU step, hardware block step, fast-forward scan), the data that
  tells an engine developer which loop to optimise next.
"""

from __future__ import annotations

import bisect
from typing import Any

from repro.asm.linker import Program
from repro.telemetry.events import RETIRE, EventBus, TelemetryEvent


class RegionProfiler:
    """Attributes simulated cycles to symbol-table regions.

    A region spans from one text symbol to the next; instructions
    before the first symbol land in ``<pre-text>`` (unreachable with a
    normal linker layout, kept for robustness).
    """

    def __init__(self, program: Program, bus: EventBus) -> None:
        symbols = [
            (addr, name)
            for name, addr in program.symbols.items()
            if addr < program.text_size
        ]
        symbols.sort()
        self._addrs = [addr for addr, _ in symbols]
        self._names = [name for _, name in symbols]
        self.cycles: dict[str, int] = {}
        self.instructions: dict[str, int] = {}
        self._last_pc: int | None = None
        self._last_cycle = 0
        bus.subscribe(self._on_retire, kinds=(RETIRE,))

    def region_of(self, pc: int) -> str:
        index = bisect.bisect_right(self._addrs, pc) - 1
        if index < 0:
            return "<pre-text>"
        return self._names[index]

    def _on_retire(self, event: TelemetryEvent) -> None:
        pc = event.value
        region = self.region_of(pc)
        self.instructions[region] = self.instructions.get(region, 0) + 1
        if self._last_pc is not None:
            prev = self.region_of(self._last_pc)
            self.cycles[prev] = (
                self.cycles.get(prev, 0) + event.cycle - self._last_cycle
            )
        elif event.cycle > self._last_cycle:
            # cycles between run start and the first retire belong to
            # the first instruction, so region cycles sum to the total
            self.cycles[region] = (
                self.cycles.get(region, 0) + event.cycle - self._last_cycle
            )
        self._last_pc = pc
        self._last_cycle = event.cycle

    def finalize(self, final_cycle: int) -> None:
        """Charge the tail (cycles after the last retire) to the last
        instruction's region.  Idempotent for a fixed ``final_cycle``."""
        if self._last_pc is not None and final_cycle > self._last_cycle:
            region = self.region_of(self._last_pc)
            self.cycles[region] = (
                self.cycles.get(region, 0) + final_cycle - self._last_cycle
            )
            self._last_cycle = final_cycle

    def reset(self) -> None:
        self.cycles.clear()
        self.instructions.clear()
        self._last_pc = None
        self._last_cycle = 0

    # ------------------------------------------------------------------
    def report(self) -> list[dict[str, Any]]:
        """Regions sorted by descending cycle count."""
        regions = sorted(
            set(self.cycles) | set(self.instructions),
            key=lambda r: -self.cycles.get(r, 0),
        )
        total = sum(self.cycles.values()) or 1
        return [
            {
                "region": region,
                "cycles": self.cycles.get(region, 0),
                "instructions": self.instructions.get(region, 0),
                "share": self.cycles.get(region, 0) / total,
            }
            for region in regions
        ]

    def text(self, top: int = 10) -> str:
        lines = ["region                      cycles  instrs   share"]
        for row in self.report()[:top]:
            lines.append(
                f"{row['region']:<24} {row['cycles']:>9} "
                f"{row['instructions']:>7} {row['share']:>6.1%}"
            )
        return "\n".join(lines)


class PhaseTimer:
    """Accumulates wall-clock seconds per simulator phase.

    The co-simulation run loop feeds this only when a timer is
    attached *and* enabled — the plain loop stays untouched, which is
    what keeps telemetry-off overhead near zero.
    """

    #: phases the co-simulation loop reports
    CPU_STEP = "cpu_step"
    BLOCK_STEP = "block_step"
    FAST_FORWARD_SCAN = "fast_forward_scan"

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    def add(self, phase: str, seconds: float) -> None:
        self.seconds[phase] = self.seconds.get(phase, 0.0) + seconds
        self.calls[phase] = self.calls.get(phase, 0) + 1

    def reset(self) -> None:
        self.seconds.clear()
        self.calls.clear()

    def report(self, total_wall: float | None = None) -> dict[str, Any]:
        accounted = sum(self.seconds.values())
        out: dict[str, Any] = {
            phase: {
                "seconds": self.seconds[phase],
                "calls": self.calls.get(phase, 0),
            }
            for phase in sorted(self.seconds)
        }
        if total_wall is not None:
            out["other"] = {
                "seconds": max(total_wall - accounted, 0.0),
                "calls": 0,
            }
        return out

    def text(self, total_wall: float | None = None) -> str:
        report = self.report(total_wall)
        total = sum(row["seconds"] for row in report.values()) or 1.0
        lines = ["phase                     seconds      calls   share"]
        for phase, row in report.items():
            lines.append(
                f"{phase:<22} {row['seconds']:>10.4f} {row['calls']:>10} "
                f"{row['seconds'] / total:>6.1%}"
            )
        return "\n".join(lines)
