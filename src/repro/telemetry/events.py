"""Typed, timestamped telemetry events and the event bus.

Every observable thing the co-simulation does — an instruction
retiring, a stall starting or ending, a word crossing an FSL channel, a
hardware block firing, the kernel fast-forwarding over a quiescent
window, the deadlock watchdog tripping — is one :class:`TelemetryEvent`
on one :class:`EventBus`.  The tracing front-ends
(:mod:`repro.iss.trace`, :mod:`repro.cosim.trace`), the metrics
collector, the profilers and the exporters are all just subscribers.

The no-op fast path matters more than the enabled path: producers hold
a *nullable* bus reference and emit only behind an ``is not None``
check, so a simulation without telemetry pays one pointer comparison
per potential event and allocates nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

# ----------------------------------------------------------------------
# Event kinds
# ----------------------------------------------------------------------
#: an instruction issued/retired (track="cpu", value=pc, aux=word,
#: text=mnemonic)
RETIRE = "retire"
#: a blocking FSL access started stalling the processor
#: (track=channel name, cycle=first stalled cycle)
STALL_BEGIN = "stall_begin"
#: the blocked access completed (track=channel name, cycle=completion
#: cycle, aux=stalled cycles)
STALL_END = "stall_end"
#: a word entered an FSL FIFO (track=channel name, value=data,
#: aux=occupancy after, text="ctrl" for control words)
FSL_PUSH = "fsl_push"
#: a word left an FSL FIFO (same payload convention as FSL_PUSH)
FSL_POP = "fsl_pop"
#: a hardware block did observable work at a clock edge
#: (track=block name)
BLOCK_FIRE = "block_fire"
#: the kernel bulk-advanced a quiescent window (track="cosim",
#: cycle=cycle *after* the skip, value=skipped cycles) — the condensed
#: stand-in for the per-cycle events the skip elided, so exported
#: traces stay cycle-faithful
FAST_FORWARD = "fast_forward"
#: the deadlock watchdog fired (track="cosim", value=pc)
DEADLOCK = "deadlock"
#: a fault was injected into the running simulation (track="cosim",
#: cycle=injection cycle, text=fault description)
FAULT_INJECTED = "fault_injected"
#: a detector (watchdog, invariant checker, crash) flagged the run
#: (track="cosim", text=detector name)
FAULT_DETECTED = "fault_detected"
#: recovery rolled the simulation back to a checkpoint (track="cosim",
#: cycle=cycle rolled back *to*, value=retry attempt number)
ROLLBACK = "rollback"

ALL_KINDS = (RETIRE, STALL_BEGIN, STALL_END, FSL_PUSH, FSL_POP,
             BLOCK_FIRE, FAST_FORWARD, DEADLOCK, FAULT_INJECTED,
             FAULT_DETECTED, ROLLBACK)

#: the track name used for processor-side events
CPU_TRACK = "cpu"
#: the track name used for engine-level events
COSIM_TRACK = "cosim"


@dataclass(frozen=True, slots=True)
class TelemetryEvent:
    """One timestamped occurrence.

    ``track`` names the entity the event belongs to (``"cpu"``, an FSL
    channel name, a block name, or ``"cosim"``); ``value``/``aux`` and
    ``text`` carry the kind-specific payload documented next to each
    kind constant.  All fields are plain ints/strings so events are
    trivially JSON- and pickle-safe.
    """

    kind: str
    cycle: int
    track: str
    value: int = 0
    aux: int = 0
    text: str = ""


class EventBus:
    """Synchronous publish/subscribe hub for telemetry events.

    Subscribers register for specific kinds (or all of them) and are
    called inline from :meth:`emit`, in subscription order.  There is
    deliberately no queueing or threading: the simulator is
    single-threaded and exporters want events in exact emission order.
    """

    __slots__ = ("_by_kind", "_any")

    def __init__(self) -> None:
        self._by_kind: dict[str, list[Callable[[TelemetryEvent], None]]] = {}
        self._any: list[Callable[[TelemetryEvent], None]] = []

    def subscribe(
        self,
        handler: Callable[[TelemetryEvent], None],
        kinds: tuple[str, ...] | None = None,
    ) -> Callable[[TelemetryEvent], None]:
        """Register ``handler`` for ``kinds`` (``None`` = every kind).
        Returns the handler so it can be passed to :meth:`unsubscribe`.
        """
        if kinds is None:
            self._any.append(handler)
        else:
            for kind in kinds:
                self._by_kind.setdefault(kind, []).append(handler)
        return handler

    def unsubscribe(self, handler: Callable[[TelemetryEvent], None]) -> None:
        if handler in self._any:
            self._any.remove(handler)
        for handlers in self._by_kind.values():
            if handler in handlers:
                handlers.remove(handler)

    def emit(self, event: TelemetryEvent) -> None:
        for handler in self._by_kind.get(event.kind, ()):
            handler(event)
        for handler in self._any:
            handler(event)

    @property
    def subscriber_count(self) -> int:
        """Distinct handlers (a multi-kind subscription counts once)."""
        handlers = {id(h) for h in self._any}
        for registered in self._by_kind.values():
            handlers.update(id(h) for h in registered)
        return len(handlers)
