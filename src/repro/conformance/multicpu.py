"""Seeded random multi-CPU conformance scenarios.

A :class:`MultiScenario` is a complete K-processor co-simulation: a
named FSL topology (pipeline / ring / 2-D mesh), one generated mini-C
driver per CPU, and optionally a small node-local hardware pipeline
behind each processor's own :class:`MicroBlazeBlock` (so both sysgen
engines stay load-bearing in the diff).  A word stream flows along a
deterministic route through the topology — every relay transforms the
tokens, the sink folds them into its exit code — and every CPU is
seasoned with timing-sensitive garnish:

* bounded **non-blocking polls** before the blocking phase, counting
  failures through the MSR carry — the per-cycle *arrival time* of an
  upstream word decides how many polls miss, which is exactly the
  inter-CPU race the oracle must prove execution-mode-invariant,
* **local hardware rounds** through the node's own FSL peripheral,
  skewing that CPU against its neighbours,
* optional **hazards** (a starving sink, an over-producing source)
  whose deadlock must be reported identically by every mode.

Like single-CPU scenarios, everything is plain frozen data with a
stable dict round-trip (``family: "multi"`` tags the documents), and
everything random derives from
``random.Random(f"mb32-multicpu/{seed}/{index}")``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.asm.linker import Program
from repro.conformance.scenario import STAGE_KINDS, StageSpec, _build_stage
from repro.cosim.mb_block import MicroBlazeBlock
from repro.cosim.multicpu import CPUNode, MultiCoSimulation
from repro.cosim.topology import TopologySpec
from repro.cosim.trace import FSLTrace
from repro.iss.cpu import CPUConfig
from repro.mcc import CompileOptions, build_executable
from repro.sysgen import Model
from repro.sysgen.blocks import Delay, Inverter, Logical
from repro.telemetry import Telemetry

MULTI_TOPOLOGY_KINDS = ("pipeline", "ring", "mesh")

#: per-token transforms a relay may apply
NODE_ARITH = ("none", "inc", "dbl", "xor", "mul3")

#: FSL channel id for a node's local hardware loopback — clear of the
#: topology link channels (pipeline/ring use 0, mesh uses 0..3)
LOCAL_HW_CHANNEL = 6


@dataclass(frozen=True)
class MultiNodeSpec:
    """Per-CPU configuration of a multi-CPU scenario."""

    arith: str = "none"
    #: non-blocking ``nget`` attempts before the blocking stream phase
    polls: int = 0
    #: optional node-local hardware stage on :data:`LOCAL_HW_CHANNEL`
    hw_stage: StageSpec | None = None
    #: words the node streams through its local hardware before (and
    #: interleaved ahead of) the inter-CPU phase
    hw_rounds: int = 0
    hw_multiplier: bool = True
    hw_divider: bool = False
    hw_barrel_shifter: bool = True

    def compile_options(self) -> CompileOptions:
        return CompileOptions(
            hw_multiplier=self.hw_multiplier,
            hw_divider=self.hw_divider,
            hw_barrel_shifter=self.hw_barrel_shifter,
        )

    def cpu_config(self) -> CPUConfig:
        return CPUConfig(
            use_hw_multiplier=self.hw_multiplier,
            use_hw_divider=self.hw_divider,
            use_barrel_shifter=self.hw_barrel_shifter,
        )

    def to_dict(self) -> dict:
        return {
            "arith": self.arith,
            "polls": self.polls,
            "hw_stage": (self.hw_stage.to_dict()
                         if self.hw_stage is not None else None),
            "hw_rounds": self.hw_rounds,
            "hw_multiplier": self.hw_multiplier,
            "hw_divider": self.hw_divider,
            "hw_barrel_shifter": self.hw_barrel_shifter,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MultiNodeSpec":
        stage = data.get("hw_stage")
        return cls(
            arith=data.get("arith", "none"),
            polls=int(data.get("polls", 0)),
            hw_stage=StageSpec.from_dict(stage) if stage else None,
            hw_rounds=int(data.get("hw_rounds", 0)),
            hw_multiplier=bool(data.get("hw_multiplier", True)),
            hw_divider=bool(data.get("hw_divider", False)),
            hw_barrel_shifter=bool(data.get("hw_barrel_shifter", True)),
        )


@dataclass(frozen=True)
class MultiScenario:
    """A complete randomized K-CPU design + per-CPU driver programs."""

    name: str
    seed: str
    topology_kind: str = "pipeline"
    n_cpus: int = 2
    rows: int = 0
    cols: int = 0
    link_depth: int = 16
    tokens: int = 4
    value_param: int = 0
    hazard: str = ""  # "" | "starve" | "overflow"
    nodes: tuple[MultiNodeSpec, ...] = ()
    max_cycles: int = 120_000

    #: discriminator for mixed-family corpora / golden files
    family = "multi"

    def topology(self) -> TopologySpec:
        return TopologySpec.named(self.topology_kind, n_cpus=self.n_cpus,
                                  rows=self.rows, cols=self.cols)

    def route(self) -> tuple[int, ...]:
        """Node indices along the token stream.  Pipelines run front to
        back, rings close the loop back to node 0 (which is both source
        and sink), meshes snake row-major (serpentine) so every hop is
        a neighbour link; the reverse mesh links stay idle."""
        if self.topology_kind == "pipeline":
            return tuple(range(self.n_cpus))
        if self.topology_kind == "ring":
            return tuple(range(self.n_cpus)) + (0,)
        if self.topology_kind == "mesh":
            path: list[int] = []
            for r in range(self.rows):
                cols = range(self.cols)
                if r % 2:
                    cols = reversed(cols)
                path.extend(r * self.cols + c for c in cols)
            return tuple(path)
        raise ValueError(f"unknown topology kind {self.topology_kind!r}")

    def stream_channels(self, node: int) -> tuple[int | None, int | None]:
        """(input FSL channel, output FSL channel) of ``node`` along
        the route — ``None`` at the open ends of a pipeline/mesh."""
        topo = self.topology()
        route = self.route()
        in_ch = out_ch = None
        for a, b in zip(route, route[1:]):
            for link in topo.links:
                if link.src == a and link.dst == b:
                    if a == node:
                        out_ch = link.src_channel
                    if b == node:
                        in_ch = link.dst_channel
        return in_ch, out_ch

    def to_dict(self) -> dict:
        return {
            "family": "multi",
            "name": self.name,
            "seed": self.seed,
            "topology_kind": self.topology_kind,
            "n_cpus": self.n_cpus,
            "rows": self.rows,
            "cols": self.cols,
            "link_depth": self.link_depth,
            "tokens": self.tokens,
            "value_param": self.value_param,
            "hazard": self.hazard,
            "nodes": [n.to_dict() for n in self.nodes],
            "max_cycles": self.max_cycles,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MultiScenario":
        return cls(
            name=data["name"],
            seed=data["seed"],
            topology_kind=data.get("topology_kind", "pipeline"),
            n_cpus=int(data.get("n_cpus", 2)),
            rows=int(data.get("rows", 0)),
            cols=int(data.get("cols", 0)),
            link_depth=int(data.get("link_depth", 16)),
            tokens=int(data.get("tokens", 4)),
            value_param=int(data.get("value_param", 0)),
            hazard=data.get("hazard", ""),
            nodes=tuple(MultiNodeSpec.from_dict(n)
                        for n in data.get("nodes", [])),
            max_cycles=int(data.get("max_cycles", 120_000)),
        )


# --------------------------------------------------------------------------
# program rendering


def _transform(arith: str, var: str) -> str:
    if arith == "none":
        return var
    if arith == "inc":
        return f"{var} + 1"
    if arith == "dbl":
        return f"{var} + {var}"
    if arith == "xor":
        return f"{var} ^ 23130"
    if arith == "mul3":
        return f"{var} * 3"
    raise ValueError(f"unknown node arith {arith!r}")


def _hw_session(node: MultiNodeSpec, lines: list[str]) -> None:
    if node.hw_stage is None or node.hw_rounds <= 0:
        return
    lines += [
        f"    for (int w0 = 0; w0 < {node.hw_rounds}; w0++) {{",
        f"        putfsl(w0 * 3 + 1, {LOCAL_HW_CHANNEL});",
        f"        acc = acc + getfsl({LOCAL_HW_CHANNEL});",
        "    }",
    ]


def _poll_prelude(scenario: MultiScenario, node: MultiNodeSpec,
                  in_ch: int, forward_to: int | None,
                  lines: list[str]) -> None:
    """Bounded non-blocking drain: every missed poll bumps ``acc``
    through the carry flag; every hit is forwarded (relay) or folded
    (sink).  ``got`` counts hits so the blocking phase consumes exactly
    the remaining tokens."""
    arith = node.arith
    lines.append("    int got = 0;")
    if node.polls > 0:
        lines.append(f"    for (int p0 = 0; p0 < {node.polls}; p0++) {{")
        lines.append(f"        unsigned u0 = ngetfsl({in_ch});")
        lines.append("        if (fsl_isinvalid()) {")
        lines.append("            acc = acc + 1;")
        lines.append("        } else {")
        if forward_to is not None:
            lines.append(
                f"            putfsl({_transform(arith, 'u0')}, {forward_to});")
        else:
            lines.append(f"            acc = acc + u0;")
        lines.append("            got = got + 1;")
        lines.append("        }")
        lines.append("    }")


def render_node_program(scenario: MultiScenario, node_index: int) -> str:
    """Render one CPU's driver as mini-C source."""
    node = scenario.nodes[node_index]
    route = scenario.route()
    in_ch, out_ch = scenario.stream_channels(node_index)
    tokens = scenario.tokens
    mult = (scenario.value_param % 7) + 1
    bias = scenario.value_param % 29
    is_head = scenario.topology_kind == "ring" and node_index == 0
    is_source = node_index == route[0] and not is_head
    is_sink = node_index == route[-1] and not is_head

    lines = [
        f"/* generated by mb32-conformance — scenario {scenario.name}, "
        f"cpu{node_index} */",
        "int main(void) {",
        "    unsigned acc = 1;",
    ]
    _hw_session(node, lines)

    if is_head:
        # ring head: source and sink in one — one token in flight
        lines += [
            f"    for (int i0 = 0; i0 < {tokens}; i0++) {{",
            f"        putfsl(i0 * {mult} + {bias}, {out_ch});",
            f"        acc = acc + getfsl({in_ch});",
            "    }",
        ]
    elif is_source:
        lines += [
            f"    for (int i0 = 0; i0 < {tokens}; i0++)",
            f"        putfsl(i0 * {mult} + {bias}, {out_ch});",
        ]
    elif is_sink:
        _poll_prelude(scenario, node, in_ch, None, lines)
        lines += [
            f"    while (got < {tokens}) {{",
            f"        acc = acc + getfsl({in_ch});",
            "        got = got + 1;",
            "    }",
        ]
    else:  # relay
        _poll_prelude(scenario, node, in_ch, out_ch, lines)
        lines += [
            f"    while (got < {tokens}) {{",
            f"        unsigned t0 = getfsl({in_ch});",
            f"        putfsl({_transform(node.arith, 't0')}, {out_ch});",
            "        got = got + 1;",
            "    }",
        ]

    if scenario.hazard == "overflow" and (is_source or is_head):
        # downstream has exited by the time these flood in: the source
        # fills the link FIFO and blocks forever — a deadlock every
        # mode must report identically
        extra = scenario.link_depth + 4
        lines += [
            f"    for (int h0 = 0; h0 < {extra}; h0++)",
            f"        putfsl(h0, {out_ch});",
        ]
    if scenario.hazard == "starve" and (is_sink or is_head):
        lines.append(f"    acc = acc + getfsl({in_ch});")

    lines += [
        "    return acc & 255;",
        "}",
        "",
    ]
    return "\n".join(lines)


def build_node_program(scenario: MultiScenario, node_index: int) -> Program:
    return build_executable(
        render_node_program(scenario, node_index),
        options=scenario.nodes[node_index].compile_options(),
    )


def build_programs(scenario: MultiScenario) -> list[Program]:
    """Compile every CPU's driver program, node order."""
    return [build_node_program(scenario, k)
            for k in range(len(scenario.nodes))]


# --------------------------------------------------------------------------
# hardware / simulation builder


def _build_local_hw(scenario: MultiScenario, node_index: int,
                    node: MultiNodeSpec) -> tuple[Model, MicroBlazeBlock]:
    """One gated single-stage FSL pipeline behind the node's own
    MicroBlaze block (the shrunk twin of the single-CPU scenario
    builder)."""
    model = Model(f"{scenario.name}_cpu{node_index}")
    mb = MicroBlazeBlock(model, fifo_depth=8,
                         prefix=f"cpu{node_index}_mb_")
    rd = mb.master_fsl(LOCAL_HW_CHANNEL)
    wr = mb.slave_fsl(LOCAL_HW_CHANNEL)
    notfull = model.add(Inverter("hw_notfull", width=1))
    model.connect(wr.o("full"), notfull.i("a"))
    strobe_blk = model.add(Logical("hw_strobe", width=1, op="and"))
    model.connect(rd.o("exists"), strobe_blk.i("d0"))
    model.connect(notfull.o("out"), strobe_blk.i("d1"))
    strobe = strobe_blk.o("out")
    model.connect(strobe, rd.i("read"))
    data, latency = _build_stage(
        model, f"hw_s0_{node.hw_stage.kind}", node.hw_stage, rd.o("data"))
    if latency > 0:
        valid_blk = model.add(Delay("hw_valid", width=1, n=latency))
        model.connect(strobe, valid_blk.i("d"))
        valid = valid_blk.o("q")
    else:
        valid = strobe
    model.connect(data, wr.i("data"))
    model.connect(valid, wr.i("write"))
    model.probe(rd.o("exists"), name="hw_exists")
    model.probe(wr.o("full"), name="hw_full")
    return model, mb


def build_multi_sim(
    scenario: MultiScenario,
    programs: list[Program] | None = None,
    *,
    fast_forward: bool,
    verify: bool = False,
) -> tuple[MultiCoSimulation, FSLTrace]:
    """Build the K-CPU simulation (+ an installed FSL tracer spanning
    every link and node-local channel)."""
    if programs is None:
        programs = build_programs(scenario)
    nodes = []
    for k, nspec in enumerate(scenario.nodes):
        model = mb = None
        if nspec.hw_stage is not None and nspec.hw_rounds > 0:
            model, mb = _build_local_hw(scenario, k, nspec)
        nodes.append(CPUNode(
            program=programs[k],
            cpu_config=nspec.cpu_config(),
            model=model,
            mb_block=mb,
        ))
    # telemetry attaches at construction so the FSLTrace installed
    # below subscribes to the same event bus instead of a private one
    sim = MultiCoSimulation(
        nodes,
        scenario.topology(),
        link_depth=scenario.link_depth,
        fast_forward=fast_forward,
        verify_fast_forward=verify,
        telemetry=Telemetry(),
    )
    trace = FSLTrace(sim, clock=lambda: sim.cycle).install()
    return sim, trace


# --------------------------------------------------------------------------
# generator


@dataclass
class MultiScenarioGenerator:
    """Deterministic stream of random K-CPU scenarios (2–4 CPUs over
    pipeline/ring/mesh topologies).  Scenario ``i`` of seed ``s``
    depends only on ``(s, i)``, mirroring
    :class:`~repro.conformance.scenario.ScenarioGenerator`."""

    seed: int = 0
    max_cycles: int = 120_000
    hazard_rate: float = 0.10

    def scenario(self, index: int) -> MultiScenario:
        rng = random.Random(f"mb32-multicpu/{self.seed}/{index}")
        name = f"m{self.seed}-{index:04d}"

        kind = rng.choice(("pipeline", "pipeline", "ring", "mesh"))
        if kind == "mesh":
            rows = cols = 2
            n_cpus = 4
        else:
            rows = cols = 0
            n_cpus = rng.randint(2, 4)
        link_depth = rng.choice((2, 4, 8, 16))
        tokens = rng.randint(2, 12)
        hazard = ""
        if rng.random() < self.hazard_rate:
            hazard = rng.choice(("starve", "overflow"))

        nodes = []
        for _ in range(n_cpus):
            hw_stage = None
            hw_rounds = 0
            if rng.random() < 0.45:
                hw_stage = StageSpec(kind=rng.choice(STAGE_KINDS),
                                     param=rng.randint(0, 63),
                                     latency=rng.randint(0, 2))
                hw_rounds = rng.randint(1, 4)
            nodes.append(MultiNodeSpec(
                arith=rng.choice(NODE_ARITH),
                polls=rng.randint(1, 4) if rng.random() < 0.5 else 0,
                hw_stage=hw_stage,
                hw_rounds=hw_rounds,
                hw_multiplier=rng.random() < 0.8,
                hw_divider=rng.random() < 0.3,
                hw_barrel_shifter=rng.random() < 0.8,
            ))

        return MultiScenario(
            name=name,
            seed=f"{self.seed}/{index}",
            topology_kind=kind,
            n_cpus=n_cpus,
            rows=rows,
            cols=cols,
            link_depth=link_depth,
            tokens=tokens,
            value_param=rng.randint(0, 200),
            hazard=hazard,
            nodes=tuple(nodes),
            max_cycles=self.max_cycles,
        )

    def scenarios(self, count: int, start: int = 0):
        for index in range(start, start + count):
            yield self.scenario(index)


def multi_variants(scenario: MultiScenario):
    """Structurally smaller shrink candidates, biggest cuts first
    (consumed by :func:`repro.conformance.shrink.shrink_scenario`)."""
    if scenario.hazard:
        yield replace(scenario, hazard="")
    if scenario.topology_kind == "pipeline" and scenario.n_cpus > 2:
        yield replace(scenario, n_cpus=scenario.n_cpus - 1,
                      nodes=scenario.nodes[:-1])
    for k, node in enumerate(scenario.nodes):
        if node.hw_stage is not None:
            yield replace(scenario, nodes=(
                scenario.nodes[:k]
                + (replace(node, hw_stage=None, hw_rounds=0),)
                + scenario.nodes[k + 1:]))
        if node.polls:
            yield replace(scenario, nodes=(
                scenario.nodes[:k] + (replace(node, polls=0),)
                + scenario.nodes[k + 1:]))
        if node.arith != "none":
            yield replace(scenario, nodes=(
                scenario.nodes[:k] + (replace(node, arith="none"),)
                + scenario.nodes[k + 1:]))
    if scenario.tokens > 1:
        yield replace(scenario, tokens=scenario.tokens // 2)
