"""Golden-trace corpus with drift classification.

A golden file pins one scenario together with the full observation of
its per-cycle reference run.  ``check_golden`` re-runs the corpus and
sorts every deviation into one of two buckets:

``semantic-change``
    the stored trace no longer matches the live reference, but all
    live execution modes still agree with *each other* — the engine's
    semantics moved intentionally (new instruction timing, FIFO
    accounting fix, ...).  The fix is to re-bless the corpus
    (``mb32-conformance --corpus DIR --bless``) in the same change,
    which makes the semantic shift reviewable in the diff.

``silent-regression``
    the live execution modes disagree among themselves — one of the
    fast paths broke, regardless of what the stored trace says.  This
    is never fixable by re-blessing.

Golden files are plain sorted-key JSON so a regression diff is
reviewable line by line.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.conformance.oracle import (
    ALL_MODES,
    REFERENCE_MODE,
    Observation,
    check_scenario,
    first_divergence,
    observe,
)
from repro.conformance.scenario import Scenario, scenario_from_dict

GOLDEN_VERSION = 1


@dataclass
class DriftEntry:
    """Result of re-checking one golden file."""

    name: str
    kind: str  # ok | semantic-change | silent-regression | error
    message: str = ""
    path: str = ""          # first divergent observable (dotted path)
    stored: object = None
    live: object = None
    mode_divergences: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.kind == "ok"

    def to_dict(self) -> dict:
        out = {"name": self.name, "kind": self.kind, "message": self.message}
        if self.path:
            out["path"] = self.path
            out["stored"] = self.stored
            out["live"] = self.live
        if self.mode_divergences:
            out["mode_divergences"] = self.mode_divergences
        return out


def golden_path(corpus_dir: str | Path, name: str) -> Path:
    return Path(corpus_dir) / f"{name}.json"


def write_golden(corpus_dir: str | Path, scenario: Scenario,
                 observation: Observation) -> Path:
    """Serialize one golden trace; returns the file written."""
    path = golden_path(corpus_dir, scenario.name)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": GOLDEN_VERSION,
        "scenario": scenario.to_dict(),
        "observation": observation.to_dict(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_golden(path: str | Path) -> tuple[Scenario, dict]:
    """Load one golden file -> (scenario, stored observation dict)."""
    data = json.loads(Path(path).read_text())
    version = data.get("version")
    if version != GOLDEN_VERSION:
        raise ValueError(
            f"{path}: golden format version {version!r}, "
            f"expected {GOLDEN_VERSION}")
    return scenario_from_dict(data["scenario"]), data["observation"]


def bless_golden(corpus_dir: str | Path,
                 scenarios: list[Scenario]) -> list[Path]:
    """(Re)write golden traces for ``scenarios`` from fresh reference
    runs."""
    written = []
    for scenario in scenarios:
        observation = observe(scenario, REFERENCE_MODE)
        written.append(write_golden(corpus_dir, scenario, observation))
    return written


def corpus_files(corpus_dir: str | Path) -> list[Path]:
    return sorted(Path(corpus_dir).glob("*.json"))


def check_golden(corpus_dir: str | Path,
                 modes: tuple[str, ...] = ALL_MODES) -> list[DriftEntry]:
    """Re-run every golden scenario and classify any drift."""
    entries: list[DriftEntry] = []
    for path in corpus_files(corpus_dir):
        try:
            scenario, stored = load_golden(path)
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            entries.append(DriftEntry(name=path.stem, kind="error",
                                      message=str(exc)))
            continue
        entries.append(_check_one(scenario, stored, modes))
    return entries


def _check_one(scenario: Scenario, stored: dict,
               modes: tuple[str, ...]) -> DriftEntry:
    verdict = check_scenario(scenario, modes)
    if verdict.build_error:
        return DriftEntry(name=scenario.name, kind="error",
                          message=f"build failed: {verdict.build_error}")

    mode_divergences = dict(verdict.divergences)
    stored_surface = Observation.from_dict(stored).comparable()
    hit = first_divergence(stored_surface, verdict.reference.comparable())

    if mode_divergences:
        first_mode = sorted(mode_divergences)[0]
        div = mode_divergences[first_mode]
        return DriftEntry(
            name=scenario.name,
            kind="silent-regression",
            message=(f"execution modes disagree: {first_mode} diverges "
                     f"from {REFERENCE_MODE} at {div['path']} "
                     f"({div['reference']!r} -> {div['observed']!r}); "
                     "re-blessing cannot fix this"),
            path=div["path"],
            stored=div["reference"],
            live=div["observed"],
            mode_divergences=mode_divergences,
        )
    if hit is not None:
        path_, stored_value, live_value = hit
        return DriftEntry(
            name=scenario.name,
            kind="semantic-change",
            message=(f"stored trace differs from the live reference at "
                     f"{path_} ({stored_value!r} -> {live_value!r}) but all "
                     "live modes agree; if intentional, re-bless with "
                     "`mb32-conformance --corpus DIR --bless`"),
            path=path_,
            stored=stored_value,
            live=live_value,
        )
    return DriftEntry(name=scenario.name, kind="ok")
