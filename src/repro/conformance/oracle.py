"""Multi-mode oracle runner.

Runs one :class:`~repro.conformance.scenario.Scenario` under every
execution path the engine offers and diffs the *complete* observable
surface against the per-cycle reference loop.  The oracle is purely
differential: it never predicts what a random design computes — a
deadlock, a dropped word or a control-bit mismatch is a perfectly valid
outcome as long as every mode reports exactly the same one.

Execution modes
---------------
``per_cycle``     the reference loop (``fast_forward=False``)
``fast_forward``  the event-horizon kernel (``fast_forward=True``)
``verify``        per-cycle with every would-be skip cross-checked
                  (``verify_fast_forward=True``)
``reset_rerun``   run once, :meth:`~repro.cosim.CoSimulation.reset`,
                  run again — the second run must match a fresh one
``subprocess``    the scenario rebuilt and run inside a worker process,
                  the way the design-space sweep engine evaluates
                  points

Observable surface
------------------
exit code, halt reason, absolute cycle / instruction / stall counts,
deadlock point (the cycle the watchdog fired at), MSR carry and the
sticky FSL error flag, final pc, the whole register file, console
output, an sha256 digest of data memory, per-channel FIFO statistics
and final occupancies, dropped-write counters, per-probe sample-trace
digests, the FSL transaction log digest, per-model cycle counters and
the telemetry invariant snapshot (per-channel stall/occupancy metrics
plus the full CPU statistics record — everything the metrics pipeline
claims is execution-mode-independent).
"""

from __future__ import annotations

import hashlib
import multiprocessing
from dataclasses import dataclass, field

from repro.asm.linker import Program
from repro.conformance.multicpu import (
    MultiScenario,
    build_multi_sim,
    build_programs,
)
from repro.conformance.scenario import (
    Scenario,
    build_model,
    build_program,
    scenario_from_dict,
)
from repro.cosim.environment import (
    CoSimDeadlock,
    CoSimTimeout,
    CoSimulation,
    FastForwardError,
)
from repro.cosim.trace import FSLTrace
from repro.iss.cpu import HaltReason
from repro.runapi.engine import engine_scope
from repro.telemetry import Telemetry

ALL_MODES = ("per_cycle", "fast_forward", "verify", "reset_rerun",
             "subprocess")
REFERENCE_MODE = "per_cycle"

#: wall-clock guard for one subprocess observation (a scenario runs in
#: milliseconds; this only bounds a hung worker).
SUBPROCESS_TIMEOUT_S = 120.0


def _digest(payload: str) -> str:
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class Observation:
    """Everything observable about one scenario execution."""

    mode: str
    status: str = "exit"  # exit | max_cycles | deadlock | error:<Type>
    error: str = ""
    exit_code: int | None = None
    halt_reason: str = ""
    cycles: int = 0
    instructions: int = 0
    stall_cycles: int = 0
    carry: int = 0
    fsl_error: bool = False
    pc: int = 0
    regs: list = field(default_factory=list)
    console: str = ""
    mem_digest: str = ""
    channels: dict = field(default_factory=dict)
    dropped: dict = field(default_factory=dict)
    probes: dict = field(default_factory=dict)
    trace_digest: str = ""
    trace_count: int = 0
    model_cycle: int = 0
    metrics: dict = field(default_factory=dict)
    #: per-CPU detail for multi-CPU scenarios (node name -> surface);
    #: empty for single-CPU observations and pre-multi golden files
    cpus: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "status": self.status,
            "error": self.error,
            "exit_code": self.exit_code,
            "halt_reason": self.halt_reason,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "stall_cycles": self.stall_cycles,
            "carry": self.carry,
            "fsl_error": self.fsl_error,
            "pc": self.pc,
            "regs": list(self.regs),
            "console": self.console,
            "mem_digest": self.mem_digest,
            "channels": self.channels,
            "dropped": self.dropped,
            "probes": self.probes,
            "trace_digest": self.trace_digest,
            "trace_count": self.trace_count,
            "model_cycle": self.model_cycle,
            "metrics": self.metrics,
            "cpus": self.cpus,
        }

    def comparable(self) -> dict:
        """The surface that must be bit-identical across modes (the
        ``mode`` label itself, and the error *text* — which embeds
        occupancy dicts formatted per-mode — are excluded; error *type*
        is part of ``status`` and is compared)."""
        data = self.to_dict()
        del data["mode"]
        del data["error"]
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "Observation":
        return cls(**data)


def _capture(sim: CoSimulation, mode: str, status: str, error: str,
             trace: FSLTrace | None) -> Observation:
    cpu = sim.cpu
    channels = {}
    for ch in sim.mb_block.channels():
        channels[ch.name] = {
            "total_pushed": ch.total_pushed,
            "total_popped": ch.total_popped,
            "push_rejects": ch.push_rejects,
            "pop_rejects": ch.pop_rejects,
            "max_occupancy": ch.max_occupancy,
            "occupancy": ch.occupancy,
        }
    dropped = {blk.name: blk.dropped
               for blk in sim.mb_block.write_blocks.values()}
    probes = {}
    for probe in sim.model.probes:
        samples = probe.samples
        probes[probe.name] = {
            "len": len(samples),
            "last": samples[-1] if samples else None,
            "digest": _digest(",".join(map(str, samples))),
        }
    trace_digest = ""
    trace_count = 0
    if trace is not None:
        payload = ";".join(
            f"{t.cycle}:{t.channel}:{t.direction}:{t.data}:{int(t.control)}"
            for t in trace.transactions)
        trace_digest = _digest(payload)
        trace_count = len(trace.transactions)
    halt = cpu.halt_reason
    return Observation(
        mode=mode,
        status=status,
        error=error,
        exit_code=cpu.exit_code,
        halt_reason=halt.name if isinstance(halt, HaltReason) else str(halt or ""),
        cycles=cpu.cycle,
        instructions=cpu.stats.instructions,
        stall_cycles=cpu.stats.stall_cycles,
        carry=cpu.carry,
        fsl_error=sim.mb_block.fsl_ports.error,
        pc=cpu.pc,
        regs=list(cpu.regs),
        console=cpu.mem.console.text,
        mem_digest=hashlib.sha256(cpu.mem.bram.dump()).hexdigest(),
        channels=channels,
        dropped=dropped,
        probes=probes,
        trace_digest=trace_digest,
        trace_count=trace_count,
        model_cycle=sim.model.cycle,
        metrics=(sim.telemetry.invariant_snapshot()
                 if sim.telemetry is not None else {}),
    )


def _trace_surface(trace: FSLTrace | None) -> tuple[str, int]:
    if trace is None:
        return "", 0
    payload = ";".join(
        f"{t.cycle}:{t.channel}:{t.direction}:{t.data}:{int(t.control)}"
        for t in trace.transactions)
    return _digest(payload), len(trace.transactions)


def _capture_multi(sim, mode: str, status: str, error: str,
                   trace: FSLTrace | None) -> Observation:
    """Capture a K-CPU simulation: aggregates at the top level (so the
    single-CPU diffing machinery applies untouched), per-CPU detail in
    ``Observation.cpus``."""
    channels = {}
    for ch in sim.all_channels():
        channels[ch.name] = {
            "total_pushed": ch.total_pushed,
            "total_popped": ch.total_popped,
            "push_rejects": ch.push_rejects,
            "pop_rejects": ch.pop_rejects,
            "max_occupancy": ch.max_occupancy,
            "occupancy": ch.occupancy,
        }
    dropped = {}
    probes = {}
    per_cpu = {}
    for node in sim.nodes:
        if node.mb_block is not None:
            for blk in node.mb_block.write_blocks.values():
                dropped[blk.name] = blk.dropped
        if node.model is not None:
            for probe in node.model.probes:
                samples = probe.samples
                probes[f"{node.name}.{probe.name}"] = {
                    "len": len(samples),
                    "last": samples[-1] if samples else None,
                    "digest": _digest(",".join(map(str, samples))),
                }
        cpu = node.cpu
        halt = cpu.halt_reason
        per_cpu[node.name] = {
            "exit_code": cpu.exit_code,
            "halt_reason": (halt.name if isinstance(halt, HaltReason)
                            else str(halt or "")),
            "cycles": cpu.cycle,
            "instructions": cpu.stats.instructions,
            "stall_cycles": cpu.stats.stall_cycles,
            "carry": cpu.carry,
            "fsl_error": cpu.fsl.error,
            "pc": cpu.pc,
            "regs": list(cpu.regs),
            "console": cpu.mem.console.text,
            "mem_digest": hashlib.sha256(cpu.mem.bram.dump()).hexdigest(),
            "model_cycle": node.model.cycle if node.model is not None else 0,
        }
    trace_digest, trace_count = _trace_surface(trace)
    halt = sim.halt_reason
    return Observation(
        mode=mode,
        status=status,
        error=error,
        exit_code=sim.exit_code,
        halt_reason=(halt.name if isinstance(halt, HaltReason)
                     else str(halt or "")),
        cycles=sim.cycle,
        instructions=sum(c["instructions"] for c in per_cpu.values()),
        stall_cycles=sum(c["stall_cycles"] for c in per_cpu.values()),
        fsl_error=any(c["fsl_error"] for c in per_cpu.values()),
        channels=channels,
        dropped=dropped,
        probes=probes,
        trace_digest=trace_digest,
        trace_count=trace_count,
        metrics=(sim.telemetry.invariant_snapshot()
                 if sim.telemetry is not None else {}),
        cpus=per_cpu,
    )


def _make_sim(scenario: Scenario, program: Program, *,
              fast_forward: bool, verify: bool = False) -> tuple[CoSimulation, FSLTrace]:
    model, mb = build_model(scenario)
    # telemetry attaches at construction so the FSLTrace installed
    # below subscribes to the same event bus instead of a private one
    sim = CoSimulation(program, model, mb,
                       cpu_config=scenario.cpu_config(),
                       fast_forward=fast_forward,
                       verify_fast_forward=verify,
                       telemetry=Telemetry())
    trace = FSLTrace(mb, clock=lambda: sim.cpu.cycle).install()
    return sim, trace


def _run(sim: CoSimulation, max_cycles: int) -> tuple[str, str]:
    """Run to completion; fold the outcome into a (status, error) pair."""
    try:
        result = sim.run(until=max_cycles)
    except CoSimDeadlock as exc:
        return "deadlock", str(exc)
    except (CoSimTimeout, FastForwardError) as exc:
        return f"error:{type(exc).__name__}", str(exc)
    except Exception as exc:  # noqa: BLE001 - any crash is an observable
        return f"error:{type(exc).__name__}", str(exc)
    if result.halt_reason is HaltReason.MAX_CYCLES:
        return "max_cycles", ""
    return "exit", ""


def observe(scenario: Scenario | MultiScenario, mode: str,
            program: Program | list[Program] | None = None,
            engine: str = "auto") -> Observation:
    """Execute ``scenario`` under ``mode`` and capture the full surface.

    Accepts both families: a single-CPU :class:`Scenario` (``program``
    is one :class:`Program`) or a :class:`MultiScenario` (``program``
    is the node-ordered program list).  ``engine`` selects the hardware
    execution engine (``"auto" | "compiled" | "interpreter"``) for the
    run, threaded to the simulation via
    :func:`~repro.runapi.engine_scope` — so the oracle can diff engines
    as well as loop modes.
    """
    if mode not in ALL_MODES:
        raise ValueError(f"unknown execution mode {mode!r}; "
                         f"choose from {', '.join(ALL_MODES)}")
    if mode == "subprocess":
        return _observe_subprocess(scenario, engine)
    multi = isinstance(scenario, MultiScenario)
    if program is None:
        program = (build_programs(scenario) if multi
                   else build_program(scenario))

    def make(*, fast_forward, verify=False):
        if multi:
            return build_multi_sim(scenario, program,
                                   fast_forward=fast_forward, verify=verify)
        return _make_sim(scenario, program,
                         fast_forward=fast_forward, verify=verify)

    with engine_scope(engine):
        if mode == "per_cycle":
            sim, trace = make(fast_forward=False)
        elif mode == "fast_forward":
            sim, trace = make(fast_forward=True)
        elif mode == "verify":
            sim, trace = make(fast_forward=True, verify=True)
        else:  # reset_rerun
            sim, trace = make(fast_forward=True)
            _run(sim, scenario.max_cycles)  # first run: outcome discarded
            sim.reset()
            trace.transactions.clear()

    status, error = _run(sim, scenario.max_cycles)
    capture = _capture_multi if multi else _capture
    return capture(sim, mode, status, error, trace)


def observe_batched(
    scenario: Scenario,
    lane_max_cycles: list[int],
    *,
    force_evict: tuple[int, ...] = (),
    force_evict_cycle: int = 64,
    engine: str = "auto",
    program: Program | None = None,
) -> list[Observation]:
    """Execute N lanes of ``scenario`` under the lockstep vector engine
    and capture each lane's full observable surface.

    Every lane runs the same scenario; ``lane_max_cycles`` gives each
    its own cycle budget, so lanes freeze (lane-mask) at different
    cycles — the divergence axis of the lockstep-vs-scalar equivalence
    suite.  ``force_evict`` lists lanes to kick onto the scalar engine
    mid-run, proving the eviction path reproduces the scalar surface
    bit-for-bit.  Each returned :class:`Observation` must satisfy
    ``obs.comparable() == observe(scenario_with_that_budget,
    "per_cycle").comparable()``.
    """
    from repro.cosim.batch import BatchedCoSimulation

    if isinstance(scenario, MultiScenario):
        raise ValueError(
            "observe_batched drives single-CPU lanes; multi-CPU scenarios "
            "group by MultiCoSimulation.lockstep_signature() and replay on "
            "the scalar engines")
    if program is None:
        program = build_program(scenario)
    traces: dict[int, FSLTrace] = {}

    def factory() -> CoSimulation:
        sim, trace = _make_sim(scenario, program, fast_forward=False)
        traces[id(sim)] = trace
        return sim

    with engine_scope(engine):
        batch = BatchedCoSimulation(
            [factory] * len(lane_max_cycles),
            force_evict=force_evict,
            force_evict_cycle=force_evict_cycle,
        )
        lane_results = batch.run(until=list(lane_max_cycles))

    observations = []
    for lane, lr in enumerate(lane_results):
        sim = batch.lane(lane)
        mode = "batched_evicted" if lr.evicted else "batched"
        observations.append(
            _capture(sim, mode, lr.status, lr.error_text, traces[id(sim)])
        )
    return observations


# --------------------------------------------------------------------------
# subprocess mode — mirror of the sweep engine's worker-process shape


def _subprocess_worker(conn, scenario_dict: dict,
                       engine: str = "auto") -> None:
    try:
        scenario = scenario_from_dict(scenario_dict)
        obs = observe(scenario, "fast_forward", engine=engine)
        payload = obs.to_dict()
        payload["mode"] = "subprocess"
        conn.send(("ok", payload))
    except Exception as exc:  # noqa: BLE001 - report, parent decides
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def _observe_subprocess(scenario: Scenario,
                        engine: str = "auto") -> Observation:
    ctx = multiprocessing.get_context()
    recv, send = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_subprocess_worker,
                       args=(send, scenario.to_dict(), engine), daemon=True)
    proc.start()
    send.close()
    try:
        if not recv.poll(SUBPROCESS_TIMEOUT_S):
            proc.terminate()
            return Observation(mode="subprocess", status="error:WorkerTimeout",
                               error=f"no result in {SUBPROCESS_TIMEOUT_S}s")
        kind, payload = recv.recv()
    except (EOFError, OSError) as exc:
        return Observation(mode="subprocess", status="error:WorkerDied",
                           error=str(exc))
    finally:
        recv.close()
        proc.join(timeout=5.0)
        if proc.is_alive():  # pragma: no cover - defensive
            proc.kill()
            proc.join()
    if kind != "ok":
        return Observation(mode="subprocess", status="error:WorkerError",
                           error=str(payload))
    return Observation.from_dict(payload)


# --------------------------------------------------------------------------
# diffing


def first_divergence(a: dict, b: dict, path: str = ""):
    """First leaf where two observation dicts differ, in sorted key
    order — returns ``(dotted.path, value_a, value_b)`` or ``None``."""
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in a:
                return (sub, "<missing>", b[key])
            if key not in b:
                return (sub, a[key], "<missing>")
            hit = first_divergence(a[key], b[key], sub)
            if hit is not None:
                return hit
        return None
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        for i in range(max(len(a), len(b))):
            sub = f"{path}[{i}]"
            if i >= len(a):
                return (sub, "<missing>", b[i])
            if i >= len(b):
                return (sub, a[i], "<missing>")
            hit = first_divergence(a[i], b[i], sub)
            if hit is not None:
                return hit
        return None
    if a != b:
        return (path, a, b)
    return None


@dataclass
class ScenarioVerdict:
    """Outcome of checking one scenario across modes."""

    scenario: Scenario
    reference: Observation | None = None
    observations: dict = field(default_factory=dict)  # mode -> Observation
    divergences: dict = field(default_factory=dict)   # mode -> diff dict
    build_error: str = ""
    shrunk: Scenario | None = None

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.build_error

    def to_dict(self) -> dict:
        out = {
            "name": self.scenario.name,
            "seed": self.scenario.seed,
            "ok": self.ok,
            "status": self.reference.status if self.reference else "build-error",
            "cycles": self.reference.cycles if self.reference else 0,
            "modes": sorted(self.observations),
            "divergences": self.divergences,
        }
        if self.build_error:
            out["build_error"] = self.build_error
        if self.shrunk is not None:
            out["shrunk"] = self.shrunk.to_dict()
        return out


def check_scenario(scenario: Scenario,
                   modes: tuple[str, ...] = ALL_MODES,
                   engine: str = "auto") -> ScenarioVerdict:
    """Run ``scenario`` under every mode and diff against the reference.

    The reference mode is always run (and always first), whether or not
    it appears in ``modes``.  ``engine`` is forwarded to every
    :func:`observe` call.
    """
    verdict = ScenarioVerdict(scenario=scenario)
    try:
        if isinstance(scenario, MultiScenario):
            program = build_programs(scenario)
        else:
            program = build_program(scenario)
    except Exception as exc:  # noqa: BLE001 - a generator bug, not a diff
        verdict.build_error = f"{type(exc).__name__}: {exc}"
        return verdict

    reference = observe(scenario, REFERENCE_MODE, program, engine)
    verdict.reference = reference
    verdict.observations[REFERENCE_MODE] = reference
    ref_surface = reference.comparable()

    for mode in modes:
        if mode == REFERENCE_MODE:
            continue
        obs = observe(scenario, mode, program, engine)
        verdict.observations[mode] = obs
        hit = first_divergence(ref_surface, obs.comparable())
        if hit is not None:
            path, ref_value, obs_value = hit
            verdict.divergences[mode] = {
                "path": path,
                "reference": ref_value,
                "observed": obs_value,
            }
    return verdict


@dataclass
class ConformanceReport:
    """Aggregate result of a conformance run (CLI / CI artifact)."""

    seed: int
    modes: tuple[str, ...]
    verdicts: list = field(default_factory=list)

    @property
    def total(self) -> int:
        return len(self.verdicts)

    @property
    def failed(self) -> list:
        return [v for v in self.verdicts if not v.ok]

    @property
    def ok(self) -> bool:
        return not self.failed

    def status_counts(self) -> dict:
        counts: dict[str, int] = {}
        for verdict in self.verdicts:
            status = (verdict.reference.status if verdict.reference
                      else "build-error")
            counts[status] = counts.get(status, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        return {
            "kind": "mb32-conformance",
            "seed": self.seed,
            "modes": list(self.modes),
            "total": self.total,
            "ok": self.ok,
            "status_counts": self.status_counts(),
            "scenarios": [v.to_dict() for v in self.verdicts],
        }
