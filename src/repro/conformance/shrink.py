"""Greedy scenario shrinking.

When the oracle finds a divergence, the raw scenario usually carries a
lot of freight that has nothing to do with the bug (extra ops, extra
pipeline stages, an unused second pipeline).  ``shrink_scenario``
reduces it hypothesis-style — try structurally smaller variants, keep
any that still diverges, repeat to a fixpoint — under a hard budget of
oracle runs, so a failing fuzz run always ends with a small
reproducer in the report.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from repro.conformance.multicpu import MultiScenario, multi_variants
from repro.conformance.oracle import ALL_MODES, check_scenario
from repro.conformance.scenario import Scenario


def _scenario_variants(scenario) -> Iterator:
    """Family dispatch: multi-CPU scenarios shrink along their own
    axes (hazard, trailing pipeline node, per-node hardware/polls/
    arith, token count)."""
    if isinstance(scenario, MultiScenario):
        return multi_variants(scenario)
    return _variants(scenario)


def _variants(scenario: Scenario) -> Iterator[Scenario]:
    """Structurally smaller candidates, biggest cuts first."""
    # 1. drop a whole op
    for k in range(len(scenario.ops)):
        yield replace(scenario,
                      ops=scenario.ops[:k] + scenario.ops[k + 1:])
    # 2. drop a pipeline no remaining op references
    used = {op.channel for op in scenario.ops
            if op.kind != "arith"}
    for k, pipe in enumerate(scenario.pipelines):
        if pipe.channel not in used and len(scenario.pipelines) > 1:
            yield replace(scenario,
                          pipelines=(scenario.pipelines[:k]
                                     + scenario.pipelines[k + 1:]))
    # 3. drop a pipeline stage
    for k, pipe in enumerate(scenario.pipelines):
        for s in range(len(pipe.stages)):
            smaller = replace(pipe, stages=pipe.stages[:s] + pipe.stages[s + 1:])
            yield replace(scenario,
                          pipelines=(scenario.pipelines[:k] + (smaller,)
                                     + scenario.pipelines[k + 1:]))
    # 4. switch off side machinery
    if scenario.free_counter:
        yield replace(scenario, free_counter=False)
    for k, pipe in enumerate(scenario.pipelines):
        if pipe.observer != "none":
            yield replace(scenario,
                          pipelines=(scenario.pipelines[:k]
                                     + (replace(pipe, observer="none"),)
                                     + scenario.pipelines[k + 1:]))
        if pipe.control_loop:
            yield replace(scenario,
                          pipelines=(scenario.pipelines[:k]
                                     + (replace(pipe, control_loop=False),)
                                     + scenario.pipelines[k + 1:]))
    # 5. halve op counts
    for k, op in enumerate(scenario.ops):
        if op.count > 1:
            yield replace(scenario,
                          ops=(scenario.ops[:k]
                               + (replace(op, count=op.count // 2),)
                               + scenario.ops[k + 1:]))


def _default_fails(modes: tuple[str, ...]) -> Callable[[Scenario], bool]:
    def fails(candidate: Scenario) -> bool:
        verdict = check_scenario(candidate, modes)
        return bool(verdict.divergences)
    return fails


def shrink_scenario(
    scenario: Scenario,
    modes: tuple[str, ...] = ALL_MODES,
    max_checks: int = 40,
    fails: Callable[[Scenario], bool] | None = None,
) -> Scenario:
    """Return a structurally minimal scenario that still fails.

    ``fails`` defaults to "check_scenario over ``modes`` reports a
    divergence"; tests inject synthetic predicates.  At most
    ``max_checks`` oracle runs are spent; the best reduction found
    within the budget is returned (possibly the input itself).
    """
    if fails is None:
        fails = _default_fails(modes)
    current = scenario
    checks = 0
    progress = True
    while progress and checks < max_checks:
        progress = False
        for candidate in _scenario_variants(current):
            checks += 1
            if fails(candidate):
                current = replace(candidate, name=scenario.name + "-min")
                progress = True
                break
            if checks >= max_checks:
                break
    return current
