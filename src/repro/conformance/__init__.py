"""Differential conformance fuzzing for the co-simulation engine.

The paper's contract is that the high-level co-simulation is
*cycle-accurate*; every speed trick the engine grew since (the
fast-forward kernel, sweep worker subprocesses, environment re-use
after ``reset()``) must therefore be observably indistinguishable from
the per-cycle reference loop.  This package locks that in:

* :mod:`repro.conformance.scenario` — a seeded generator of random
  co-simulation designs: FSL pipeline topologies assembled from the
  sysgen block library paired with generated mini-C programs mixing
  blocking and non-blocking ``get``/``put``, control-bit traffic,
  carry/MSR reads and multi-cycle arithmetic,
* :mod:`repro.conformance.oracle` — runs one scenario under every
  execution mode and diffs the *full* observable surface (cycle,
  instruction and stall counts, FIFO statistics, channel occupancies,
  probe traces, FSL transaction logs, deadlock points, register file
  and memory digests),
* :mod:`repro.conformance.shrink` — reduces a divergent scenario to a
  minimal reproducer,
* :mod:`repro.conformance.golden` — a pinned golden-trace corpus with
  drift detection that distinguishes an intentional semantic change
  (re-bless) from a silent regression in one execution mode.

The ``mb32-conformance`` CLI (:func:`repro.cli.conformance_main`) runs
the same harness from the shell and from CI.
"""

from repro.conformance.golden import (
    DriftEntry,
    bless_golden,
    check_golden,
    load_golden,
    write_golden,
)
from repro.conformance.multicpu import (
    MultiNodeSpec,
    MultiScenario,
    MultiScenarioGenerator,
    build_multi_sim,
    build_programs,
)
from repro.conformance.oracle import (
    ALL_MODES,
    REFERENCE_MODE,
    ConformanceReport,
    Observation,
    ScenarioVerdict,
    check_scenario,
    first_divergence,
    observe,
)
from repro.conformance.scenario import (
    OpSpec,
    PipelineSpec,
    Scenario,
    ScenarioGenerator,
    StageSpec,
    build_model,
    build_program,
    scenario_from_dict,
)
from repro.conformance.shrink import shrink_scenario

__all__ = [
    "ALL_MODES",
    "REFERENCE_MODE",
    "ConformanceReport",
    "DriftEntry",
    "MultiNodeSpec",
    "MultiScenario",
    "MultiScenarioGenerator",
    "Observation",
    "OpSpec",
    "PipelineSpec",
    "Scenario",
    "ScenarioGenerator",
    "ScenarioVerdict",
    "StageSpec",
    "bless_golden",
    "build_model",
    "build_multi_sim",
    "build_program",
    "build_programs",
    "check_golden",
    "check_scenario",
    "first_divergence",
    "load_golden",
    "observe",
    "scenario_from_dict",
    "shrink_scenario",
    "write_golden",
]
