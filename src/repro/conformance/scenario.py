"""Seeded random co-simulation scenarios.

A :class:`Scenario` is a complete, self-contained co-simulation design:
a hardware model (one or two FSL stream pipelines assembled from the
sysgen block library, with randomized FIFO depths, stage kinds and
pipeline latencies) plus a generated mini-C program that drives it with
a random mix of blocking and non-blocking ``get``/``put``, control-bit
traffic, carry/MSR reads and multi-cycle arithmetic.

Scenarios are *data*: plain frozen dataclasses with a stable dict
round-trip, so the same scenario can be rebuilt in a worker subprocess,
stored in a golden-trace file, or shrunk by dropping parts.  Everything
random is derived from ``random.Random(f"mb32-conformance/{seed}/{i}")``
— the same seed always yields byte-identical scenarios.

The generated designs are safe by construction: blocking bursts never
exceed the FIFO capacity and non-blocking puts pair with bounded
non-blocking drains, so an unintended deadlock cannot occur.  A small
fraction of scenarios deliberately provokes a deadlock (over-full
blocking burst, get from a silent channel) — a deadlock is a perfectly
good *observable* as long as every execution mode reports the same one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.asm.linker import Program
from repro.cosim.mb_block import MicroBlazeBlock
from repro.iss.cpu import CPUConfig
from repro.mcc import CompileOptions, build_executable
from repro.sysgen import Model
from repro.sysgen.blocks import (
    RAM,
    ROM,
    Accumulator,
    Add,
    Counter,
    Delay,
    Inverter,
    Logical,
    Mult,
    Negate,
    Register,
    Shift,
    Slice,
)

# Stage kinds a pipeline may chain (all 32-bit datapath):
#   shl/shr  constant shift              (latency 0..2)
#   add      a + a (doubling adder)      (latency 0..2)
#   neg      two's-complement negate     (latency 0..2)
#   mul      signed 18x18 multiply by a small constant (latency 1..3)
#   inv      bitwise NOT                 (combinational)
#   reg      register                    (latency 1)
#   delay    delay line                  (latency = param)
#   rom      low-nibble ROM lookup       (combinational)
STAGE_KINDS = ("shl", "shr", "add", "neg", "mul", "inv", "reg", "delay", "rom")

OP_KINDS = ("session", "arith", "overflow_put", "starve_get")

OBSERVERS = ("none", "accumulator", "ram")


@dataclass(frozen=True)
class StageSpec:
    """One transform stage in a pipeline datapath."""

    kind: str
    param: int = 0
    latency: int = 0

    def to_dict(self) -> dict:
        return {"kind": self.kind, "param": self.param, "latency": self.latency}

    @classmethod
    def from_dict(cls, data: dict) -> "StageSpec":
        return cls(kind=data["kind"], param=int(data.get("param", 0)),
                   latency=int(data.get("latency", 0)))


@dataclass(frozen=True)
class PipelineSpec:
    """One FSL stream pipeline: FSLRead -> stages -> FSLWrite."""

    channel: int
    stages: tuple[StageSpec, ...] = ()
    gate_full: bool = True
    control_loop: bool = False
    observer: str = "none"

    def latency(self) -> int:
        total = 0
        for stage in self.stages:
            if stage.kind == "reg":
                total += 1
            elif stage.kind == "delay":
                total += max(1, stage.param)
            else:
                total += stage.latency
        return total

    def to_dict(self) -> dict:
        return {
            "channel": self.channel,
            "stages": [s.to_dict() for s in self.stages],
            "gate_full": self.gate_full,
            "control_loop": self.control_loop,
            "observer": self.observer,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineSpec":
        return cls(
            channel=int(data["channel"]),
            stages=tuple(StageSpec.from_dict(s) for s in data.get("stages", [])),
            gate_full=bool(data.get("gate_full", True)),
            control_loop=bool(data.get("control_loop", False)),
            observer=data.get("observer", "none"),
        )


@dataclass(frozen=True)
class OpSpec:
    """One program fragment.

    ``session``       ``count`` words through ``channel`` — interleaved
                      (put one, get one) or burst (put all, get all;
                      the generator caps burst counts at the FIFO
                      depth), with blocking (``put``/``cput``) or
                      non-blocking (``nput``/``ncput``) intrinsics.
                      Non-blocking accesses read ``fsl_isinvalid()``
                      after every attempt (the MSR carry path).
    ``arith``         pure-CPU multi-cycle arithmetic (mul/div/shift
                      chains selected by ``param``).
    ``overflow_put``  deliberate hazard: blocking-put more words than
                      the design can ever drain.
    ``starve_get``    deliberate hazard: blocking get from a channel
                      nothing writes to.
    """

    kind: str
    channel: int = 0
    count: int = 1
    put_mode: str = "put"
    get_mode: str = "get"
    interleaved: bool = True
    param: int = 0

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "channel": self.channel,
            "count": self.count,
            "put_mode": self.put_mode,
            "get_mode": self.get_mode,
            "interleaved": self.interleaved,
            "param": self.param,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "OpSpec":
        return cls(
            kind=data["kind"],
            channel=int(data.get("channel", 0)),
            count=int(data.get("count", 1)),
            put_mode=data.get("put_mode", "put"),
            get_mode=data.get("get_mode", "get"),
            interleaved=bool(data.get("interleaved", True)),
            param=int(data.get("param", 0)),
        )


@dataclass(frozen=True)
class Scenario:
    """A complete randomized co-simulation design + driver program."""

    name: str
    seed: str
    fifo_depth: int = 16
    hw_multiplier: bool = True
    hw_divider: bool = False
    hw_barrel_shifter: bool = True
    free_counter: bool = False
    pipelines: tuple[PipelineSpec, ...] = ()
    ops: tuple[OpSpec, ...] = ()
    max_cycles: int = 60_000

    def compile_options(self) -> CompileOptions:
        return CompileOptions(
            hw_multiplier=self.hw_multiplier,
            hw_divider=self.hw_divider,
            hw_barrel_shifter=self.hw_barrel_shifter,
        )

    def cpu_config(self) -> CPUConfig:
        return CPUConfig(
            use_hw_multiplier=self.hw_multiplier,
            use_hw_divider=self.hw_divider,
            use_barrel_shifter=self.hw_barrel_shifter,
        )

    def c_source(self) -> str:
        return render_program(self)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "fifo_depth": self.fifo_depth,
            "hw_multiplier": self.hw_multiplier,
            "hw_divider": self.hw_divider,
            "hw_barrel_shifter": self.hw_barrel_shifter,
            "free_counter": self.free_counter,
            "pipelines": [p.to_dict() for p in self.pipelines],
            "ops": [o.to_dict() for o in self.ops],
            "max_cycles": self.max_cycles,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        return cls(
            name=data["name"],
            seed=data["seed"],
            fifo_depth=int(data.get("fifo_depth", 16)),
            hw_multiplier=bool(data.get("hw_multiplier", True)),
            hw_divider=bool(data.get("hw_divider", False)),
            hw_barrel_shifter=bool(data.get("hw_barrel_shifter", True)),
            free_counter=bool(data.get("free_counter", False)),
            pipelines=tuple(PipelineSpec.from_dict(p)
                            for p in data.get("pipelines", [])),
            ops=tuple(OpSpec.from_dict(o) for o in data.get("ops", [])),
            max_cycles=int(data.get("max_cycles", 60_000)),
        )


def scenario_from_dict(data: dict):
    """Load a scenario of either family from its dict form.

    Documents tagged ``family: "multi"`` become
    :class:`~repro.conformance.multicpu.MultiScenario`; everything else
    (including pre-multi-CPU documents with no ``family`` key) loads as
    a single-CPU :class:`Scenario`.
    """
    if data.get("family") == "multi":
        from repro.conformance.multicpu import MultiScenario

        return MultiScenario.from_dict(data)
    return Scenario.from_dict(data)


# --------------------------------------------------------------------------
# hardware builder


def _build_stage(model: Model, prefix: str, stage: StageSpec, src):
    """Instantiate one stage; returns (output PortRef, added latency)."""
    kind = stage.kind
    if kind in ("shl", "shr"):
        amount = max(1, stage.param % 8)
        blk = model.add(Shift(prefix, width=32, amount=amount,
                              direction="left" if kind == "shl" else "right",
                              arithmetic=bool(stage.param % 2),
                              latency=stage.latency))
        model.connect(src, blk.i("a"))
        return blk.o("s"), stage.latency
    if kind == "add":
        blk = model.add(Add(prefix, width=32, latency=stage.latency))
        model.connect(src, blk.i("a"), blk.i("b"))
        return blk.o("s"), stage.latency
    if kind == "neg":
        blk = model.add(Negate(prefix, width=32, latency=stage.latency))
        model.connect(src, blk.i("a"))
        return blk.o("n"), stage.latency
    if kind == "mul":
        latency = max(1, stage.latency)
        blk = model.add(Mult(prefix, width_a=18, width_b=18, out_width=32,
                             latency=latency))
        model.connect(src, blk.i("a"), blk.i("b"))
        return blk.o("p"), latency
    if kind == "inv":
        blk = model.add(Inverter(prefix, width=32))
        model.connect(src, blk.i("a"))
        return blk.o("out"), 0
    if kind == "reg":
        blk = model.add(Register(prefix, width=32))
        model.connect(src, blk.i("d"))
        return blk.o("q"), 1
    if kind == "delay":
        n = max(1, stage.param)
        blk = model.add(Delay(prefix, width=32, n=n))
        model.connect(src, blk.i("d"))
        return blk.o("q"), n
    if kind == "rom":
        sel = model.add(Slice(f"{prefix}_sel", msb=3, lsb=0))
        model.connect(src, sel.i("a"))
        contents = [((stage.param + 1) * 2654435761 * (k + 1)) & 0xFFFFFFFF
                    for k in range(16)]
        blk = model.add(ROM(prefix, contents, width=32))
        model.connect(sel.o("out"), blk.i("addr"))
        return blk.o("data"), 0
    raise ValueError(f"unknown stage kind {kind!r}")


def build_model(scenario: Scenario) -> tuple[Model, MicroBlazeBlock]:
    """Build the hardware side of a scenario (uncompiled)."""
    model = Model(scenario.name)
    mb = MicroBlazeBlock(model, fifo_depth=scenario.fifo_depth)

    for pipe in scenario.pipelines:
        ch = pipe.channel
        rd = mb.master_fsl(ch)
        wr = mb.slave_fsl(ch)

        if pipe.gate_full:
            notfull = model.add(Inverter(f"p{ch}_notfull", width=1))
            model.connect(wr.o("full"), notfull.i("a"))
            strobe_blk = model.add(Logical(f"p{ch}_strobe", width=1, op="and"))
            model.connect(rd.o("exists"), strobe_blk.i("d0"))
            model.connect(notfull.o("out"), strobe_blk.i("d1"))
            strobe = strobe_blk.o("out")
        else:
            strobe = rd.o("exists")
        model.connect(strobe, rd.i("read"))

        data = rd.o("data")
        total_latency = 0
        for idx, stage in enumerate(pipe.stages):
            data, added = _build_stage(
                model, f"p{ch}_s{idx}_{stage.kind}", stage, data)
            total_latency += added

        if total_latency > 0:
            valid_blk = model.add(Delay(f"p{ch}_valid", width=1,
                                        n=total_latency))
            model.connect(strobe, valid_blk.i("d"))
            valid = valid_blk.o("q")
        else:
            valid = strobe
        model.connect(data, wr.i("data"))
        model.connect(valid, wr.i("write"))

        if pipe.control_loop:
            if total_latency > 0:
                ctl_blk = model.add(Delay(f"p{ch}_ctl", width=1,
                                          n=total_latency))
                model.connect(rd.o("control"), ctl_blk.i("d"))
                ctl = ctl_blk.o("q")
            else:
                ctl = rd.o("control")
            model.connect(ctl, wr.i("control"))

        if pipe.observer == "accumulator":
            acc = model.add(Accumulator(f"p{ch}_obs", width=32))
            model.connect(data, acc.i("d"))
            model.connect(valid, acc.i("en"))
            model.probe(acc.o("q"), name=f"p{ch}_obs")
        elif pipe.observer == "ram":
            ptr = model.add(Counter(f"p{ch}_ptr", width=4))
            model.connect(valid, ptr.i("en"))
            ram = model.add(RAM(f"p{ch}_mem", depth=16, width=32))
            model.connect(ptr.o("q"), ram.i("addr"))
            model.connect(data, ram.i("din"))
            model.connect(valid, ram.i("we"))
            model.probe(ram.o("dout"), name=f"p{ch}_mem")

        model.probe(rd.o("exists"), name=f"p{ch}_exists")
        model.probe(wr.o("full"), name=f"p{ch}_full")

    if scenario.free_counter:
        # A free-running counter never reports quiescence: it denies the
        # fast-forward kernel its model-idle windows, exercising the
        # cpu-only skip paths.
        ctr = model.add(Counter("free_ctr", width=16))
        model.probe(ctr.o("q"), name="free_ctr")

    return model, mb


# --------------------------------------------------------------------------
# program rendering


def _render_session(op: OpSpec, k: int, lines: list[str]) -> None:
    put = f"{op.put_mode}fsl"
    get = f"{op.get_mode}fsl"
    mult = (op.param % 7) + 1
    bias = (op.param // 7) % 29
    value = f"i{k} * {mult} + {bias}"
    nonblocking = op.put_mode.startswith("n")
    if op.interleaved and not nonblocking:
        lines += [
            f"    for (int i{k} = 0; i{k} < {op.count}; i{k}++) {{",
            f"        {put}({value}, {op.channel});",
            f"        acc = acc + {get}({op.channel});",
            "    }",
        ]
    elif not nonblocking:
        lines += [
            f"    for (int i{k} = 0; i{k} < {op.count}; i{k}++)",
            f"        {put}({value}, {op.channel});",
            f"    for (int j{k} = 0; j{k} < {op.count}; j{k}++)",
            f"        acc = acc + {get}({op.channel});",
        ]
    else:
        lines += [
            f"    for (int i{k} = 0; i{k} < {op.count}; i{k}++) {{",
            f"        {put}({value}, {op.channel});",
            f"        if (fsl_isinvalid()) acc = acc + 1;",
            "    }",
            f"    for (int j{k} = 0; j{k} < {op.count + 2}; j{k}++) {{",
            f"        int t{k} = {get}({op.channel});",
            f"        if (fsl_isinvalid()) acc = acc + 3;",
            f"        else acc = acc + t{k};",
            "    }",
        ]


def _render_arith(op: OpSpec, k: int, lines: list[str]) -> None:
    variant = op.param % 4
    lines.append(f"    for (int i{k} = 0; i{k} < {op.count}; i{k}++) {{")
    if variant == 0:
        lines.append(f"        acc = acc * 3 + i{k} * i{k};")
    elif variant == 1:
        lines.append(f"        acc = acc + acc / ((i{k} & 7) + 1);")
        lines.append(f"        acc = acc + (acc % ((i{k} & 3) + 2));")
    elif variant == 2:
        lines.append(f"        acc = acc ^ (acc >> {(op.param % 13) + 1});")
        lines.append(f"        acc = acc + (acc << {(op.param % 5) + 1});")
    else:
        lines.append(f"        acc = acc * (i{k} + 7);")
        lines.append(f"        acc = acc ^ (acc >> 5);")
        lines.append(f"        acc = acc + acc / (i{k} + 1);")
    lines.append("    }")


def render_program(scenario: Scenario) -> str:
    """Render the scenario's driver program as mini-C source."""
    lines = [
        f"/* generated by mb32-conformance — scenario {scenario.name} */",
        "int main(void) {",
        "    unsigned acc = 1;",
    ]
    for k, op in enumerate(scenario.ops):
        if op.kind == "session":
            _render_session(op, k, lines)
        elif op.kind == "arith":
            _render_arith(op, k, lines)
        elif op.kind == "overflow_put":
            lines += [
                f"    for (int i{k} = 0; i{k} < {op.count}; i{k}++)",
                f"        putfsl(i{k} + 1, {op.channel});",
            ]
        elif op.kind == "starve_get":
            lines.append(f"    acc = acc + getfsl({op.channel});")
        else:
            raise ValueError(f"unknown op kind {op.kind!r}")
    lines += [
        "    return acc & 255;",
        "}",
        "",
    ]
    return "\n".join(lines)


def build_program(scenario: Scenario) -> Program:
    """Compile the scenario's driver program."""
    return build_executable(scenario.c_source(),
                            options=scenario.compile_options())


# --------------------------------------------------------------------------
# generator


@dataclass
class ScenarioGenerator:
    """Deterministic stream of random scenarios.

    Scenario ``i`` of seed ``s`` depends only on ``(s, i)`` — never on
    how many scenarios were drawn before it — so a corpus can be
    re-generated selectively (``--pin``) and indexes compared across
    runs.
    """

    seed: int = 0
    max_cycles: int = 60_000
    hazard_rate: float = 0.08
    _counter: int = field(default=0, repr=False)

    def scenario(self, index: int) -> Scenario:
        rng = random.Random(f"mb32-conformance/{self.seed}/{index}")
        name = f"s{self.seed}-{index:04d}"

        fifo_depth = rng.choice((2, 3, 4, 8, 16))
        hw_multiplier = rng.random() < 0.8
        hw_divider = rng.random() < 0.4
        hw_barrel_shifter = rng.random() < 0.8
        free_counter = rng.random() < 0.10

        n_pipes = rng.choice((1, 1, 1, 2))
        pipelines = []
        for ch in range(n_pipes):
            n_stages = rng.randint(0, 4)
            stages = tuple(
                StageSpec(kind=rng.choice(STAGE_KINDS),
                          param=rng.randint(0, 63),
                          latency=rng.randint(0, 2))
                for _ in range(n_stages))
            pipelines.append(PipelineSpec(
                channel=ch,
                stages=stages,
                gate_full=rng.random() < 0.7,
                control_loop=rng.random() < 0.3,
                observer=rng.choice(OBSERVERS),
            ))

        n_ops = rng.randint(1, 4)
        ops = []
        for _ in range(n_ops):
            channel = rng.randrange(n_pipes)
            if rng.random() < 0.25:
                ops.append(OpSpec(kind="arith",
                                  count=rng.randint(2, 12),
                                  param=rng.randint(0, 63)))
                continue
            nonblocking = rng.random() < 0.35
            if nonblocking:
                put_mode = rng.choice(("nput", "ncput"))
                get_mode = rng.choice(("nget", "ncget"))
                interleaved = False
                count = rng.randint(1, 2 * fifo_depth)
            else:
                put_mode = rng.choice(("put", "put", "cput"))
                get_mode = rng.choice(("get", "get", "cget"))
                interleaved = rng.random() < 0.6
                count = (rng.randint(1, 24) if interleaved
                         else rng.randint(1, fifo_depth))
            ops.append(OpSpec(kind="session", channel=channel, count=count,
                              put_mode=put_mode, get_mode=get_mode,
                              interleaved=interleaved,
                              param=rng.randint(0, 200)))

        if rng.random() < self.hazard_rate:
            hazard_ch = rng.randrange(n_pipes)
            if rng.random() < 0.5:
                # More words than the in-flight capacity of the whole
                # pipeline (both FIFOs + every pipeline register).
                capacity = 2 * fifo_depth + pipelines[hazard_ch].latency()
                ops.append(OpSpec(kind="overflow_put", channel=hazard_ch,
                                  count=capacity + rng.randint(4, 16)))
            else:
                ops.append(OpSpec(kind="starve_get", channel=hazard_ch))

        return Scenario(
            name=name,
            seed=f"{self.seed}/{index}",
            fifo_depth=fifo_depth,
            hw_multiplier=hw_multiplier,
            hw_divider=hw_divider,
            hw_barrel_shifter=hw_barrel_shifter,
            free_counter=free_counter,
            pipelines=tuple(pipelines),
            ops=tuple(ops),
            max_cycles=self.max_cycles,
        )

    def scenarios(self, count: int, start: int = 0):
        for index in range(start, start + count):
            yield self.scenario(index)


def drop_op(scenario: Scenario, index: int) -> Scenario:
    ops = scenario.ops[:index] + scenario.ops[index + 1:]
    return replace(scenario, ops=ops)
