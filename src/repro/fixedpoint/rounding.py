"""Quantization and overflow policies for fixed-point arithmetic.

These mirror the System Generator block options: quantization is either
*truncate* (round toward negative infinity, i.e. drop bits) or *round*
(round half away from zero); overflow is either *wrap* (two's-complement
wraparound), *saturate* (clamp to the representable range) or *flag*
(raise an error, used in tests to catch unintended overflow).
"""

from __future__ import annotations

import enum


class Rounding(enum.Enum):
    """Quantization behaviour when fraction bits are dropped."""

    TRUNCATE = "truncate"
    ROUND = "round"  # round half away from zero (Simulink "Round")


class Overflow(enum.Enum):
    """Behaviour when a value exceeds the representable range."""

    WRAP = "wrap"
    SATURATE = "saturate"
    FLAG = "flag"


class FixedOverflowError(ArithmeticError):
    """Raised when a value overflows a format with ``Overflow.FLAG``."""


def apply_rounding(raw: int, shift: int, mode: Rounding) -> int:
    """Shift ``raw`` right by ``shift`` bits applying quantization ``mode``.

    ``raw`` is an arbitrary-precision integer of scaled fixed-point
    weight; ``shift`` is the number of fraction bits being discarded
    (``shift >= 0``).  Returns the quantized integer.
    """
    if shift <= 0:
        return raw << (-shift)
    if mode is Rounding.TRUNCATE:
        # Floor division == round toward -inf == drop bits in two's complement.
        return raw >> shift
    if mode is Rounding.ROUND:
        half = 1 << (shift - 1)
        if raw >= 0:
            return (raw + half) >> shift
        # Round half away from zero for negatives.
        return -((-raw + half) >> shift)
    raise ValueError(f"unknown rounding mode {mode!r}")


def apply_overflow(value: int, lo: int, hi: int, width: int, mode: Overflow) -> int:
    """Constrain integer ``value`` to ``[lo, hi]`` according to ``mode``.

    ``width`` is the total word length in bits and is used for wrapping.
    """
    if lo <= value <= hi:
        return value
    if mode is Overflow.SATURATE:
        return hi if value > hi else lo
    if mode is Overflow.WRAP:
        mask = (1 << width) - 1
        wrapped = value & mask
        if lo < 0 and wrapped > hi:  # signed format: fold into negative half
            wrapped -= 1 << width
        return wrapped
    if mode is Overflow.FLAG:
        raise FixedOverflowError(
            f"value {value} outside representable range [{lo}, {hi}]"
        )
    raise ValueError(f"unknown overflow mode {mode!r}")
