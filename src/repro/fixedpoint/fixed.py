"""Arbitrary-precision fixed-point values.

A :class:`Fixed` value is an integer ``raw`` interpreted as
``raw * 2**-frac_bits`` in a :class:`FixedFormat` with a given word
length, fraction length and signedness.  All System Generator signals
in :mod:`repro.sysgen` carry ``Fixed`` values; the CORDIC application
uses signed 16/32-bit formats exactly as the paper's designs do.

Arithmetic between ``Fixed`` values is exact (full-precision result
format, as in System Generator's default behaviour); explicit
:meth:`Fixed.cast` / ``FixedFormat.quantize`` calls model the Convert
blocks that constrain precision.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.fixedpoint.rounding import (
    Overflow,
    Rounding,
    apply_overflow,
    apply_rounding,
)


@dataclass(frozen=True)
class FixedFormat:
    """A fixed-point number format.

    Parameters
    ----------
    word_bits:
        Total word length in bits (including the sign bit if signed).
    frac_bits:
        Number of fraction bits.  May be negative (scaling by powers of
        two) or exceed ``word_bits`` (pure fraction), as in System
        Generator.
    signed:
        Two's-complement signed when ``True``; unsigned otherwise.
    """

    word_bits: int
    frac_bits: int = 0
    signed: bool = True

    def __post_init__(self) -> None:
        if self.word_bits < 1:
            raise ValueError("word_bits must be >= 1")

    @property
    def int_bits(self) -> int:
        """Integer bits (excluding the sign bit for signed formats)."""
        return self.word_bits - self.frac_bits - (1 if self.signed else 0)

    @property
    def raw_min(self) -> int:
        return -(1 << (self.word_bits - 1)) if self.signed else 0

    @property
    def raw_max(self) -> int:
        if self.signed:
            return (1 << (self.word_bits - 1)) - 1
        return (1 << self.word_bits) - 1

    @property
    def resolution(self) -> Fraction:
        """Value of one least-significant bit."""
        return Fraction(1, 1 << self.frac_bits) if self.frac_bits >= 0 else Fraction(
            1 << -self.frac_bits
        )

    @property
    def min_value(self) -> Fraction:
        return self.raw_min * self.resolution

    @property
    def max_value(self) -> Fraction:
        return self.raw_max * self.resolution

    def quantize(
        self,
        value: "Fixed | int | float | Fraction",
        rounding: Rounding = Rounding.TRUNCATE,
        overflow: Overflow = Overflow.WRAP,
    ) -> "Fixed":
        """Quantize ``value`` into this format.

        This is the semantic core of the System Generator *Convert*
        block and of every Gateway In.
        """
        if isinstance(value, Fixed):
            shift = value.fmt.frac_bits - self.frac_bits
            raw = apply_rounding(value.raw, shift, rounding)
        else:
            frac = Fraction(value).limit_denominator(1 << 62) if isinstance(
                value, float
            ) else Fraction(value)
            scaled = frac * (1 << self.frac_bits) if self.frac_bits >= 0 else frac / (
                1 << -self.frac_bits
            )
            # Exact scaling first; then quantize any residual fraction.
            num, den = scaled.numerator, scaled.denominator
            if den == 1:
                raw = num
            elif rounding is Rounding.TRUNCATE:
                raw = num // den
            else:
                raw = (
                    (num + den // 2) // den if num >= 0 else -((-num + den // 2) // den)
                )
        raw = apply_overflow(raw, self.raw_min, self.raw_max, self.word_bits, overflow)
        return Fixed(raw, self, _checked=True)

    def from_raw(self, raw: int) -> "Fixed":
        """Interpret the two's-complement bit pattern ``raw``."""
        mask = (1 << self.word_bits) - 1
        raw &= mask
        if self.signed and raw > self.raw_max:
            raw -= 1 << self.word_bits
        return Fixed(raw, self, _checked=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "Fix" if self.signed else "UFix"
        return f"{kind}{self.word_bits}_{self.frac_bits}"


class Fixed:
    """A fixed-point value: ``raw * 2**-fmt.frac_bits``."""

    __slots__ = ("raw", "fmt")

    def __init__(self, raw: int, fmt: FixedFormat, *, _checked: bool = False):
        if not _checked and not (fmt.raw_min <= raw <= fmt.raw_max):
            raise OverflowError(f"raw value {raw} does not fit {fmt!r}")
        self.raw = raw
        self.fmt = fmt

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    @property
    def value(self) -> Fraction:
        """Exact rational value."""
        if self.fmt.frac_bits >= 0:
            return Fraction(self.raw, 1 << self.fmt.frac_bits)
        return Fraction(self.raw * (1 << -self.fmt.frac_bits))

    def __float__(self) -> float:
        return float(self.value)

    def __int__(self) -> int:
        v = self.value
        return v.numerator // v.denominator if v >= 0 else -(
            (-v.numerator) // v.denominator
        )

    def bits(self) -> int:
        """Two's-complement bit pattern, as an unsigned integer."""
        return self.raw & ((1 << self.fmt.word_bits) - 1)

    def cast(
        self,
        fmt: FixedFormat,
        rounding: Rounding = Rounding.TRUNCATE,
        overflow: Overflow = Overflow.WRAP,
    ) -> "Fixed":
        return fmt.quantize(self, rounding, overflow)

    # ------------------------------------------------------------------
    # Full-precision arithmetic (result format grows, never overflows)
    # ------------------------------------------------------------------
    @staticmethod
    def _align(a: "Fixed", b: "Fixed") -> tuple[int, int, int]:
        f = max(a.fmt.frac_bits, b.fmt.frac_bits)
        ra = a.raw << (f - a.fmt.frac_bits)
        rb = b.raw << (f - b.fmt.frac_bits)
        return ra, rb, f

    @staticmethod
    def _sum_fmt(a: FixedFormat, b: FixedFormat) -> FixedFormat:
        signed = a.signed or b.signed
        f = max(a.frac_bits, b.frac_bits)
        i = max(a.int_bits, b.int_bits) + 1
        return FixedFormat(i + f + (1 if signed else 0), f, signed)

    def _coerce(self, other: "Fixed | int") -> "Fixed":
        if isinstance(other, Fixed):
            return other
        if isinstance(other, int):
            width = max(other.bit_length() + 1, 1)
            return Fixed(other, FixedFormat(width, 0, True), _checked=True)
        return NotImplemented  # type: ignore[return-value]

    def __add__(self, other: "Fixed | int") -> "Fixed":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        ra, rb, f = self._align(self, other)
        fmt = self._sum_fmt(self.fmt, other.fmt)
        return Fixed(ra + rb, fmt, _checked=True)

    __radd__ = __add__

    def __sub__(self, other: "Fixed | int") -> "Fixed":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        ra, rb, f = self._align(self, other)
        fmt = self._sum_fmt(self.fmt, other.fmt)
        return Fixed(ra - rb, fmt, _checked=True)

    def __rsub__(self, other: "Fixed | int") -> "Fixed":
        return self._coerce(other).__sub__(self)

    def __mul__(self, other: "Fixed | int") -> "Fixed":
        other = self._coerce(other)
        if other is NotImplemented:
            return NotImplemented
        fmt = FixedFormat(
            self.fmt.word_bits + other.fmt.word_bits,
            self.fmt.frac_bits + other.fmt.frac_bits,
            self.fmt.signed or other.fmt.signed,
        )
        return Fixed(self.raw * other.raw, fmt, _checked=True)

    __rmul__ = __mul__

    def __neg__(self) -> "Fixed":
        fmt = FixedFormat(self.fmt.word_bits + 1, self.fmt.frac_bits, True)
        return Fixed(-self.raw, fmt, _checked=True)

    def __abs__(self) -> "Fixed":
        return -self if self.raw < 0 else self

    def __lshift__(self, n: int) -> "Fixed":
        """Scale by 2**n without changing the raw bits (exact)."""
        return Fixed(
            self.raw,
            FixedFormat(self.fmt.word_bits, self.fmt.frac_bits - n, self.fmt.signed),
            _checked=True,
        )

    def __rshift__(self, n: int) -> "Fixed":
        return self.__lshift__(-n)

    # ------------------------------------------------------------------
    # Comparisons (on exact values)
    # ------------------------------------------------------------------
    def _cmp_value(self, other: "Fixed | int | float | Fraction"):
        if isinstance(other, Fixed):
            return other.value
        return Fraction(other)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (Fixed, int, float, Fraction)):
            return self.value == self._cmp_value(other)  # type: ignore[arg-type]
        return NotImplemented

    def __lt__(self, other) -> bool:
        return self.value < self._cmp_value(other)

    def __le__(self, other) -> bool:
        return self.value <= self._cmp_value(other)

    def __gt__(self, other) -> bool:
        return self.value > self._cmp_value(other)

    def __ge__(self, other) -> bool:
        return self.value >= self._cmp_value(other)

    def __hash__(self) -> int:
        return hash(self.value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Fixed({float(self):g}, {self.fmt!r})"
