"""Fixed-point arithmetic substrate.

System Generator signals are fixed-point numbers with explicit word
length, fraction length and signedness, plus configurable quantization
(rounding) and overflow handling.  This package provides the
:class:`~repro.fixedpoint.fixed.Fixed` value type and the
:class:`~repro.fixedpoint.fixed.FixedFormat` format descriptor used by
every arithmetic block in :mod:`repro.sysgen`.
"""

from repro.fixedpoint.fixed import Fixed, FixedFormat
from repro.fixedpoint.rounding import Overflow, Rounding

__all__ = ["Fixed", "FixedFormat", "Rounding", "Overflow"]
