"""Hierarchical subsystems.

System Generator designs are hierarchical: blocks live in nested
subsystems that the resource estimator reports per level.  A
:class:`Subsystem` namespaces the blocks added through it
(``parent/child/block``) and rolls up their resources, without changing
the flat simulation semantics of the underlying :class:`Model`.
"""

from __future__ import annotations

from repro.resources.types import Resources
from repro.sysgen.block import Block
from repro.sysgen.model import Model, ModelError


class Subsystem:
    """A named grouping of blocks inside a model."""

    SEP = "/"

    def __init__(self, model: Model, name: str,
                 parent: "Subsystem | None" = None):
        if self.SEP in name:
            raise ModelError(f"subsystem name may not contain {self.SEP!r}")
        self.model = model
        self.parent = parent
        self.name = name
        self.blocks: list[Block] = []
        self.children: list["Subsystem"] = []

    # ------------------------------------------------------------------
    @property
    def path(self) -> str:
        if self.parent is None:
            return self.name
        return f"{self.parent.path}{self.SEP}{self.name}"

    def add(self, block: Block) -> Block:
        """Add ``block`` to the model under this subsystem's namespace."""
        block.name = f"{self.path}{self.SEP}{block.name}"
        self.model.add(block)
        self.blocks.append(block)
        return block

    def subsystem(self, name: str) -> "Subsystem":
        child = Subsystem(self.model, name, parent=self)
        self.children.append(child)
        return child

    def block(self, name: str) -> Block:
        """Find a block by its name relative to this subsystem."""
        full = f"{self.path}{self.SEP}{name}"
        return self.model.block(full)

    # ------------------------------------------------------------------
    def all_blocks(self) -> list[Block]:
        out = list(self.blocks)
        for child in self.children:
            out.extend(child.all_blocks())
        return out

    def resources(self) -> Resources:
        """Rolled-up estimate for this subsystem and its children."""
        total = Resources()
        for block in self.all_blocks():
            total = total + block.resources()
        return total

    def report(self, indent: int = 0) -> str:
        """Per-level resource breakdown, like SysGen's estimator tree."""
        pad = "  " * indent
        lines = [f"{pad}{self.name}: {self.resources()}"]
        for child in self.children:
            lines.append(child.report(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Subsystem {self.path!r}: {len(self.all_blocks())} blocks>"
