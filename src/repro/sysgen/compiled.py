"""Compiled-schedule execution engine for sysgen models.

The per-cycle interpreter in :mod:`repro.sysgen.model` walks python
objects every cycle: ``present()`` on each sequential block, a topo-
ordered ``evaluate()`` sweep, probe sampling, ``clock()`` — hundreds of
method calls, dict lookups and ``InputPort.value`` property chases per
simulated cycle.  Following the FLASH insight (simulate at the
*schedule* level, not the per-block dispatch level), this module
specializes the whole schedule into one flat generated python function
per model:

* every output-port value lives in a local variable for the duration
  of a ``step(cycles)`` call,
* each block contributes straight-line source for its present /
  evaluate / clock behaviour via :meth:`~repro.sysgen.block.Block.emit`
  (unconnected inputs fold to their literal defaults, which prunes
  enable/reset branches),
* combinational chains become consecutive local-variable expressions
  in topological order — no dispatch between them,
* probes become bound ``list.append`` calls.

Blocks that do not implement :meth:`emit` (user subclasses) fall back
to their interpreter methods, spliced into the generated function with
port synchronization around the call, so compiled and interpreted
execution remain bit-identical for arbitrary block mixes.

Observable equivalence is the contract: port values, block state,
probe samples, telemetry events, exception behaviour and the
``state_dict()`` surface match the interpreter cycle for cycle (the
conformance oracle and ``tests/test_compiled.py`` enforce this).  The
generated function loads port/state values on entry and flushes them
in a ``finally`` on exit, so external mutation between calls —
gateway drives, OPB stores, fault injection poking ``port.value``,
``load_state`` — behaves exactly as under the interpreter.

Set ``REPRO_SYSGEN_INTERP=1`` in the environment (or
``model.force_interpreter = True``) to disable compilation and run the
classic interpreter loop; ``model.compiled_source`` exposes the
generated source for inspection.
"""

from __future__ import annotations

import os
import re
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from repro.sysgen.block import Block
    from repro.sysgen.model import Model
    from repro.sysgen.ports import InputPort, OutputPort

#: environment escape hatch: any value other than 0/false/no/off forces
#: the interpreter for every subsequently compiled model.
INTERP_ENV = "REPRO_SYSGEN_INTERP"

_FALSEY = ("", "0", "false", "no", "off")


def interpreter_forced() -> bool:
    """True when ``REPRO_SYSGEN_INTERP`` requests the interpreter."""
    return os.environ.get(INTERP_ENV, "").strip().lower() not in _FALSEY


class CompileError(RuntimeError):
    """Schedule code generation failed (a block emitted bad source)."""


#: matches generated port-variable tokens (see :meth:`EmitContext.out`)
_PORT_VAR = re.compile(r"\bv\d+\b")


class EmitContext:
    """Code-generation context handed to each block's ``emit``.

    Line sinks — each takes one complete python statement (emitters may
    pass several physical lines with *relative* indentation to build
    ``if``/``else`` blocks; everything is re-indented into the loop):

    * :meth:`present` — sequential output drive, start of cycle
    * :meth:`evaluate` — combinational propagation, topo position
    * :meth:`clock` — state capture at the clock edge

    Value helpers:

    * :meth:`inp` — expression for an input port's current value
      (a port-variable, or the literal default when unconnected)
    * :meth:`lit` — the literal int behind an expression, or ``None``
    * :meth:`out` — the local variable holding an output port's value
    * :meth:`bind` — closure name for an arbitrary python object
    * :meth:`fresh` — per-call rebound attribute (collections that
      ``reset``/``load_state`` may replace)
    * :meth:`scalar_state` — cached scalar attribute with write-back
    * :meth:`tmp` — fresh temporary name
    """

    def __init__(self, model: "Model"):
        self.model = model
        self.ns: dict[str, object] = {}
        self._bound: dict[int, str] = {}
        self._port_var: dict[int, str] = {}
        self._ports: list["OutputPort"] = []
        self._entry: list[str] = []
        self._present: list[str] = []
        self._evaluate: list[str] = []
        self._probe: list[str] = []
        self._clock: list[str] = []
        self._exit: list[str] = []
        self._n = 0

    # -- line sinks -----------------------------------------------------
    def entry(self, line: str) -> None:
        self._entry.append(line)

    def present(self, line: str) -> None:
        self._present.append(line)

    def evaluate(self, line: str) -> None:
        self._evaluate.append(line)

    def probe_line(self, line: str) -> None:
        self._probe.append(line)

    def clock(self, line: str) -> None:
        self._clock.append(line)

    def exit(self, line: str) -> None:
        self._exit.append(line)

    # -- names ----------------------------------------------------------
    def _fresh_name(self, prefix: str) -> str:
        self._n += 1
        return f"{prefix}{self._n}"

    def tmp(self) -> str:
        """A fresh temporary local name."""
        return self._fresh_name("_t")

    def bind(self, obj: object, hint: str = "b") -> str:
        """Closure name for ``obj`` (deduplicated by identity)."""
        key = id(obj)
        name = self._bound.get(key)
        if name is None:
            name = self._fresh_name(f"_{hint}")
            self._bound[key] = name
            self.ns[name] = obj
        return name

    def fresh(self, obj: object, attr: str, hint: str = "a") -> str:
        """A local rebound from ``obj.attr`` at every call entry.

        Use for mutable collections operated on in place (deques,
        lists): ``reset``/``load_state`` may replace the attribute
        between calls, so the local must be re-fetched per call."""
        name = self._fresh_name(f"_{hint}")
        self.entry(f"{name} = {self.bind(obj)}.{attr}")
        return name

    def scalar_state(self, obj: object, attr: str) -> str:
        """A scalar attribute cached in a local for the whole call:
        loaded at entry, written back in the exit ``finally``."""
        name = self._fresh_name("_s")
        ref = f"{self.bind(obj)}.{attr}"
        self.entry(f"{name} = {ref}")
        self.exit(f"{ref} = {name}")
        return name

    # -- ports ----------------------------------------------------------
    def port_var(self, port: "OutputPort") -> str:
        """The local variable mirroring ``port.value``."""
        name = self._port_var.get(id(port))
        if name is None:
            name = f"v{len(self._ports)}"
            self._port_var[id(port)] = name
            self._ports.append(port)
        return name

    def out(self, block: "Block", name: str) -> str:
        """Local variable for output port ``block.name`` (assign it)."""
        return self.port_var(block.outputs[name])

    def inp(self, block: "Block", name: str) -> str:
        """Expression for input port ``block.name``'s current value."""
        port = block.inputs[name]
        if port.source is None:
            return repr(port.default)
        return self.port_var(port.source)

    @staticmethod
    def lit(expr: str) -> int | None:
        """The compile-time literal behind ``expr``, if any."""
        try:
            return int(expr)
        except ValueError:
            return None

    # -- fallback support ------------------------------------------------
    def flush_inputs(self, block: "Block", sink: Callable[[str], None]) -> None:
        """Write the source-port locals feeding ``block`` back to their
        ports, so an interpreter-dispatched method reading
        ``in_value()`` sees current values."""
        for port in block.inputs.values():
            if port.source is not None:
                var = self.port_var(port.source)
                sink(f"{self.bind(port.source, 'p')}.value = {var}")

    def reload_outputs(self, block: "Block", sink: Callable[[str], None]) -> None:
        """Refresh the locals for ``block``'s outputs from the ports
        after an interpreter-dispatched method may have written them."""
        for port in block.outputs.values():
            var = self.port_var(port)
            sink(f"{var} = {self.bind(port, 'p')}.value")


def signed_expr(expr: str, width: int) -> str:
    """Pure-expression sign extension of ``expr`` (an unsigned pattern)
    to a python int — the inline form of
    :func:`repro.sysgen.block.to_signed`."""
    m = (1 << width) - 1
    sb = 1 << (width - 1)
    return f"((({expr}) & {m}) - ((({expr}) & {sb}) << 1))"


def guarded_update(rst: str, en: str, rst_stmt: str, en_stmt: str) -> str | None:
    """Source for the standard registered-update pattern::

        if rst & 1: <rst_stmt>
        elif en & 1: <en_stmt>

    with branches pruned when a guard is a literal (an unconnected
    ``en``/``rst`` input folded to its default).  Returns None when the
    whole update is dead (rst=0, en=0)."""
    rlit = EmitContext.lit(rst)
    elit = EmitContext.lit(en)
    if rlit is not None:
        if rlit & 1:
            return rst_stmt
        if elit is not None:
            return en_stmt if elit & 1 else None
        return f"if {en} & 1: {en_stmt}"
    if elit is not None:
        if elit & 1:
            return f"if {rst} & 1: {rst_stmt}\nelse: {en_stmt}"
        return f"if {rst} & 1: {rst_stmt}"
    return f"if {rst} & 1: {rst_stmt}\nelif {en} & 1: {en_stmt}"


def _emit_fallback(ctx: EmitContext, block: "Block") -> None:
    """Interpreter dispatch for a block without :meth:`emit`, spliced
    into the generated function with port synchronization."""
    ref = ctx.bind(block)
    if block.sequential:
        ctx.present(f"{ref}.present()")
        ctx.reload_outputs(block, ctx.present)
        ctx.flush_inputs(block, ctx.clock)
        ctx.clock(f"{ref}.clock()")
        ctx.reload_outputs(block, ctx.clock)
    else:
        ctx.flush_inputs(block, ctx.evaluate)
        ctx.evaluate(f"{ref}.evaluate()")
        ctx.reload_outputs(block, ctx.evaluate)


def _reindent(lines: list[str], pad: str) -> list[str]:
    out = []
    for chunk in lines:
        for line in chunk.split("\n"):
            out.append(pad + line if line.strip() else line)
    return out


def _unconditionally_written_first(lines: list[str]) -> set[str]:
    """Port variables whose *first* textual occurrence in the cycle
    body is a top-level unconditional assignment — these need no entry
    load (everything else is loaded from its port at call entry)."""
    decided: set[str] = set()
    written_first: set[str] = set()
    physical = [line for chunk in lines for line in chunk.split("\n")]
    for line in physical:
        target = None
        if not line.startswith((" ", "\t")):
            head, sep, rhs = line.partition(" = ")
            if sep and _PORT_VAR.fullmatch(head.strip()):
                target = head.strip()
                # variables read on the right-hand side count first
                for var in _PORT_VAR.findall(rhs):
                    if var not in decided:
                        decided.add(var)
        for var in _PORT_VAR.findall(line):
            if var == target:
                continue
            decided.add(var)
        if target is not None and target not in decided:
            decided.add(target)
            written_first.add(target)
    return written_first


class CompiledSchedule:
    """Generated step/settle functions for one compiled model.

    ``source`` holds the generated python (also surfaced as
    :attr:`Model.compiled_source`); ``step(cycles)`` and ``settle()``
    are the executable entry points.
    """

    def __init__(self, model: "Model"):
        assert model._schedule is not None
        ctx = EmitContext(model)
        for block in model._seq:
            if not block.emit(ctx):
                _emit_fallback(ctx, block)
        for block in model._schedule:
            if not block.emit(ctx):
                _emit_fallback(ctx, block)
        for k, probe in enumerate(model.probes):
            app = ctx._fresh_name("_ap")
            ctx.entry(f"{app} = {ctx.bind(probe, 'pr')}.samples.append")
            port = probe.port
            if id(port) in ctx._port_var:
                ctx.probe_line(f"{app}({ctx.port_var(port)})")
            else:  # probe on a foreign port: read it live
                ctx.probe_line(f"{app}({ctx.bind(port, 'p')}.value)")

        cycle_body = (ctx._present + ctx._evaluate + ctx._probe
                      + ctx._clock)
        settle_body = ctx._present + ctx._evaluate
        no_load = _unconditionally_written_first(cycle_body)

        loads, stores = [], []
        for port in ctx._ports:
            var = ctx.port_var(port)
            ref = f"{ctx.bind(port, 'p')}.value"
            if var not in no_load:
                loads.append(f"{var} = {ref}")
            else:
                # written before any read each cycle; a zero seed keeps
                # the exit flush well-defined if cycle 0 raises early
                loads.append(f"{var} = 0")
            stores.append(f"{ref} = {var}")
        # settle() has no clock phase: a variable first written there
        # may be read (or flushed) during present/evaluate, so load
        # everything for settle.
        settle_loads = [f"{ctx.port_var(p)} = {ctx.bind(p, 'p')}.value"
                        for p in ctx._ports]

        mref = ctx.bind(model, "m")
        args = ", ".join(f"{k}={k}" for k in ctx.ns)
        head = f", {args}" if args else ""
        src = [f"def _step(_n{head}):"]
        src += _reindent(ctx._entry + loads, "    ")
        src += ["    _done = 0",
                "    try:",
                "        while _done < _n:"]
        src += _reindent(cycle_body, "            ") or ["            pass"]
        src += ["            _done += 1",
                "    finally:"]
        src += _reindent(stores + ctx._exit, "        ")
        src += [f"        {mref}.cycle += _done", ""]
        src += [f"def _settle({args}):" if args else "def _settle():"]
        src += _reindent(ctx._entry + settle_loads, "    ")
        src += ["    try:"]
        src += _reindent(settle_body, "        ") or ["        pass"]
        src += ["    finally:"]
        src += _reindent(stores + ctx._exit, "        ") or ["        pass"]
        src.append("")
        self.source = "\n".join(src)

        ns = dict(ctx.ns)
        try:
            code = compile(self.source, f"<sysgen-compiled:{model.name}>",
                           "exec")
            exec(code, ns)  # noqa: S102 - our own generated source
        except SyntaxError as exc:  # pragma: no cover - emitter bug
            raise CompileError(
                f"generated schedule for model {model.name!r} does not "
                f"compile: {exc}\n{self.source}"
            ) from exc
        self.step = ns["_step"]
        self.settle = ns["_settle"]
