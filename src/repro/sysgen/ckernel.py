"""Native step kernel for the batched lockstep schedule.

The generated numpy cycle body (:mod:`repro.sysgen.batched`) pays
~1 µs of ufunc dispatch per operation regardless of batch width, which
caps the amortization the batch axis exists to deliver: at width 32 a
~350-op design costs as much per cycle as 20 scalar lanes.  This
module translates the same generated lines — a deliberately tiny
expression grammar over ``(N,)`` int64 arrays — into one C loop over
lanes, compiled with the system ``gcc`` at run time and driven through
:mod:`ctypes`.  Per-lane semantics are preserved exactly:

* ``np.where(c, a, b)`` becomes the C ternary (numpy truthiness of a
  nonzero int64 equals C truthiness),
* masked updates skip frozen lanes through the same ``act`` test the
  numpy code applies element-wise,
* ``%`` uses Python/numpy floored-modulo semantics via a helper,
* the translation unit is compiled ``-fwrapv`` so signed arithmetic
  wraps like numpy int64.

Anything outside the grammar — 2-D delay-line state, unsupported
calls, non-int64 or non-contiguous arrays — raises
:class:`CUnsupported` and the caller silently keeps the numpy path,
as does a missing or failing compiler.  Compiled objects are cached
in-process by source hash, so the per-chunk rebuilds of a fault
campaign share one ``gcc`` invocation.
"""

from __future__ import annotations

import ast
import ctypes
import hashlib
import os
import subprocess
import tempfile
from typing import Callable

try:  # pragma: no cover - numpy is baked into the environment
    import numpy as np
except ImportError:  # pragma: no cover
    np = None


class CUnsupported(Exception):
    """The generated line set falls outside the C-translatable grammar."""


#: Environment switch: set to a non-empty value to disable the native
#: kernel (the pure-numpy schedule is used instead).  The equivalence
#: suite runs both ways.
DISABLE_ENV = "REPRO_BATCH_NO_CKERNEL"


def ckernel_enabled() -> bool:
    return not os.environ.get(DISABLE_ENV)


# ---------------------------------------------------------------------------
# Expression translation (python AST -> C, fully parenthesized)
# ---------------------------------------------------------------------------

_BINOPS = {
    ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^",
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*",
    ast.LShift: "<<", ast.RShift: ">>",
}
_CMPOPS = {
    ast.Eq: "==", ast.NotEq: "!=", ast.Lt: "<", ast.LtE: "<=",
    ast.Gt: ">", ast.GtE: ">=",
}


class _ExprEmitter:
    """Emit one C expression for one generated numpy line.

    ``resolve(name)`` returns a ``("lane", slot)`` / ``("shared",
    slot, length)`` / ``("const", int)`` / ``("act",)`` / ``("zero",)``
    / ``("one",)`` tag for every identifier, raising
    :class:`CUnsupported` for names it cannot place.
    """

    def __init__(self, resolve: Callable[[str], tuple]):
        self.resolve = resolve
        self.reads: set[int] = set()
        self.shared_reads: set[int] = set()
        self.dline_reads: set[int] = set()

    def emit(self, node: ast.expr) -> str:
        if isinstance(node, ast.Constant):
            if not isinstance(node.value, int) or isinstance(node.value, bool):
                raise CUnsupported(f"non-int constant {node.value!r}")
            return f"INT64_C({node.value})"
        if isinstance(node, ast.Name):
            return self._name(node.id)
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Invert):
                return f"(~{self.emit(node.operand)})"
            if isinstance(node.op, ast.USub):
                return f"(-{self.emit(node.operand)})"
            raise CUnsupported(f"unary op {node.op!r}")
        if isinstance(node, ast.BinOp):
            op = _BINOPS.get(type(node.op))
            left, right = self.emit(node.left), self.emit(node.right)
            if op is not None:
                return f"({left} {op} {right})"
            if isinstance(node.op, ast.Mod):
                return f"pymod({left}, {right})"
            raise CUnsupported(f"binary op {node.op!r}")
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1:
                raise CUnsupported("chained comparison")
            op = _CMPOPS.get(type(node.ops[0]))
            if op is None:
                raise CUnsupported(f"comparison {node.ops[0]!r}")
            return (f"((i64)({self.emit(node.left)} {op} "
                    f"{self.emit(node.comparators[0])}))")
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.Subscript):
            return self._subscript(node)
        raise CUnsupported(f"node {type(node).__name__}")

    def _name(self, name: str) -> str:
        kind, *info = self.resolve(name)
        if kind == "lane":
            self.reads.add(info[0])
            return f"_v{info[0]}"
        if kind == "const":
            return f"INT64_C({info[0]})"
        if kind == "act":
            return "_a"
        if kind == "zero":
            return "INT64_C(0)"
        if kind == "one":
            return "INT64_C(1)"
        raise CUnsupported(f"name {name!r} used as a scalar ({kind})")

    def _call(self, node: ast.Call) -> str:
        func = node.func
        if node.keywords:
            raise CUnsupported("keyword arguments")
        if (isinstance(func, ast.Attribute) and func.attr == "where"
                and isinstance(func.value, ast.Name)
                and func.value.id == "np" and len(node.args) == 3):
            cond, a, b = (self.emit(arg) for arg in node.args)
            return f"({cond} ? {a} : {b})"
        if (isinstance(func, ast.Attribute) and func.attr == "astype"
                and len(node.args) == 1):
            target = node.args[0]
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "np"
                    and target.attr in ("int64", "int_")):
                # comparisons already yield 0/1 int64 in the C emission
                return self.emit(func.value)
            raise CUnsupported("astype target")
        raise CUnsupported(f"call {ast.dump(func)}")

    def _subscript(self, node: ast.Subscript) -> str:
        if not isinstance(node.value, ast.Name):
            raise CUnsupported("computed subscript base")
        kind, *info = self.resolve(node.value.id)
        if kind == "dline":
            # delay-line column read: ``_dl[:, K]``
            slot, depth = info
            sl = node.slice
            if (isinstance(sl, ast.Tuple) and len(sl.elts) == 2
                    and _is_full_slice(sl.elts[0])
                    and isinstance(sl.elts[1], ast.Constant)
                    and isinstance(sl.elts[1].value, int)
                    and 0 <= sl.elts[1].value < depth):
                self.dline_reads.add(slot)
                return f"_d{slot}[_i * {depth} + {sl.elts[1].value}]"
            raise CUnsupported(f"delay-line access {ast.dump(sl)}")
        if kind != "shared":
            raise CUnsupported(
                f"subscript of non-shared array {node.value.id!r}")
        slot, length = info
        self.shared_reads.add(slot)
        index = self.emit(node.slice)
        # numpy would raise on out-of-range indices; every generated
        # gather is masked (`rom[x % len]`), so clamping via floored
        # modulo is exact for in-range indices and keeps C memory-safe.
        return f"_T{slot}[(size_t)pymod({index}, INT64_C({length}))]"


def _is_full_slice(node: ast.expr) -> bool:
    return (isinstance(node, ast.Slice) and node.lower is None
            and node.upper is None and node.step is None)


def _is_tail_slice(node: ast.expr) -> bool:
    """``1:`` — the shift-left half of a delay-line update."""
    return (isinstance(node, ast.Slice)
            and isinstance(node.lower, ast.Constant)
            and node.lower.value == 1
            and node.upper is None and node.step is None)


# ---------------------------------------------------------------------------
# Kernel builder
# ---------------------------------------------------------------------------


class CStepKernel:
    """Compiled per-lane segments of one batched cycle body.

    ``segments`` holds, per python-interleaved run of numpy lines, the
    list of original source lines it replaces.  ``run(j)`` executes
    segment ``j`` over all N lanes (frozen lanes are skipped exactly
    where the numpy code masked them).
    """

    def __init__(self, n: int, arrays: list["np.ndarray"],
                 lib_path: str, seg_count: int, source: str):
        self.n = n
        self.arrays = arrays  # slot -> backing ndarray
        self.source = source
        self.seg_count = seg_count
        self._lib = ctypes.CDLL(lib_path)
        self._segs = []
        for j in range(seg_count):
            fn = getattr(self._lib, f"seg{j}")
            fn.restype = None
            fn.argtypes = [ctypes.POINTER(ctypes.c_void_p),
                           ctypes.c_char_p, ctypes.c_longlong]
            self._segs.append(fn)
        self._table = (ctypes.c_void_p * len(arrays))()
        self._gen = -1

    def rebind(self, slot: int, array: "np.ndarray") -> None:
        """Point a slot at a replacement array (copy-on-write pokes)."""
        self.arrays[slot] = array
        self._gen = -1

    def _refresh(self) -> None:
        table = self._table
        for k, arr in enumerate(self.arrays):
            table[k] = arr.ctypes.data
        self._gen = 0

    def runner(self, owner) -> Callable[[int], None]:
        """A ``run(j)`` closure reading the live active-lane mask off
        ``owner.active`` each call (``reset`` replaces that array).
        The ctypes pointer is cached per mask-array identity."""
        segs = self._segs
        table = self._table
        n = ctypes.c_longlong(self.n)
        cache: list = [None, None]  # [mask array, its c_char_p]

        def run(j: int, _self=self) -> None:
            if _self._gen < 0:
                _self._refresh()
            act = owner.active
            if act is not cache[0]:
                cache[0] = act
                cache[1] = act.ctypes.data_as(ctypes.c_char_p)
            segs[j](table, cache[1], n)

        return run


def _match_dline_shift(assign: ast.Assign, resolve, n: int):
    """``_t = np.concatenate((_dl[:, 1:], (EXPR)[:, None]), axis=1)``
    → ``(slot, depth, EXPR-node)`` or None."""
    v = assign.value
    if not (isinstance(v, ast.Call) and isinstance(v.func, ast.Attribute)
            and v.func.attr == "concatenate"
            and isinstance(v.func.value, ast.Name)
            and v.func.value.id == "np"
            and len(v.args) == 1 and isinstance(v.args[0], ast.Tuple)
            and len(v.args[0].elts) == 2
            and len(v.keywords) == 1 and v.keywords[0].arg == "axis"
            and isinstance(v.keywords[0].value, ast.Constant)
            and v.keywords[0].value.value == 1):
        return None
    left, right = v.args[0].elts
    if not (isinstance(left, ast.Subscript)
            and isinstance(left.value, ast.Name)):
        return None
    sl = left.slice
    if not (isinstance(sl, ast.Tuple) and len(sl.elts) == 2
            and _is_full_slice(sl.elts[0]) and _is_tail_slice(sl.elts[1])):
        return None
    kind = resolve(left.value.id)
    if kind[0] != "dline":
        return None
    if not isinstance(right, ast.Subscript):
        return None
    rs = right.slice
    if not (isinstance(rs, ast.Tuple) and len(rs.elts) == 2
            and _is_full_slice(rs.elts[0])
            and isinstance(rs.elts[1], ast.Constant)
            and rs.elts[1].value is None):
        return None
    return kind[1], kind[2], right.value


def _match_dline_commit(assign: ast.Assign, resolve, act_name: str):
    """``_dl = np.where(_act[:, None], _t, _dl)``
    → ``(tmp_name, slot, depth)`` or None."""
    target = assign.targets[0].id
    v = assign.value
    if not (isinstance(v, ast.Call) and isinstance(v.func, ast.Attribute)
            and v.func.attr == "where"
            and isinstance(v.func.value, ast.Name)
            and v.func.value.id == "np"
            and len(v.args) == 3 and not v.keywords):
        return None
    cond, a, b = v.args
    if not (isinstance(cond, ast.Subscript)
            and isinstance(cond.value, ast.Name)
            and cond.value.id == act_name):
        return None
    cs = cond.slice
    if not (isinstance(cs, ast.Tuple) and len(cs.elts) == 2
            and _is_full_slice(cs.elts[0])
            and isinstance(cs.elts[1], ast.Constant)
            and cs.elts[1].value is None):
        return None
    if not (isinstance(a, ast.Name) and isinstance(b, ast.Name)
            and b.id == target):
        return None
    kind = resolve(target)
    if kind[0] != "dline":
        return None
    return a.id, kind[1], kind[2]


def _slot_kind(arr, n: int, what: str) -> tuple:
    """Classify a backing array: ``("i64",)`` / ``("u8",)`` lane arrays
    or ``("dline", depth)`` for 2-D delay-line state."""
    if not isinstance(arr, np.ndarray) or not arr.flags["C_CONTIGUOUS"]:
        raise CUnsupported(f"{what}: not a contiguous ndarray")
    if arr.shape == (n,) and arr.dtype == np.int64:
        return ("i64",)
    if arr.shape == (n,) and arr.dtype == np.bool_:
        return ("u8",)
    if arr.ndim == 2 and arr.shape[0] == n and arr.shape[1] >= 1 \
            and arr.dtype == np.int64:
        return ("dline", arr.shape[1])
    raise CUnsupported(f"{what}: shape {arr.shape}, dtype {arr.dtype}")


def build_step_kernel(
    n: int,
    cycle_lines: list[str],
    port_store: list,
    state_store: list,
    port_names: dict[str, int],
    state_names: dict[str, int],
    bound: dict[str, object],
    act_name: str,
    true_name: str,
    zeros_name: str,
) -> tuple["CStepKernel", list[object]] | None:
    """Translate + compile the numpy runs of one cycle body.

    Returns ``(kernel, body)`` where ``body`` interleaves the
    untranslated python lines (strings) with segment indices (ints),
    or ``None`` when the native kernel is disabled or no ``gcc`` is
    available.  Raises :class:`CUnsupported` when any numpy line falls
    outside the grammar.
    """
    if np is None or not ckernel_enabled():
        return None

    # -- slot layout: ports, then states, then shared/scratch ----------
    arrays: list["np.ndarray"] = []
    slot_of: dict[str, int] = {}
    elem: dict[int, tuple] = {}  # slot -> ("i64",) | ("u8",) | ("dline", D)
    shared: dict[str, tuple[int, int]] = {}

    def add_slot(name: str, arr, what: str) -> int:
        kind = _slot_kind(arr, n, what)
        slot = len(arrays)
        slot_of[name] = slot
        elem[slot] = kind
        arrays.append(arr)
        return slot

    for name, k in port_names.items():
        add_slot(name, port_store[k], f"port {name}")
    for name, k in state_names.items():
        add_slot(name, state_store[k], f"state {name}")

    consts: dict[str, int] = {}
    scratch: list["np.ndarray"] = []

    def resolve(name: str) -> tuple:
        if name in slot_of:
            slot = slot_of[name]
            if elem[slot][0] == "dline":
                return ("dline", slot, elem[slot][1])
            return ("lane", slot)
        if name in consts:
            return ("const", consts[name])
        if name in shared:
            return ("shared", *shared[name])
        if name == act_name:
            return ("act",)
        if name == true_name:
            return ("one",)
        if name == zeros_name:
            return ("zero",)
        obj = bound.get(name)
        if isinstance(obj, (int, np.integer)) and not isinstance(obj, bool):
            consts[name] = int(obj)
            return ("const", consts[name])
        if isinstance(obj, np.ndarray):
            if obj.shape != (n,) and obj.ndim == 1 \
                    and obj.dtype == np.int64 and obj.flags["C_CONTIGUOUS"]:
                shared[name] = (len(arrays), obj.shape[0])
                arrays.append(obj)
                return ("shared", *shared[name])
            return resolve_slot_array(name, obj)
        raise CUnsupported(f"unresolvable name {name!r} ({type(obj)})")

    def resolve_slot_array(name: str, obj) -> tuple:
        slot = add_slot(name, obj, f"array {name}")
        if elem[slot][0] == "dline":
            return ("dline", slot, elem[slot][1])
        return ("lane", slot)

    def fresh_scratch(name: str) -> int:
        arr = np.zeros(n, dtype=np.int64)
        scratch.append(arr)
        return add_slot(name, arr, f"scratch {name}")

    # -- partition into python runs and C segments ---------------------
    # seg stmt: ("a", slot, c_expr) or ("raw", c_code)
    body: list[object] = []
    seg_stmts: list[list[tuple]] = []

    current: list[tuple] | None = None
    seg_reads: list[set[int]] = []
    seg_shared: list[set[int]] = []
    seg_dlines: list[set[int]] = []
    # one-line lookahead state for the delay-line idiom:
    #   _t = np.concatenate((_dl[:, 1:], (EXPR)[:, None]), axis=1)
    #   _dl = np.where(_act[:, None], _t, _dl)
    pending: tuple | None = None  # (tmp_name, slot, depth, c_expr)

    def open_segment():
        nonlocal current
        if current is None:
            current = []
            seg_reads.append(set())
            seg_shared.append(set())
            seg_dlines.append(set())

    def track(emitter):
        seg_reads[-1] |= emitter.reads
        seg_shared[-1] |= emitter.shared_reads
        seg_dlines[-1] |= emitter.dline_reads

    for line in cycle_lines:
        if "\n" in line or "[_l]" in line or line.lstrip().startswith("for "):
            if pending:
                raise CUnsupported("uncommitted delay-line shift")
            if current:
                seg_stmts.append(current)
                body.append(len(seg_stmts) - 1)
                current = None
            body.append(line)
            continue
        try:
            tree = ast.parse(line.strip(), mode="exec")
        except SyntaxError as exc:  # pragma: no cover - emitter bug
            raise CUnsupported(f"unparsable line {line!r}: {exc}")
        if len(tree.body) != 1 or not isinstance(tree.body[0], ast.Assign):
            raise CUnsupported(f"not a single assignment: {line!r}")
        assign = tree.body[0]
        if len(assign.targets) != 1 \
                or not isinstance(assign.targets[0], ast.Name):
            raise CUnsupported(f"compound target: {line!r}")
        target = assign.targets[0].id

        commit = _match_dline_commit(assign, resolve, act_name)
        if commit is not None:
            tmp_name, slot, depth = commit
            if pending is None or pending[0] != tmp_name \
                    or pending[1] != slot:
                raise CUnsupported(f"unmatched delay-line commit: {line!r}")
            open_segment()
            seg_dlines[-1].add(slot)
            d = depth
            code = (f"if (_a) {{ "
                    f"for (i64 _j = 0; _j < {d - 1}; _j++) "
                    f"_d{slot}[_i * {d} + _j] = _d{slot}[_i * {d} + _j + 1]; "
                    f"_d{slot}[_i * {d} + {d - 1}] = {pending[3]}; }}")
            current.append(("raw", code))
            pending = None
            continue
        if pending:
            raise CUnsupported("uncommitted delay-line shift")

        shift = _match_dline_shift(assign, resolve, n)
        if shift is not None:
            slot, depth, expr_node = shift
            emitter = _ExprEmitter(resolve)
            c_expr = emitter.emit(expr_node)
            if slot in emitter.dline_reads:
                raise CUnsupported("delay-line shift reads itself")
            open_segment()
            track(emitter)
            pending = (target, slot, depth, c_expr)
            continue

        emitter = _ExprEmitter(resolve)
        expr = emitter.emit(assign.value)
        if target not in slot_of:
            if target in consts or target in shared \
                    or target in (act_name, true_name, zeros_name) \
                    or bound.get(target) is not None:
                raise CUnsupported(f"assignment to bound name {target!r}")
            fresh_scratch(target)
        if elem[slot_of[target]][0] == "dline":
            raise CUnsupported(f"whole-array delay-line write: {line!r}")
        open_segment()
        track(emitter)
        current.append(("a", slot_of[target], expr))
    if pending:
        raise CUnsupported("uncommitted delay-line shift")
    if current:
        seg_stmts.append(current)
        body.append(len(seg_stmts) - 1)

    if not seg_stmts:
        raise CUnsupported("no translatable lines")

    # -- C source ------------------------------------------------------
    src = [
        "#include <stdint.h>",
        "#include <stddef.h>",
        "typedef int64_t i64;",
        "static inline i64 pymod(i64 a, i64 b) {",
        "    i64 r;",
        "    if (b == 0) return 0;  /* numpy int64 x %% 0 == 0 */",
        "    r = a % b;",
        "    if (r != 0 && ((r < 0) != (b < 0))) r += b;",
        "    return r;",
        "}",
        "",
    ]
    for j, stmts in enumerate(seg_stmts):
        writes = {st[1] for st in stmts if st[0] == "a"}
        lane_slots = sorted(seg_reads[j] | writes)
        src.append(f"void seg{j}(void **T, const unsigned char *ACT, "
                   "i64 N) {")
        for s in sorted(seg_shared[j]):
            src.append(f"    const i64 *_T{s} = (const i64 *)T[{s}];")
        for s in sorted(seg_dlines[j]):
            src.append(f"    i64 *_d{s} = (i64 *)T[{s}];")
        for s in lane_slots:
            ctyp = "unsigned char" if elem[s][0] == "u8" else "i64"
            src.append(f"    {ctyp} *_p{s} = ({ctyp} *)T[{s}];")
        src.append("    for (i64 _i = 0; _i < N; _i++) {")
        src.append("        const i64 _a = (i64)ACT[_i];")
        for s in lane_slots:
            src.append(f"        i64 _v{s} = (i64)_p{s}[_i];")
        for st in stmts:
            if st[0] == "a":
                src.append(f"        _v{st[1]} = {st[2]};")
            else:
                src.append(f"        {st[1]}")
        for s in sorted(writes):
            if elem[s][0] == "u8":
                src.append(
                    f"        _p{s}[_i] = (unsigned char)(_v{s} != 0);")
            else:
                src.append(f"        _p{s}[_i] = _v{s};")
        src.append("    }")
        src.append("}")
        src.append("")
    c_source = "\n".join(src)

    lib_path = _compile_cached(c_source)
    if lib_path is None:
        return None
    kernel = CStepKernel(n, arrays, lib_path, len(seg_stmts), c_source)
    return kernel, body


# ---------------------------------------------------------------------------
# Compilation (in-process cache keyed by source hash)
# ---------------------------------------------------------------------------

_LIB_CACHE: dict[str, str | None] = {}
_WORK_DIR: str | None = None


def _compile_cached(c_source: str) -> str | None:
    key = hashlib.sha256(c_source.encode()).hexdigest()
    if key in _LIB_CACHE:
        return _LIB_CACHE[key]
    path = _compile(c_source, key)
    _LIB_CACHE[key] = path
    return path


def _compile(c_source: str, key: str) -> str | None:
    global _WORK_DIR
    if _WORK_DIR is None:
        _WORK_DIR = tempfile.mkdtemp(prefix="repro-ckernel-")
    c_path = os.path.join(_WORK_DIR, f"{key[:16]}.c")
    so_path = os.path.join(_WORK_DIR, f"{key[:16]}.so")
    try:
        with open(c_path, "w") as fh:
            fh.write(c_source)
        proc = subprocess.run(
            ["gcc", "-O2", "-fwrapv", "-shared", "-fPIC",
             "-o", so_path, c_path],
            capture_output=True, timeout=120,
        )
        if proc.returncode != 0:
            return None
        return so_path
    except (OSError, subprocess.SubprocessError):
        return None
