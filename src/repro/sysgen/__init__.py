"""System Generator-style hardware modeling (arithmetic level).

This is the substitute for MATLAB/Simulink + Xilinx System Generator:
customized hardware peripherals are described as synchronous-dataflow
block diagrams over fixed-point signals and simulated cycle by cycle at
the *arithmetic* level — exactly the abstraction the paper defines as
"high-level cycle-accurate": per simulated clock cycle the functional
behaviour matches the low-level implementation, but only the arithmetic
aspect of each block is computed (a multiplication is one integer
multiply, not a netlist of LUT and carry events).

Usage sketch::

    from repro.sysgen import Model
    from repro.sysgen.blocks import Add, GatewayIn, GatewayOut, Register

    m = Model("accumulator")
    x = m.add(GatewayIn("x", width=16))
    acc = m.add(Register("acc", width=32))
    total = m.add(Add("sum", width=32))
    out = m.add(GatewayOut("y"))
    m.connect(x.o("out"), total.i("a"))
    m.connect(acc.o("q"), total.i("b"))
    m.connect(total.o("s"), acc.i("d"))
    m.connect(acc.o("q"), out.i("in"))
    m.compile()
    for v in [1, 2, 3]:
        x.drive(v)
        m.step()

Every block reports its estimated FPGA resources (``resources()``),
feeding the Section III-C estimator, and can be *lowered* to an RTL
netlist (:mod:`repro.rtl.lowering`) for the low-level baseline.
"""

from repro.sysgen.block import IDLE_FOREVER, Block, CombBlock, SeqBlock
from repro.sysgen.ports import InputPort, OutputPort, PortRef
from repro.sysgen.model import Model, ModelError, Probe
from repro.sysgen.subsystem import Subsystem

from repro.sysgen import blocks

__all__ = [
    "Model",
    "ModelError",
    "Probe",
    "Subsystem",
    "Block",
    "CombBlock",
    "SeqBlock",
    "IDLE_FOREVER",
    "InputPort",
    "OutputPort",
    "PortRef",
    "blocks",
]
