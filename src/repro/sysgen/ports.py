"""Ports and wires for the sysgen block graph.

An :class:`OutputPort` owns the signal value; an :class:`InputPort`
reads through its connected output (single-driver rule).  Values are
raw integers (two's-complement bit patterns interpreted by each block's
declared width) or booleans for control signals — the arithmetic-level
representation that makes this simulator fast.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sysgen.block import Block


class PortError(RuntimeError):
    """Connection or access error on a port."""


class OutputPort:
    __slots__ = ("block", "name", "value", "width")

    def __init__(self, block: "Block", name: str, width: int = 32):
        self.block = block
        self.name = name
        self.width = width
        self.value: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<out {self.block.name}.{self.name}={self.value}>"


class InputPort:
    __slots__ = ("block", "name", "source", "default")

    def __init__(self, block: "Block", name: str, default: int = 0):
        self.block = block
        self.name = name
        self.source: OutputPort | None = None
        self.default = default

    @property
    def value(self) -> int:
        return self.source.value if self.source is not None else self.default

    @property
    def connected(self) -> bool:
        return self.source is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        src = f"{self.source.block.name}.{self.source.name}" if self.source else "-"
        return f"<in {self.block.name}.{self.name} <- {src}>"


class PortRef:
    """A (block, port-name) reference used in ``Model.connect`` calls."""

    __slots__ = ("port",)

    def __init__(self, port: "InputPort | OutputPort"):
        self.port = port

    @property
    def is_input(self) -> bool:
        return isinstance(self.port, InputPort)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self.port)
