"""OPB slave adapter block — memory-mapped peripheral registers.

The paper's environment supports attaching customized hardware over the
IBM On-chip Peripheral Bus in addition to FSL.  This block is the
hardware-side adapter: it is simultaneously

* a sysgen block: ``cmd0..cmd{n-1}`` outputs expose the registers the
  processor writes; ``sts0..sts{m-1}`` inputs are latched every cycle
  into registers the processor reads,
* an OPB slave (:class:`repro.bus.opb.OPBSlave`): word offsets
  ``[0, 4n)`` address the command registers, ``[4n, 4n+4m)`` the status
  registers.

Attach it to a bus with ``bus.attach(base, block.opb_size, block)`` and
map the bus into the processor with ``cpu.mem.map_opb(bus, base, size)``.
"""

from __future__ import annotations

from repro.resources.types import Resources
from repro.sysgen.block import IDLE_FOREVER, SeqBlock, slices_for_bits, wrap


class OPBRegisterBank(SeqBlock):
    """n command (CPU→HW) + m status (HW→CPU) 32-bit registers."""

    def __init__(self, name: str, n_command: int = 4, n_status: int = 4):
        super().__init__(name)
        if n_command < 0 or n_status < 0 or n_command + n_status == 0:
            raise ValueError("need at least one register")
        self.n_command = n_command
        self.n_status = n_status
        self._cmd = [0] * n_command
        self._sts = [0] * n_status
        for i in range(n_command):
            self.add_output(f"cmd{i}", 32)
        for i in range(n_status):
            self.add_input(f"sts{i}")
        #: count of writes observed (handy strobe for control logic)
        self.add_output("wr_count", 16)
        self._writes = 0

    # ------------------------------------------------------------------
    # sysgen side
    # ------------------------------------------------------------------
    def present(self) -> None:
        for i, value in enumerate(self._cmd):
            self.outputs[f"cmd{i}"].value = value
        self.outputs["wr_count"].value = self._writes & 0xFFFF

    def clock(self) -> None:
        for i in range(self.n_status):
            self._sts[i] = wrap(self.in_value(f"sts{i}"), 32)

    def emit(self, ctx) -> bool:
        # The CPU writes _cmd/_writes through opb_write between (or,
        # with an in-model CPU block, during) cycles, so command
        # registers are read per cycle — never cached in locals.
        b = ctx.bind(self)
        cmd = ctx.fresh(self, "_cmd", "cm")
        for i in range(self.n_command):
            ctx.present(f"{ctx.out(self, f'cmd{i}')} = {cmd}[{i}]")
        ctx.present(f"{ctx.out(self, 'wr_count')} = {b}._writes & 65535")
        sts = ctx.fresh(self, "_sts", "st")
        for i in range(self.n_status):
            ctx.clock(
                f"{sts}[{i}] = ({ctx.inp(self, f'sts{i}')}) & 4294967295"
            )
        return True

    def reset(self) -> None:
        super().reset()
        self._cmd = [0] * self.n_command
        self._sts = [0] * self.n_status
        self._writes = 0

    def idle_horizon(self) -> int:
        for i, value in enumerate(self._cmd):
            if self.outputs[f"cmd{i}"].value != value:
                return 0
        if self.outputs["wr_count"].value != self._writes & 0xFFFF:
            return 0
        for i in range(self.n_status):
            if self._sts[i] != wrap(self.in_value(f"sts{i}"), 32):
                return 0
        return IDLE_FOREVER

    def extra_state(self) -> dict:
        return {"cmd": list(self._cmd), "sts": list(self._sts),
                "writes": self._writes}

    def load_extra_state(self, extra: dict) -> None:
        self._cmd = list(extra["cmd"])
        self._sts = list(extra["sts"])
        self._writes = extra["writes"]

    # ------------------------------------------------------------------
    # OPB slave side
    # ------------------------------------------------------------------
    @property
    def opb_size(self) -> int:
        return 4 * (self.n_command + self.n_status)

    def opb_read(self, offset: int) -> int:
        index = offset // 4
        if index < self.n_command:
            return self._cmd[index]
        index -= self.n_command
        if index < self.n_status:
            return self._sts[index]
        raise IndexError(f"OPB read beyond register bank: offset {offset}")

    def opb_write(self, offset: int, value: int) -> None:
        index = offset // 4
        if index >= self.n_command:
            raise IndexError(
                f"OPB write to read-only/status register: offset {offset}"
            )
        self._cmd[index] = value & 0xFFFFFFFF
        self._writes += 1

    # ------------------------------------------------------------------
    def resources(self) -> Resources:
        regs = (self.n_command + self.n_status) * slices_for_bits(32)
        return Resources(slices=regs + 12)  # registers + OPB decode
