"""Constant sources and counters."""

from __future__ import annotations

from repro.resources.types import Resources
from repro.sysgen.batched import guarded_update_batched, np
from repro.sysgen.block import (
    IDLE_FOREVER,
    CombBlock,
    SeqBlock,
    slices_for_bits,
    wrap,
)
from repro.sysgen.compiled import guarded_update


class Constant(CombBlock):
    """A constant driver."""

    def __init__(self, name: str, value: int, width: int = 32):
        super().__init__(name)
        self.width = width
        self.value = wrap(value, width)
        self.add_output("out", width)

    def evaluate(self) -> None:
        self.outputs["out"].value = self.value

    def emit(self, ctx) -> bool:
        # ``value`` is read per call (not baked into the source) so a
        # rebuilt/loaded model never runs a stale constant.
        val = ctx.fresh(self, "value", "k")
        ctx.evaluate(f"{ctx.out(self, 'out')} = {val}")
        return True

    def emit_batched(self, ctx) -> bool:
        # per-lane values snapshot at codegen time (``value`` is a
        # construction parameter untouched by reset/load_state; poking
        # it after the batch is built is not supported)
        vals = ctx.bind(
            np.fromiter((b.value for b in ctx.lane_blocks(self)),
                        np.int64, ctx.n), "kc")
        ctx.evaluate(f"{ctx.out(self, 'out')} = {vals}")
        return True

    def idle_horizon(self) -> int:
        return IDLE_FOREVER if self.outputs["out"].value == self.value else 0

    def resources(self) -> Resources:
        return Resources()  # constants fold into downstream LUTs


class Counter(SeqBlock):
    """Free-running (or enabled) up-counter with synchronous reset."""

    def __init__(self, name: str, width: int = 16, step: int = 1):
        super().__init__(name)
        self.width = width
        self.step = step
        self.add_input("en", default=1)
        self.add_input("rst", default=0)
        self.add_output("q", width)
        self._state = 0

    def present(self) -> None:
        self.outputs["q"].value = self._state

    def clock(self) -> None:
        if self.in_value("rst") & 1:
            self._state = 0
        elif self.in_value("en") & 1:
            self._state = wrap(self._state + self.step, self.width)

    def emit(self, ctx) -> bool:
        st = ctx.scalar_state(self, "_state")
        ctx.present(f"{ctx.out(self, 'q')} = {st}")
        upd = guarded_update(
            ctx.inp(self, "rst"), ctx.inp(self, "en"),
            f"{st} = 0",
            f"{st} = ({st} + {self.step}) & {(1 << self.width) - 1}",
        )
        if upd:
            ctx.clock(upd)
        return True

    def emit_batched(self, ctx) -> bool:
        lanes = ctx.lane_blocks(self)
        st = ctx.state(
            lambda: np.fromiter((b._state for b in lanes), np.int64, ctx.n),
            "cn")
        # the step increment may vary per lane (a common sweep axis)
        steps = ctx.bind(
            np.fromiter((wrap(b.step, self.width) for b in lanes),
                        np.int64, ctx.n), "kn")
        ctx.masked_present(ctx.out(self, "q"), st)
        upd = guarded_update_batched(
            ctx, ctx.inp(self, "rst"), ctx.inp(self, "en"),
            "0",
            f"({st} + {steps}) & {(1 << self.width) - 1}",
            st,
        )
        if upd:
            ctx.clock(f"{st} = {upd}")
        return True

    def reset(self) -> None:
        super().reset()
        self._state = 0

    def idle_horizon(self) -> int:
        if self.in_value("rst") & 1:
            next_state = 0
        elif self.in_value("en") & 1:
            next_state = wrap(self._state + self.step, self.width)
        else:
            next_state = self._state
        if next_state == self._state and self.outputs["q"].value == self._state:
            return IDLE_FOREVER
        return 0

    def extra_state(self) -> dict:
        return {"state": self._state}

    def load_extra_state(self, extra: dict) -> None:
        self._state = extra["state"]

    def resources(self) -> Resources:
        return Resources(slices=slices_for_bits(self.width))
