"""FSL interface blocks — the hardware-side view of the paper's
"MicroBlaze Simulink block" FSL ports (Section III-B).

``FSLRead`` faces a processor→peripheral channel: it presents the FIFO
head on ``data``/``control`` with the ``exists`` flag (the paper's
``Out#_exists``/``Out#_control``), and consumes a word at the clock
edge when the design asserts ``read`` while data exists.

``FSLWrite`` faces a peripheral→processor channel: the design drives
``data``/``control`` and asserts ``write``; the block reports ``full``
(the paper's ``In#_full``) and pushes at the clock edge.

Both are *bound* to an :class:`~repro.bus.fsl.FSLChannel` by the
co-simulation environment (:class:`repro.cosim.mb_block.MicroBlazeBlock`),
which owns the channel objects shared with the CPU's FSL unit.
"""

from __future__ import annotations

from repro.bus.fsl import FSLChannel
from repro.resources.types import Resources
from repro.sysgen.block import IDLE_FOREVER, SeqBlock
from repro.telemetry.events import BLOCK_FIRE, TelemetryEvent


class FSLBindError(RuntimeError):
    """Raised when stepping an FSL block that has no bound channel."""


class FSLRead(SeqBlock):
    """Peripheral-side reader of a processor→peripheral FSL."""

    def __init__(self, name: str):
        super().__init__(name)
        self.add_input("read", default=0)
        self.add_output("data", 32)
        self.add_output("exists", 1)
        self.add_output("control", 1)
        self.channel: FSLChannel | None = None
        #: optional telemetry bus + cycle source (set by the attach
        #: helpers in :mod:`repro.telemetry`)
        self.events = None
        self.telemetry_clock = None

    def bind(self, channel: FSLChannel) -> None:
        self.channel = channel

    def _require(self) -> FSLChannel:
        if self.channel is None:
            raise FSLBindError(f"FSLRead {self.name!r} has no bound channel")
        return self.channel

    def present(self) -> None:
        word = self._require().peek()
        if word is None:
            self.outputs["data"].value = 0
            self.outputs["control"].value = 0
            self.outputs["exists"].value = 0
        else:
            self.outputs["data"].value = word.data
            self.outputs["control"].value = int(word.control)
            self.outputs["exists"].value = 1

    def clock(self) -> None:
        ch = self._require()
        if self.in_value("read") & 1 and ch.exists:
            ch.pop()
            if self.events is not None:
                self.events.emit(TelemetryEvent(
                    BLOCK_FIRE,
                    self.telemetry_clock() if self.telemetry_clock else 0,
                    self.name,
                ))

    def emit(self, ctx) -> bool:
        b = ctx.bind(self)
        # channel binding and telemetry attach both happen after the
        # model compiles, so fetch the channel per call and the event
        # bus per cycle — never at codegen time.
        ch = ctx.fresh(self, "channel", "ch")
        vd = ctx.out(self, "data")
        ve = ctx.out(self, "exists")
        vc = ctx.out(self, "control")
        w = ctx.tmp()
        ctx.present(f"if {ch} is None: {b}._require()")
        ctx.present(f"{w} = {ch}.peek()")
        ctx.present(
            f"if {w} is None: {vd} = 0; {vc} = 0; {ve} = 0\n"
            f"else: {vd} = {w}.data; "
            f"{vc} = 1 if {w}.control else 0; {ve} = 1"
        )
        read = ctx.inp(self, "read")
        rlit = ctx.lit(read)
        if rlit is not None and not (rlit & 1):
            return True
        guard = (f"{ch}.exists" if rlit is not None
                 else f"({read}) & 1 and {ch}.exists")
        te = ctx.bind(TelemetryEvent, "TE")
        bf = ctx.bind(BLOCK_FIRE, "BF")
        ctx.clock(
            f"if {guard}:\n"
            f"    {ch}.pop()\n"
            f"    if {b}.events is not None:\n"
            f"        {b}.events.emit({te}({bf}, {b}.telemetry_clock() "
            f"if {b}.telemetry_clock else 0, {self.name!r}))"
        )
        return True

    def idle_horizon(self) -> int:
        ch = self.channel
        if ch is None:
            return 0
        if self.in_value("read") & 1 and ch.exists:
            return 0  # a word would be consumed at the next edge
        word = ch.peek()
        outs = self.outputs
        if word is None:
            settled = (outs["data"].value == 0 and outs["control"].value == 0
                       and outs["exists"].value == 0)
        else:
            settled = (outs["data"].value == word.data
                       and outs["control"].value == int(word.control)
                       and outs["exists"].value == 1)
        return IDLE_FOREVER if settled else 0

    def resources(self) -> Resources:
        return Resources(slices=4)  # handshake decode logic


class FSLWrite(SeqBlock):
    """Peripheral-side writer of a peripheral→processor FSL."""

    def __init__(self, name: str):
        super().__init__(name)
        self.add_input("data")
        self.add_input("write", default=0)
        self.add_input("control", default=0)
        self.add_output("full", 1)
        self.channel: FSLChannel | None = None
        self.dropped = 0  # writes attempted while full
        #: optional telemetry bus + cycle source (set by the attach
        #: helpers in :mod:`repro.telemetry`)
        self.events = None
        self.telemetry_clock = None

    def bind(self, channel: FSLChannel) -> None:
        self.channel = channel

    def _require(self) -> FSLChannel:
        if self.channel is None:
            raise FSLBindError(f"FSLWrite {self.name!r} has no bound channel")
        return self.channel

    def present(self) -> None:
        self.outputs["full"].value = int(self._require().full)

    def clock(self) -> None:
        ch = self._require()
        if self.in_value("write") & 1:
            ok = ch.push(self.in_value("data"), bool(self.in_value("control") & 1))
            if not ok:
                self.dropped += 1
            if self.events is not None:
                self.events.emit(TelemetryEvent(
                    BLOCK_FIRE,
                    self.telemetry_clock() if self.telemetry_clock else 0,
                    self.name,
                    aux=0 if ok else 1,
                ))

    def emit(self, ctx) -> bool:
        b = ctx.bind(self)
        ch = ctx.fresh(self, "channel", "ch")
        ctx.present(f"if {ch} is None: {b}._require()")
        ctx.present(f"{ctx.out(self, 'full')} = 1 if {ch}.full else 0")
        write = ctx.inp(self, "write")
        wlit = ctx.lit(write)
        if wlit is not None and not (wlit & 1):
            return True
        data = ctx.inp(self, "data")
        control = ctx.inp(self, "control")
        clit = ctx.lit(control)
        ctrl = (repr(bool(clit & 1)) if clit is not None
                else f"bool(({control}) & 1)")
        drop = ctx.scalar_state(self, "dropped")
        te = ctx.bind(TelemetryEvent, "TE")
        bf = ctx.bind(BLOCK_FIRE, "BF")
        ok = ctx.tmp()
        body = (
            f"{ok} = {ch}.push({data}, {ctrl})\n"
            f"if not {ok}: {drop} = {drop} + 1\n"
            f"if {b}.events is not None:\n"
            f"    {b}.events.emit({te}({bf}, {b}.telemetry_clock() "
            f"if {b}.telemetry_clock else 0, {self.name!r}, "
            f"aux=0 if {ok} else 1))"
        )
        if wlit is not None:
            ctx.clock(body)
        else:
            indented = "\n".join("    " + ln for ln in body.split("\n"))
            ctx.clock(f"if ({write}) & 1:\n{indented}")
        return True

    def reset(self) -> None:
        super().reset()
        self.dropped = 0

    def extra_state(self) -> dict:
        # The bound channel is owned (and checkpointed) by the
        # MicroBlazeBlock; only the drop counter lives here.
        return {"dropped": self.dropped}

    def load_extra_state(self, extra: dict) -> None:
        self.dropped = extra["dropped"]

    def idle_horizon(self) -> int:
        ch = self.channel
        if ch is None:
            return 0
        if self.in_value("write") & 1:
            return 0  # a push (or a counted drop) happens every edge
        if self.outputs["full"].value == int(ch.full):
            return IDLE_FOREVER
        return 0

    def resources(self) -> Resources:
        return Resources(slices=4)
