"""The sysgen block set (the System Generator block-set analogue)."""

from repro.sysgen.blocks.arith import (
    Accumulator,
    Add,
    AddSub,
    Convert,
    Mult,
    Negate,
    Shift,
    Sub,
)
from repro.sysgen.blocks.control import Constant, Counter
from repro.sysgen.blocks.gateway import GatewayIn, GatewayOut
from repro.sysgen.blocks.logic import (
    Concat,
    Logical,
    Mux,
    Inverter,
    Relational,
    Slice,
)
from repro.sysgen.blocks.memory import FIFO, RAM, ROM, Delay, Register
from repro.sysgen.blocks.fsl import FSLRead, FSLWrite
from repro.sysgen.blocks.opb import OPBRegisterBank

__all__ = [
    "Add",
    "Sub",
    "AddSub",
    "Mult",
    "Negate",
    "Shift",
    "Accumulator",
    "Convert",
    "Constant",
    "Counter",
    "GatewayIn",
    "GatewayOut",
    "Mux",
    "Relational",
    "Logical",
    "Inverter",
    "Slice",
    "Concat",
    "Register",
    "Delay",
    "FIFO",
    "ROM",
    "RAM",
    "FSLRead",
    "FSLWrite",
    "OPBRegisterBank",
]
