"""Gateway In / Gateway Out blocks.

In System Generator the gateways separate the fixed-point hardware
design from the surrounding Simulink model and define its I/O ports
(paper, Section III-A).  ``GatewayIn.drive()`` quantizes host values
(floats, ints, ``Fixed``) into the declared fixed-point format;
``GatewayOut`` exposes the settled signal back to the host, both as a
raw pattern and as a converted number.
"""

from __future__ import annotations

from fractions import Fraction

from repro.fixedpoint import Fixed, FixedFormat, Overflow, Rounding
from repro.resources.types import Resources
from repro.sysgen.block import IDLE_FOREVER, CombBlock


class GatewayIn(CombBlock):
    """Host → hardware boundary with input quantization."""

    def __init__(
        self,
        name: str,
        width: int = 32,
        frac: int = 0,
        signed: bool = True,
        rounding: Rounding = Rounding.TRUNCATE,
        overflow: Overflow = Overflow.SATURATE,
    ):
        super().__init__(name)
        if width == 1:
            signed = False  # 1-bit gateways are Boolean control signals
        self.fmt = FixedFormat(width, frac, signed)
        self.rounding = rounding
        self.overflow = overflow
        self.add_output("out", width)
        self._raw = 0

    def drive(self, value: "float | int | Fixed | Fraction") -> None:
        """Quantize ``value`` into the gateway format for the next cycle."""
        self._raw = self.fmt.quantize(value, self.rounding, self.overflow).bits()

    def drive_raw(self, raw: int) -> None:
        """Drive a raw bit pattern (no quantization)."""
        self._raw = raw & ((1 << self.fmt.word_bits) - 1)

    def evaluate(self) -> None:
        self.outputs["out"].value = self._raw

    def emit(self, ctx) -> bool:
        # drive()/drive_raw() can only happen between step() calls, so
        # one per-call load of _raw is exact.
        raw = ctx.fresh(self, "_raw", "gw")
        ctx.evaluate(f"{ctx.out(self, 'out')} = {raw}")
        return True

    def idle_horizon(self) -> int:
        # A drive() since the last step leaves the output stale.
        return IDLE_FOREVER if self.outputs["out"].value == self._raw else 0

    def reset(self) -> None:
        super().reset()
        self._raw = 0

    def extra_state(self) -> dict:
        return {"raw": self._raw}

    def load_extra_state(self, extra: dict) -> None:
        self._raw = extra["raw"]

    def resources(self) -> Resources:
        return Resources()  # gateways are simulation artifacts


class GatewayOut(CombBlock):
    """Hardware → host boundary."""

    def __init__(self, name: str, width: int = 32, frac: int = 0,
                 signed: bool = True):
        super().__init__(name)
        if width == 1:
            signed = False  # 1-bit gateways are Boolean control signals
        self.fmt = FixedFormat(width, frac, signed)
        self.add_input("in")
        self.add_output("out", width)  # pass-through for probes

    def evaluate(self) -> None:
        self.outputs["out"].value = self.in_value("in") & (
            (1 << self.fmt.word_bits) - 1
        )

    def emit(self, ctx) -> bool:
        m = (1 << self.fmt.word_bits) - 1
        ctx.evaluate(
            f"{ctx.out(self, 'out')} = ({ctx.inp(self, 'in')}) & {m}"
        )
        return True

    # -- host-side accessors ----------------------------------------------
    @property
    def raw(self) -> int:
        return self.outputs["out"].value

    @property
    def fixed(self) -> Fixed:
        return self.fmt.from_raw(self.raw)

    @property
    def value(self) -> float:
        return float(self.fixed)

    @property
    def signed_int(self) -> int:
        raw = self.raw
        if self.fmt.signed and raw & (1 << (self.fmt.word_bits - 1)):
            raw -= 1 << self.fmt.word_bits
        return raw

    def resources(self) -> Resources:
        return Resources()
