"""State-holding blocks: registers, delays, FIFOs, ROM/RAM."""

from __future__ import annotations

from collections import deque

from repro.resources.types import Resources
from repro.sysgen.block import (
    IDLE_FOREVER,
    CombBlock,
    SeqBlock,
    slices_for_bits,
    wrap,
)


class Register(SeqBlock):
    """D-type register with optional enable and synchronous reset."""

    def __init__(self, name: str, width: int = 32, init: int = 0):
        super().__init__(name)
        self.width = width
        self.init = wrap(init, width)
        self.add_input("d")
        self.add_input("en", default=1)
        self.add_input("rst", default=0)
        self.add_output("q", width)
        self._state = self.init

    def present(self) -> None:
        self.outputs["q"].value = self._state

    def clock(self) -> None:
        if self.in_value("rst") & 1:
            self._state = self.init
        elif self.in_value("en") & 1:
            self._state = wrap(self.in_value("d"), self.width)

    def reset(self) -> None:
        super().reset()
        self._state = self.init

    def idle_horizon(self) -> int:
        if self.in_value("rst") & 1:
            next_state = self.init
        elif self.in_value("en") & 1:
            next_state = wrap(self.in_value("d"), self.width)
        else:
            next_state = self._state
        if next_state == self._state and self.outputs["q"].value == self._state:
            return IDLE_FOREVER
        return 0

    def extra_state(self) -> dict:
        return {"state": self._state}

    def load_extra_state(self, extra: dict) -> None:
        self._state = extra["state"]

    def resources(self) -> Resources:
        return Resources(slices=slices_for_bits(self.width))


class Delay(SeqBlock):
    """``n``-cycle delay line (SRL16-style shift register)."""

    def __init__(self, name: str, width: int = 32, n: int = 1):
        super().__init__(name)
        if n < 1:
            raise ValueError("delay length must be >= 1")
        self.width = width
        self.n = n
        self.add_input("d")
        self.add_output("q", width)
        self._line: deque[int] = deque([0] * n)

    def present(self) -> None:
        self.outputs["q"].value = self._line[0]

    def clock(self) -> None:
        self._line.popleft()
        self._line.append(wrap(self.in_value("d"), self.width))

    def reset(self) -> None:
        super().reset()
        self._line = deque([0] * self.n)

    def idle_horizon(self) -> int:
        head = self._line[0]
        if self.outputs["q"].value != head:
            return 0
        if wrap(self.in_value("d"), self.width) != head:
            return 0
        if any(v != head for v in self._line):
            return 0
        return IDLE_FOREVER

    def extra_state(self) -> dict:
        return {"line": list(self._line)}

    def load_extra_state(self, extra: dict) -> None:
        self._line = deque(extra["line"])

    def resources(self) -> Resources:
        # SRL16: one LUT per bit per 16 stages.
        luts = self.width * ((self.n + 15) // 16)
        return Resources(slices=(luts + 1) // 2)


class FIFO(SeqBlock):
    """Synchronous FIFO with registered status flags.

    Ports: ``din``/``push`` write side, ``dout``/``pop`` read side,
    ``empty``/``full``/``count`` status.  ``dout`` presents the head
    word; a ``pop`` with ``empty`` high or ``push`` with ``full`` high
    is ignored (as in the Xilinx FSL FIFO macro).
    """

    def __init__(self, name: str, width: int = 32, depth: int = 16):
        super().__init__(name)
        if depth < 1:
            raise ValueError("FIFO depth must be >= 1")
        self.width = width
        self.depth = depth
        self.add_input("din")
        self.add_input("push", default=0)
        self.add_input("pop", default=0)
        self.add_output("dout", width)
        self.add_output("empty", 1)
        self.add_output("full", 1)
        self.add_output("count", depth.bit_length())
        self._fifo: deque[int] = deque()

    def present(self) -> None:
        self.outputs["dout"].value = self._fifo[0] if self._fifo else 0
        self.outputs["empty"].value = int(not self._fifo)
        self.outputs["full"].value = int(len(self._fifo) >= self.depth)
        self.outputs["count"].value = len(self._fifo)

    def clock(self) -> None:
        if self.in_value("pop") & 1 and self._fifo:
            self._fifo.popleft()
        if self.in_value("push") & 1 and len(self._fifo) < self.depth:
            self._fifo.append(wrap(self.in_value("din"), self.width))

    def reset(self) -> None:
        super().reset()
        self._fifo.clear()

    def idle_horizon(self) -> int:
        if self.in_value("pop") & 1 and self._fifo:
            return 0
        if self.in_value("push") & 1 and len(self._fifo) < self.depth:
            return 0
        outs = self.outputs
        if (
            outs["dout"].value == (self._fifo[0] if self._fifo else 0)
            and outs["empty"].value == int(not self._fifo)
            and outs["full"].value == int(len(self._fifo) >= self.depth)
            and outs["count"].value == len(self._fifo)
        ):
            return IDLE_FOREVER
        return 0

    def extra_state(self) -> dict:
        return {"fifo": list(self._fifo)}

    def load_extra_state(self, extra: dict) -> None:
        self._fifo = deque(extra["fifo"])

    def resources(self) -> Resources:
        if self.depth * self.width > 4096:  # BRAM-based beyond ~4 kbit
            return Resources(slices=16, brams=(self.depth * self.width + 18_431)
                             // 18_432)
        luts = self.width * ((self.depth + 15) // 16)
        return Resources(slices=(luts + 1) // 2 + 8)  # storage + pointers


class ROM(CombBlock):
    """Asynchronous-read constant table (distributed ROM)."""

    def __init__(self, name: str, contents: list[int], width: int = 32):
        super().__init__(name)
        if not contents:
            raise ValueError("ROM needs at least one word")
        self.width = width
        self.contents = [wrap(v, width) for v in contents]
        self.add_input("addr")
        self.add_output("data", width)

    def evaluate(self) -> None:
        addr = self.in_value("addr") % len(self.contents)
        self.outputs["data"].value = self.contents[addr]

    def resources(self) -> Resources:
        luts = self.width * ((len(self.contents) + 15) // 16)
        return Resources(slices=(luts + 1) // 2)


class RAM(SeqBlock):
    """Single-port synchronous RAM (BRAM behaviour: registered read)."""

    def __init__(self, name: str, depth: int, width: int = 32):
        super().__init__(name)
        if depth < 1:
            raise ValueError("RAM depth must be >= 1")
        self.width = width
        self.depth = depth
        self.add_input("addr")
        self.add_input("din")
        self.add_input("we", default=0)
        self.add_output("dout", width)
        self._mem = [0] * depth
        self._read_reg = 0

    def present(self) -> None:
        self.outputs["dout"].value = self._read_reg

    def clock(self) -> None:
        addr = self.in_value("addr") % self.depth
        if self.in_value("we") & 1:
            self._mem[addr] = wrap(self.in_value("din"), self.width)
        self._read_reg = self._mem[addr]

    def reset(self) -> None:
        super().reset()
        self._mem = [0] * self.depth
        self._read_reg = 0

    def idle_horizon(self) -> int:
        if self.in_value("we") & 1:
            return 0
        if (
            self._read_reg == self._mem[self.in_value("addr") % self.depth]
            and self.outputs["dout"].value == self._read_reg
        ):
            return IDLE_FOREVER
        return 0

    def extra_state(self) -> dict:
        return {"mem": list(self._mem), "read_reg": self._read_reg}

    def load_extra_state(self, extra: dict) -> None:
        self._mem = list(extra["mem"])
        self._read_reg = extra["read_reg"]

    def resources(self) -> Resources:
        bits = self.depth * self.width
        if bits > 4096:
            return Resources(brams=(bits + 18_431) // 18_432)
        return Resources(slices=(bits // 16 + 1) // 2 + 4)
