"""State-holding blocks: registers, delays, FIFOs, ROM/RAM."""

from __future__ import annotations

from collections import deque

from repro.resources.types import Resources
from repro.sysgen.batched import guarded_update_batched, np
from repro.sysgen.block import (
    IDLE_FOREVER,
    CombBlock,
    SeqBlock,
    slices_for_bits,
    wrap,
)
from repro.sysgen.compiled import guarded_update


class Register(SeqBlock):
    """D-type register with optional enable and synchronous reset."""

    def __init__(self, name: str, width: int = 32, init: int = 0):
        super().__init__(name)
        self.width = width
        self.init = wrap(init, width)
        self.add_input("d")
        self.add_input("en", default=1)
        self.add_input("rst", default=0)
        self.add_output("q", width)
        self._state = self.init

    def present(self) -> None:
        self.outputs["q"].value = self._state

    def clock(self) -> None:
        if self.in_value("rst") & 1:
            self._state = self.init
        elif self.in_value("en") & 1:
            self._state = wrap(self.in_value("d"), self.width)

    def emit(self, ctx) -> bool:
        st = ctx.scalar_state(self, "_state")
        ctx.present(f"{ctx.out(self, 'q')} = {st}")
        upd = guarded_update(
            ctx.inp(self, "rst"), ctx.inp(self, "en"),
            f"{st} = {self.init}",
            f"{st} = ({ctx.inp(self, 'd')}) & {(1 << self.width) - 1}",
        )
        if upd:
            ctx.clock(upd)
        return True

    def emit_batched(self, ctx) -> bool:
        lanes = ctx.lane_blocks(self)
        st = ctx.state(
            lambda: np.fromiter((b._state for b in lanes), np.int64, ctx.n),
            "rg")
        # reset values may vary per lane (a common sweep axis)
        inits = ctx.bind(
            np.fromiter((b.init for b in lanes), np.int64, ctx.n), "kr")
        ctx.masked_present(ctx.out(self, "q"), st)
        upd = guarded_update_batched(
            ctx, ctx.inp(self, "rst"), ctx.inp(self, "en"),
            inits,
            f"({ctx.inp(self, 'd')}) & {(1 << self.width) - 1}",
            st,
        )
        if upd:
            ctx.clock(f"{st} = {upd}")
        return True

    def reset(self) -> None:
        super().reset()
        self._state = self.init

    def idle_horizon(self) -> int:
        if self.in_value("rst") & 1:
            next_state = self.init
        elif self.in_value("en") & 1:
            next_state = wrap(self.in_value("d"), self.width)
        else:
            next_state = self._state
        if next_state == self._state and self.outputs["q"].value == self._state:
            return IDLE_FOREVER
        return 0

    def extra_state(self) -> dict:
        return {"state": self._state}

    def load_extra_state(self, extra: dict) -> None:
        self._state = extra["state"]

    def resources(self) -> Resources:
        return Resources(slices=slices_for_bits(self.width))


class Delay(SeqBlock):
    """``n``-cycle delay line (SRL16-style shift register)."""

    def __init__(self, name: str, width: int = 32, n: int = 1):
        super().__init__(name)
        if n < 1:
            raise ValueError("delay length must be >= 1")
        self.width = width
        self.n = n
        self.add_input("d")
        self.add_output("q", width)
        self._line: deque[int] = deque([0] * n)

    def present(self) -> None:
        self.outputs["q"].value = self._line[0]

    def clock(self) -> None:
        self._line.popleft()
        self._line.append(wrap(self.in_value("d"), self.width))

    def emit(self, ctx) -> bool:
        line = ctx.fresh(self, "_line", "dq")
        pop = ctx.tmp()
        app = ctx.tmp()
        ctx.entry(f"{pop} = {line}.popleft")
        ctx.entry(f"{app} = {line}.append")
        ctx.present(f"{ctx.out(self, 'q')} = {line}[0]")
        ctx.clock(f"{pop}()")
        ctx.clock(
            f"{app}(({ctx.inp(self, 'd')}) & {(1 << self.width) - 1})"
        )
        return True

    def emit_batched(self, ctx) -> bool:
        lanes = ctx.lane_blocks(self)
        line = ctx.state(
            lambda: np.array([list(b._line) for b in lanes], dtype=np.int64),
            "dl")
        ctx.masked_present(ctx.out(self, "q"), f"{line}[:, 0]")
        d = ctx.as_array(
            f"({ctx.inp(self, 'd')}) & {(1 << self.width) - 1}")
        t = ctx.tmp()
        ctx.clock(f"{t} = np.concatenate(({line}[:, 1:], "
                  f"({d})[:, None]), axis=1)")
        ctx.clock(f"{line} = np.where({ctx.act}[:, None], {t}, {line})")
        return True

    def reset(self) -> None:
        super().reset()
        self._line = deque([0] * self.n)

    def idle_horizon(self) -> int:
        head = self._line[0]
        if self.outputs["q"].value != head:
            return 0
        if wrap(self.in_value("d"), self.width) != head:
            return 0
        if any(v != head for v in self._line):
            return 0
        return IDLE_FOREVER

    def extra_state(self) -> dict:
        return {"line": list(self._line)}

    def load_extra_state(self, extra: dict) -> None:
        self._line = deque(extra["line"])

    def resources(self) -> Resources:
        # SRL16: one LUT per bit per 16 stages.
        luts = self.width * ((self.n + 15) // 16)
        return Resources(slices=(luts + 1) // 2)


class FIFO(SeqBlock):
    """Synchronous FIFO with registered status flags.

    Ports: ``din``/``push`` write side, ``dout``/``pop`` read side,
    ``empty``/``full``/``count`` status.  ``dout`` presents the head
    word; a ``pop`` with ``empty`` high or ``push`` with ``full`` high
    is ignored (as in the Xilinx FSL FIFO macro).
    """

    def __init__(self, name: str, width: int = 32, depth: int = 16):
        super().__init__(name)
        if depth < 1:
            raise ValueError("FIFO depth must be >= 1")
        self.width = width
        self.depth = depth
        self.add_input("din")
        self.add_input("push", default=0)
        self.add_input("pop", default=0)
        self.add_output("dout", width)
        self.add_output("empty", 1)
        self.add_output("full", 1)
        self.add_output("count", depth.bit_length())
        self._fifo: deque[int] = deque()

    def present(self) -> None:
        self.outputs["dout"].value = self._fifo[0] if self._fifo else 0
        self.outputs["empty"].value = int(not self._fifo)
        self.outputs["full"].value = int(len(self._fifo) >= self.depth)
        self.outputs["count"].value = len(self._fifo)

    def clock(self) -> None:
        if self.in_value("pop") & 1 and self._fifo:
            self._fifo.popleft()
        if self.in_value("push") & 1 and len(self._fifo) < self.depth:
            self._fifo.append(wrap(self.in_value("din"), self.width))

    def emit(self, ctx) -> bool:
        fifo = ctx.fresh(self, "_fifo", "fq")
        ctx.present(f"{ctx.out(self, 'dout')} = {fifo}[0] if {fifo} else 0")
        ctx.present(f"{ctx.out(self, 'empty')} = 0 if {fifo} else 1")
        ctx.present(
            f"{ctx.out(self, 'full')} = "
            f"1 if len({fifo}) >= {self.depth} else 0"
        )
        ctx.present(f"{ctx.out(self, 'count')} = len({fifo})")
        pop = ctx.inp(self, "pop")
        plit = ctx.lit(pop)
        if plit is None:
            ctx.clock(f"if ({pop}) & 1 and {fifo}: {fifo}.popleft()")
        elif plit & 1:
            ctx.clock(f"if {fifo}: {fifo}.popleft()")
        push = ctx.inp(self, "push")
        din = f"({ctx.inp(self, 'din')}) & {(1 << self.width) - 1}"
        slit = ctx.lit(push)
        if slit is None:
            ctx.clock(f"if ({push}) & 1 and len({fifo}) < {self.depth}: "
                      f"{fifo}.append({din})")
        elif slit & 1:
            ctx.clock(f"if len({fifo}) < {self.depth}: {fifo}.append({din})")
        return True

    def emit_batched(self, ctx) -> bool:
        # circular-buffer vectorization: (N, depth) storage plus head
        # and count arrays.  The clone deques are flattened to head 0
        # on (re)load.  Pop advances head before push computes its slot
        # (a push sees the post-pop count, as in clock()).
        lanes = ctx.lane_blocks(self)
        n, depth = ctx.n, self.depth

        def load_storage():
            arr = np.zeros((n, depth), dtype=np.int64)
            for lane, b in enumerate(lanes):
                for i, v in enumerate(b._fifo):
                    arr[lane, i] = v
            return arr

        store = ctx.state(load_storage, "fs")
        head = ctx.state(lambda: np.zeros(n, dtype=np.int64), "fh")
        cnt = ctx.state(
            lambda: np.fromiter((len(b._fifo) for b in lanes),
                                np.int64, n), "fc")
        ar = ctx.arange
        ctx.masked_present(
            ctx.out(self, "dout"),
            f"np.where({cnt} > 0, {store}[{ar}, {head}], 0)")
        ctx.masked_present(
            ctx.out(self, "empty"), f"({cnt} == 0).astype(np.int64)")
        ctx.masked_present(
            ctx.out(self, "full"), f"({cnt} >= {depth}).astype(np.int64)")
        ctx.masked_present(ctx.out(self, "count"), cnt)
        act = ctx.act
        popf = ctx.flag(ctx.inp(self, "pop"))
        pushf = ctx.flag(ctx.inp(self, "push"))
        after = cnt
        if popf != "0":
            t_pop = ctx.tmp()
            after = ctx.tmp()
            guard = f"{act} & ({cnt} > 0)" if popf == "1" \
                else f"{act} & {popf} & ({cnt} > 0)"
            ctx.clock(f"{t_pop} = {guard}")
            ctx.clock(f"{after} = {cnt} - {t_pop}")
            ctx.clock(f"{head} = "
                      f"np.where({t_pop}, ({head} + 1) % {depth}, {head})")
        if pushf != "0":
            t_push = ctx.tmp()
            t_pos = ctx.tmp()
            guard = f"{act} & ({after} < {depth})" if pushf == "1" \
                else f"{act} & {pushf} & ({after} < {depth})"
            ctx.clock(f"{t_push} = {guard}")
            din = ctx.as_array(
                f"({ctx.inp(self, 'din')}) & {(1 << self.width) - 1}")
            ctx.clock(f"{t_pos} = ({head} + {after}) % {depth}")
            ctx.clock(f"{store}[{t_push}, {t_pos}[{t_push}]] = "
                      f"({din})[{t_push}]")
            ctx.clock(f"{cnt} = {after} + {t_push}")
        elif popf != "0":
            ctx.clock(f"{cnt} = {after}")
        return True

    def reset(self) -> None:
        super().reset()
        self._fifo.clear()

    def idle_horizon(self) -> int:
        if self.in_value("pop") & 1 and self._fifo:
            return 0
        if self.in_value("push") & 1 and len(self._fifo) < self.depth:
            return 0
        outs = self.outputs
        if (
            outs["dout"].value == (self._fifo[0] if self._fifo else 0)
            and outs["empty"].value == int(not self._fifo)
            and outs["full"].value == int(len(self._fifo) >= self.depth)
            and outs["count"].value == len(self._fifo)
        ):
            return IDLE_FOREVER
        return 0

    def extra_state(self) -> dict:
        return {"fifo": list(self._fifo)}

    def load_extra_state(self, extra: dict) -> None:
        self._fifo = deque(extra["fifo"])

    def resources(self) -> Resources:
        if self.depth * self.width > 4096:  # BRAM-based beyond ~4 kbit
            return Resources(slices=16, brams=(self.depth * self.width + 18_431)
                             // 18_432)
        luts = self.width * ((self.depth + 15) // 16)
        return Resources(slices=(luts + 1) // 2 + 8)  # storage + pointers


class ROM(CombBlock):
    """Asynchronous-read constant table (distributed ROM)."""

    def __init__(self, name: str, contents: list[int], width: int = 32):
        super().__init__(name)
        if not contents:
            raise ValueError("ROM needs at least one word")
        self.width = width
        self.contents = [wrap(v, width) for v in contents]
        self.add_input("addr")
        self.add_output("data", width)

    def evaluate(self) -> None:
        addr = self.in_value("addr") % len(self.contents)
        self.outputs["data"].value = self.contents[addr]

    def emit(self, ctx) -> bool:
        rom = ctx.bind(self.contents, "rom")
        ctx.evaluate(
            f"{ctx.out(self, 'data')} = "
            f"{rom}[({ctx.inp(self, 'addr')}) % {len(self.contents)}]"
        )
        return True

    def emit_batched(self, ctx) -> bool:
        addr = ctx.inp(self, "addr")
        if ctx.lit(addr) is not None:
            return False  # constant address: keep per-lane dispatch
        lanes = ctx.lane_blocks(self)
        length = len(self.contents)
        # contents snapshot at codegen time (the table is a
        # construction parameter; per-lane tables become a 2-D lookup)
        if all(b.contents == self.contents for b in lanes):
            rom = ctx.bind(np.array(self.contents, dtype=np.int64), "km")
            ctx.evaluate(f"{ctx.out(self, 'data')} = "
                         f"{rom}[({addr}) % {length}]")
        else:
            rom = ctx.bind(np.array([b.contents for b in lanes],
                                    dtype=np.int64), "km")
            ctx.evaluate(f"{ctx.out(self, 'data')} = "
                         f"{rom}[{ctx.arange}, ({addr}) % {length}]")
        return True

    def resources(self) -> Resources:
        luts = self.width * ((len(self.contents) + 15) // 16)
        return Resources(slices=(luts + 1) // 2)


class RAM(SeqBlock):
    """Single-port synchronous RAM (BRAM behaviour: registered read)."""

    def __init__(self, name: str, depth: int, width: int = 32):
        super().__init__(name)
        if depth < 1:
            raise ValueError("RAM depth must be >= 1")
        self.width = width
        self.depth = depth
        self.add_input("addr")
        self.add_input("din")
        self.add_input("we", default=0)
        self.add_output("dout", width)
        self._mem = [0] * depth
        self._read_reg = 0

    def present(self) -> None:
        self.outputs["dout"].value = self._read_reg

    def clock(self) -> None:
        addr = self.in_value("addr") % self.depth
        if self.in_value("we") & 1:
            self._mem[addr] = wrap(self.in_value("din"), self.width)
        self._read_reg = self._mem[addr]

    def emit(self, ctx) -> bool:
        rreg = ctx.scalar_state(self, "_read_reg")
        mem = ctx.fresh(self, "_mem", "mem")
        ctx.present(f"{ctx.out(self, 'dout')} = {rreg}")
        t = ctx.tmp()
        ctx.clock(f"{t} = ({ctx.inp(self, 'addr')}) % {self.depth}")
        we = ctx.inp(self, "we")
        din = f"({ctx.inp(self, 'din')}) & {(1 << self.width) - 1}"
        wlit = ctx.lit(we)
        if wlit is None:
            ctx.clock(f"if ({we}) & 1: {mem}[{t}] = {din}")
        elif wlit & 1:
            ctx.clock(f"{mem}[{t}] = {din}")
        ctx.clock(f"{rreg} = {mem}[{t}]")
        return True

    def emit_batched(self, ctx) -> bool:
        lanes = ctx.lane_blocks(self)
        n = ctx.n
        mem = ctx.state(
            lambda: np.array([b._mem for b in lanes], dtype=np.int64), "rm")
        rreg = ctx.state(
            lambda: np.fromiter((b._read_reg for b in lanes), np.int64, n),
            "rr")
        ctx.masked_present(ctx.out(self, "dout"), rreg)
        act = ctx.act
        t = ctx.tmp()
        addr = ctx.as_array(f"({ctx.inp(self, 'addr')}) % {self.depth}")
        ctx.clock(f"{t} = {addr}")
        wef = ctx.flag(ctx.inp(self, "we"))
        if wef != "0":
            wm = ctx.tmp()
            ctx.clock(f"{wm} = {act}" if wef == "1"
                      else f"{wm} = {act} & {wef}")
            din = ctx.as_array(
                f"({ctx.inp(self, 'din')}) & {(1 << self.width) - 1}")
            ctx.clock(f"{mem}[{wm}, {t}[{wm}]] = ({din})[{wm}]")
        ctx.clock(f"{rreg} = "
                  f"np.where({act}, {mem}[{ctx.arange}, {t}], {rreg})")
        return True

    def reset(self) -> None:
        super().reset()
        self._mem = [0] * self.depth
        self._read_reg = 0

    def idle_horizon(self) -> int:
        if self.in_value("we") & 1:
            return 0
        if (
            self._read_reg == self._mem[self.in_value("addr") % self.depth]
            and self.outputs["dout"].value == self._read_reg
        ):
            return IDLE_FOREVER
        return 0

    def extra_state(self) -> dict:
        return {"mem": list(self._mem), "read_reg": self._read_reg}

    def load_extra_state(self, extra: dict) -> None:
        self._mem = list(extra["mem"])
        self._read_reg = extra["read_reg"]

    def resources(self) -> Resources:
        bits = self.depth * self.width
        if bits > 4096:
            return Resources(brams=(bits + 18_431) // 18_432)
        return Resources(slices=(bits // 16 + 1) // 2 + 4)
