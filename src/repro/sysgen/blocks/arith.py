"""Arithmetic blocks.

All data ports carry raw two's-complement bit patterns; each block
declares the width it interprets.  Optional ``latency`` adds output
pipeline registers, exactly like the latency option on System Generator
arithmetic blocks (the embedded-multiplier block defaults to 3 pipeline
stages — the source of the 3-cycle multiply the paper calls out).
"""

from __future__ import annotations

from collections import deque

from repro.fixedpoint import FixedFormat, Overflow, Rounding
from repro.resources.types import Resources
from repro.sysgen.batched import guarded_update_batched, np
from repro.sysgen.block import (
    IDLE_FOREVER,
    Block,
    slices_for_bits,
    to_signed,
    wrap,
)
from repro.sysgen.compiled import guarded_update, signed_expr


class _PipelinedBlock(Block):
    """Shared machinery: ``_compute() -> dict`` evaluated either
    combinationally (latency 0) or through a pipeline of ``latency``
    registers."""

    def __init__(self, name: str, latency: int = 0):
        super().__init__(name)
        if latency < 0:
            raise ValueError("latency must be >= 0")
        self.latency = latency
        self.sequential = latency > 0
        self._pipe: deque[dict[str, int]] = deque({} for _ in range(latency))

    def _compute(self) -> dict[str, int]:  # pragma: no cover - abstract
        raise NotImplementedError

    def _apply(self, values: dict[str, int]) -> None:
        for key, value in values.items():
            self.outputs[key].value = value

    def evaluate(self) -> None:
        if not self.sequential:
            self._apply(self._compute())

    def present(self) -> None:
        if self.sequential:
            self._apply(self._pipe.popleft())

    def clock(self) -> None:
        if self.sequential:
            self._pipe.append(self._compute())

    def reset(self) -> None:
        super().reset()
        if self.sequential:
            self._pipe = deque({} for _ in range(self.latency))

    def idle_horizon(self) -> int:
        if not self.sequential:
            return IDLE_FOREVER
        entering = self._compute()
        if any(stage != entering for stage in self._pipe):
            return 0
        if any(self.outputs[k].value != v for k, v in entering.items()):
            return 0
        return IDLE_FOREVER

    def _emit_compute(self, ctx) -> str | None:
        """Expression computing this block's (single) output value, or
        None to fall back to a bound ``_compute()`` call."""
        return None

    #: scalar ``_emit_compute`` source is pure elementwise arithmetic
    #: (no python branching, no int64 overflow risk), so it doubles as
    #: the vectorized compute over (N,) arrays
    batch_safe_compute = False

    def _emit_compute_batched(self, ctx) -> str | None:
        """Vectorized counterpart of :meth:`_emit_compute` over (N,)
        int64 arrays, or None to fall back to per-lane dispatch."""
        if self.batch_safe_compute:
            return self._emit_compute(ctx)
        return None

    def emit_batched(self, ctx) -> bool:
        if all(p.source is None for p in self.inputs.values()):
            # all-literal inputs would collapse the expression to a
            # python scalar; per-lane dispatch keeps the array contract
            return False
        expr = self._emit_compute_batched(ctx)
        if expr is None:
            return False
        key = next(iter(self.outputs))
        out = ctx.out(self, key)
        if not self.sequential:
            ctx.evaluate(f"{out} = {expr}")
            return True
        # latency-deep pipeline: per-stage (N,) value arrays plus a
        # per-stage validity mask (the masked analogue of the deque of
        # possibly-empty dicts) — inactive lanes neither pop nor push.
        lanes = ctx.lane_blocks(self)
        n = ctx.n
        vals, oks = [], []
        for k in range(self.latency):
            vals.append(ctx.state(
                lambda k=k: np.fromiter(
                    (b._pipe[k].get(key, 0) for b in lanes), np.int64, n),
                "pv"))
            oks.append(ctx.state(
                lambda k=k: np.fromiter(
                    (key in b._pipe[k] for b in lanes), np.bool_, n),
                "po"))
        act = ctx.act
        ctx.present(
            f"{out} = np.where({act} & {oks[0]}, {vals[0]}, {out})")
        for k in range(self.latency - 1):
            ctx.clock(f"{vals[k]} = "
                      f"np.where({act}, {vals[k + 1]}, {vals[k]})")
            ctx.clock(f"{oks[k]} = np.where({act}, {oks[k + 1]}, {oks[k]})")
        last = self.latency - 1
        ctx.clock(f"{vals[last]} = np.where({act}, {expr}, {vals[last]})")
        ctx.clock(f"{oks[last]} = {oks[last]} | {act}")
        return True

    def emit(self, ctx) -> bool:
        key = next(iter(self.outputs))
        out = ctx.out(self, key)
        expr = self._emit_compute(ctx)
        if expr is None:
            # Dispatch to _compute() with the feeding ports synced —
            # still avoids the evaluate/present/clock method overhead.
            ctx.flush_inputs(self, ctx.clock if self.sequential
                             else ctx.evaluate)
            compute = ctx.tmp()
            ctx.entry(f"{compute} = {ctx.bind(self)}._compute")
            if not self.sequential:
                ctx.evaluate(f"{out} = {compute}()[{key!r}]")
                return True
            stage = f"{compute}()"
        else:
            if not self.sequential:
                ctx.evaluate(f"{out} = {expr}")
                return True
            stage = f"{{{key!r}: {expr}}}"
        pipe = ctx.fresh(self, "_pipe", "pq")
        pop = ctx.tmp()
        app = ctx.tmp()
        ctx.entry(f"{pop} = {pipe}.popleft")
        ctx.entry(f"{app} = {pipe}.append")
        t = ctx.tmp()
        # present() applies the (possibly empty) dict leaving the pipe;
        # an empty stage leaves the output untouched, as _apply does.
        ctx.present(f"{t} = {pop}()")
        ctx.present(f"if {t}: {out} = {t}[{key!r}]")
        ctx.clock(f"{app}({stage})")
        return True

    def extra_state(self) -> dict:
        return {"pipe": [dict(stage) for stage in self._pipe]}

    def load_extra_state(self, extra: dict) -> None:
        if self.sequential:
            self._pipe = deque(dict(stage) for stage in extra["pipe"])


class Add(_PipelinedBlock):
    """``s = a + b`` (wrap) over ``width`` bits."""

    batch_safe_compute = True

    def __init__(self, name: str, width: int = 32, latency: int = 0):
        super().__init__(name, latency)
        self.width = width
        self.add_input("a")
        self.add_input("b")
        self.add_output("s", width)

    def _compute(self) -> dict[str, int]:
        return {"s": wrap(self.in_value("a") + self.in_value("b"), self.width)}

    def _emit_compute(self, ctx) -> str:
        return (f"(({ctx.inp(self, 'a')}) + ({ctx.inp(self, 'b')}))"
                f" & {(1 << self.width) - 1}")

    def resources(self) -> Resources:
        regs = self.latency * slices_for_bits(self.width)
        return Resources(slices=slices_for_bits(self.width) + regs)


class Sub(_PipelinedBlock):
    """``d = a - b`` (wrap)."""

    batch_safe_compute = True

    def __init__(self, name: str, width: int = 32, latency: int = 0):
        super().__init__(name, latency)
        self.width = width
        self.add_input("a")
        self.add_input("b")
        self.add_output("d", width)

    def _compute(self) -> dict[str, int]:
        return {"d": wrap(self.in_value("a") - self.in_value("b"), self.width)}

    def _emit_compute(self, ctx) -> str:
        return (f"(({ctx.inp(self, 'a')}) - ({ctx.inp(self, 'b')}))"
                f" & {(1 << self.width) - 1}")

    def resources(self) -> Resources:
        regs = self.latency * slices_for_bits(self.width)
        return Resources(slices=slices_for_bits(self.width) + regs)


class AddSub(_PipelinedBlock):
    """``s = sub ? a - b : a + b`` — the System Generator AddSub block,
    used by the CORDIC PE where the rotation direction selects the
    operation each cycle."""

    def __init__(self, name: str, width: int = 32, latency: int = 0):
        super().__init__(name, latency)
        self.width = width
        self.add_input("a")
        self.add_input("b")
        self.add_input("sub")
        self.add_output("s", width)

    def _compute(self) -> dict[str, int]:
        a = self.in_value("a")
        b = self.in_value("b")
        res = a - b if self.in_value("sub") & 1 else a + b
        return {"s": wrap(res, self.width)}

    def _emit_compute(self, ctx) -> str:
        a = ctx.inp(self, "a")
        b = ctx.inp(self, "b")
        sub = ctx.inp(self, "sub")
        m = (1 << self.width) - 1
        slit = ctx.lit(sub)
        if slit is not None:
            op = "-" if slit & 1 else "+"
            return f"(({a}) {op} ({b})) & {m}"
        return (f"((({a}) - ({b})) if ({sub}) & 1"
                f" else (({a}) + ({b}))) & {m}")

    def _emit_compute_batched(self, ctx) -> str:
        if ctx.lit(ctx.inp(self, "sub")) is not None:
            return self._emit_compute(ctx)  # pruned to pure add/sub
        a = ctx.inp(self, "a")
        b = ctx.inp(self, "b")
        sub = ctx.inp(self, "sub")
        m = (1 << self.width) - 1
        return (f"np.where(({sub}) & 1, (({a}) - ({b})) & {m}, "
                f"(({a}) + ({b})) & {m})")

    def resources(self) -> Resources:
        # add/sub sharing costs one extra LUT level: ~W LUTs + mode.
        regs = self.latency * slices_for_bits(self.width)
        return Resources(slices=slices_for_bits(self.width) + 1 + regs)


class Mult(_PipelinedBlock):
    """Signed multiplier.

    Widths up to 18×18 map onto one embedded MULT18X18; wider products
    decompose into multiple embedded multipliers plus adder slices
    (matching how ISE implements them on Virtex-II).
    """

    def __init__(
        self,
        name: str,
        width_a: int = 18,
        width_b: int = 18,
        out_width: int | None = None,
        latency: int = 3,
        use_embedded: bool = True,
    ):
        super().__init__(name, latency)
        self.width_a = width_a
        self.width_b = width_b
        self.out_width = out_width or (width_a + width_b)
        self.use_embedded = use_embedded
        self.add_input("a")
        self.add_input("b")
        self.add_output("p", self.out_width)

    def _compute(self) -> dict[str, int]:
        a = to_signed(self.in_value("a"), self.width_a)
        b = to_signed(self.in_value("b"), self.width_b)
        return {"p": wrap(a * b, self.out_width)}

    def _emit_compute(self, ctx) -> str:
        a = signed_expr(ctx.inp(self, "a"), self.width_a)
        b = signed_expr(ctx.inp(self, "b"), self.width_b)
        return f"({a} * {b}) & {(1 << self.out_width) - 1}"

    def _emit_compute_batched(self, ctx) -> str | None:
        # the signed product must fit an int64 lane
        if self.width_a + self.width_b > 62:
            return None
        return self._emit_compute(ctx)

    def resources(self) -> Resources:
        regs = self.latency * slices_for_bits(self.out_width)
        if not self.use_embedded:
            # slice-based multiplier: ~W*W/2 LUTs -> W*W/4 slices
            area = (self.width_a * self.width_b + 3) // 4
            return Resources(slices=area + regs)
        blocks_a = (self.width_a + 17) // 18
        blocks_b = (self.width_b + 17) // 18
        n_mult = blocks_a * blocks_b
        glue = 0 if n_mult == 1 else slices_for_bits(self.out_width) * (n_mult - 1)
        return Resources(slices=glue + regs, mult18=n_mult)


class Negate(_PipelinedBlock):
    batch_safe_compute = True

    def __init__(self, name: str, width: int = 32, latency: int = 0):
        super().__init__(name, latency)
        self.width = width
        self.add_input("a")
        self.add_output("n", width)

    def _compute(self) -> dict[str, int]:
        return {"n": wrap(-self.in_value("a"), self.width)}

    def _emit_compute(self, ctx) -> str:
        return f"(-({ctx.inp(self, 'a')})) & {(1 << self.width) - 1}"

    def resources(self) -> Resources:
        return Resources(slices=slices_for_bits(self.width)
                         + self.latency * slices_for_bits(self.width))


class Shift(_PipelinedBlock):
    """Constant shift: ``out = a << n`` or ``a >> n`` (arithmetic or
    logical).  Constant shifts are free in fabric (wiring), so the
    resource cost is only the optional output registers."""

    def __init__(
        self,
        name: str,
        width: int = 32,
        amount: int = 1,
        direction: str = "right",
        arithmetic: bool = True,
        latency: int = 0,
    ):
        super().__init__(name, latency)
        if direction not in ("left", "right"):
            raise ValueError("direction must be 'left' or 'right'")
        self.width = width
        self.amount = amount
        self.direction = direction
        self.arithmetic = arithmetic
        self.add_input("a")
        self.add_output("s", width)

    def _compute(self) -> dict[str, int]:
        a = self.in_value("a")
        if self.direction == "left":
            res = a << self.amount
        elif self.arithmetic:
            res = to_signed(a, self.width) >> self.amount
        else:
            res = (a & ((1 << self.width) - 1)) >> self.amount
        return {"s": wrap(res, self.width)}

    def _emit_compute(self, ctx) -> str:
        a = ctx.inp(self, "a")
        m = (1 << self.width) - 1
        if self.direction == "left":
            return f"(({a}) << {self.amount}) & {m}"
        if self.arithmetic:
            return f"({signed_expr(a, self.width)} >> {self.amount}) & {m}"
        return f"((({a}) & {m}) >> {self.amount})"

    def _emit_compute_batched(self, ctx) -> str | None:
        # int64 lanes: pre-mask so shifted intermediates never exceed
        # ``width`` bits, and clamp shift counts below the word size
        # (python bigints make the scalar forms safe; numpy does not).
        a = ctx.inp(self, "a")
        m = (1 << self.width) - 1
        if self.direction == "left":
            if self.amount >= self.width:
                return f"(({a}) & 0)"
            keep = m >> self.amount
            return f"((({a}) & {keep}) << {self.amount})"
        if self.arithmetic:
            amt = min(self.amount, self.width)  # sign fill is complete
            return f"({signed_expr(a, self.width)} >> {amt}) & {m}"
        if self.amount >= self.width:
            return f"(({a}) & 0)"
        return f"((({a}) & {m}) >> {self.amount})"

    def resources(self) -> Resources:
        return Resources(slices=self.latency * slices_for_bits(self.width))


class Accumulator(Block):
    """Registered accumulator: ``q += d`` when ``en`` (with ``rst``)."""

    sequential = True

    def __init__(self, name: str, width: int = 32):
        super().__init__(name)
        self.width = width
        self.add_input("d")
        self.add_input("en", default=1)
        self.add_input("rst", default=0)
        self.add_output("q", width)
        self._state = 0

    def present(self) -> None:
        self.outputs["q"].value = self._state

    def clock(self) -> None:
        if self.in_value("rst") & 1:
            self._state = 0
        elif self.in_value("en") & 1:
            self._state = wrap(self._state + self.in_value("d"), self.width)

    def emit(self, ctx) -> bool:
        st = ctx.scalar_state(self, "_state")
        ctx.present(f"{ctx.out(self, 'q')} = {st}")
        upd = guarded_update(
            ctx.inp(self, "rst"), ctx.inp(self, "en"),
            f"{st} = 0",
            f"{st} = ({st} + ({ctx.inp(self, 'd')}))"
            f" & {(1 << self.width) - 1}",
        )
        if upd:
            ctx.clock(upd)
        return True

    def emit_batched(self, ctx) -> bool:
        lanes = ctx.lane_blocks(self)
        st = ctx.state(
            lambda: np.fromiter((b._state for b in lanes), np.int64, ctx.n),
            "ac")
        ctx.masked_present(ctx.out(self, "q"), st)
        upd = guarded_update_batched(
            ctx, ctx.inp(self, "rst"), ctx.inp(self, "en"),
            "0",
            f"({st} + ({ctx.inp(self, 'd')})) & {(1 << self.width) - 1}",
            st,
        )
        if upd:
            ctx.clock(f"{st} = {upd}")
        return True

    def reset(self) -> None:
        super().reset()
        self._state = 0

    def idle_horizon(self) -> int:
        if self.in_value("rst") & 1:
            next_state = 0
        elif self.in_value("en") & 1:
            next_state = wrap(self._state + self.in_value("d"), self.width)
        else:
            next_state = self._state
        if next_state == self._state and self.outputs["q"].value == self._state:
            return IDLE_FOREVER
        return 0

    def extra_state(self) -> dict:
        return {"state": self._state}

    def load_extra_state(self, extra: dict) -> None:
        self._state = extra["state"]

    def resources(self) -> Resources:
        # adder + register
        return Resources(slices=2 * slices_for_bits(self.width))


class Convert(_PipelinedBlock):
    """Fixed-point format conversion (the System Generator Convert
    block): requantize from ``(in_width, in_frac)`` to ``(out_width,
    out_frac)`` with selectable rounding and overflow behaviour."""

    def __init__(
        self,
        name: str,
        in_width: int,
        in_frac: int,
        out_width: int,
        out_frac: int,
        signed: bool = True,
        rounding: Rounding = Rounding.TRUNCATE,
        overflow: Overflow = Overflow.WRAP,
        latency: int = 0,
    ):
        super().__init__(name, latency)
        self.in_fmt = FixedFormat(in_width, in_frac, signed)
        self.out_fmt = FixedFormat(out_width, out_frac, signed)
        self.rounding = rounding
        self.overflow = overflow
        self.add_input("in")
        self.add_output("out", out_width)

    def _compute(self) -> dict[str, int]:
        value = self.in_fmt.from_raw(self.in_value("in"))
        out = value.cast(self.out_fmt, self.rounding, self.overflow)
        return {"out": out.bits()}

    def resources(self) -> Resources:
        extra = 0
        if self.rounding is Rounding.ROUND:
            extra += slices_for_bits(self.out_fmt.word_bits)  # round adder
        if self.overflow is Overflow.SATURATE:
            extra += slices_for_bits(self.out_fmt.word_bits) // 2 + 1
        return Resources(slices=extra + self.latency *
                         slices_for_bits(self.out_fmt.word_bits))
