"""Combinational selection, comparison and bit-manipulation blocks."""

from __future__ import annotations

from repro.resources.types import Resources
from repro.sysgen.block import CombBlock, slices_for_bits, to_signed, wrap
from repro.sysgen.compiled import signed_expr

_REL_OPS = ("eq", "ne", "lt", "le", "gt", "ge")
_REL_SYMS = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
             "gt": ">", "ge": ">="}
_LOGIC_OPS = ("and", "or", "xor", "nand", "nor", "xnor")
_LOGIC_SYMS = {"and": "&", "nand": "&", "or": "|", "nor": "|",
               "xor": "^", "xnor": "^"}


class Mux(CombBlock):
    """``n``-way multiplexer: ``out = d<sel>``."""

    def __init__(self, name: str, width: int = 32, n: int = 2):
        super().__init__(name)
        if n < 2:
            raise ValueError("mux needs at least 2 inputs")
        self.width = width
        self.n = n
        self.add_input("sel")
        for k in range(n):
            self.add_input(f"d{k}")
        self.add_output("out", width)

    def evaluate(self) -> None:
        sel = self.in_value("sel") % self.n
        self.outputs["out"].value = wrap(self.in_value(f"d{sel}"), self.width)

    def emit(self, ctx) -> bool:
        out = ctx.out(self, "out")
        sel = ctx.inp(self, "sel")
        m = (1 << self.width) - 1
        data = [ctx.inp(self, f"d{k}") for k in range(self.n)]
        slit = ctx.lit(sel)
        if slit is not None:
            ctx.evaluate(f"{out} = ({data[slit % self.n]}) & {m}")
        elif self.n == 2:
            # sel % 2 == sel & 1 for every python int
            ctx.evaluate(f"{out} = (({data[1]}) if ({sel}) & 1"
                         f" else ({data[0]})) & {m}")
        else:
            tup = ", ".join(data)
            # x % 2**k == x & (2**k - 1) for every python int
            idx = (f"({sel}) & {self.n - 1}"
                   if self.n & (self.n - 1) == 0 else f"({sel}) % {self.n}")
            ctx.evaluate(f"{out} = ({tup})[{idx}] & {m}")
        return True

    def emit_batched(self, ctx) -> bool:
        out = ctx.out(self, "out")
        sel = ctx.inp(self, "sel")
        m = (1 << self.width) - 1
        data = [ctx.inp(self, f"d{k}") for k in range(self.n)]
        slit = ctx.lit(sel)
        if slit is not None:
            d = data[slit % self.n]
            if ctx.lit(d) is not None:
                return False  # constant select of a constant input
            ctx.evaluate(f"{out} = ({d}) & {m}")
            return True
        if self.n == 2:
            ctx.evaluate(f"{out} = np.where(({sel}) & 1, "
                         f"({data[1]}), ({data[0]})) & {m}")
            return True
        idx = ctx.tmp()
        if self.n & (self.n - 1) == 0:
            ctx.evaluate(f"{idx} = ({sel}) & {self.n - 1}")
        else:
            ctx.evaluate(f"{idx} = ({sel}) % {self.n}")
        acc = f"({data[0]})"
        for k in range(1, self.n):
            acc = f"np.where({idx} == {k}, ({data[k]}), {acc})"
        ctx.evaluate(f"{out} = ({acc}) & {m}")
        return True

    def resources(self) -> Resources:
        # one LUT per output bit per pair of inputs
        return Resources(slices=slices_for_bits(self.width) * (self.n - 1))


class Relational(CombBlock):
    """Comparator producing a 1-bit flag."""

    def __init__(self, name: str, width: int = 32, op: str = "lt",
                 signed: bool = True):
        super().__init__(name)
        if op not in _REL_OPS:
            raise ValueError(f"op must be one of {_REL_OPS}")
        self.width = width
        self.op = op
        self.signed = signed
        self.add_input("a")
        self.add_input("b")
        self.add_output("out", 1)

    def evaluate(self) -> None:
        a = self.in_value("a")
        b = self.in_value("b")
        if self.signed:
            a = to_signed(a, self.width)
            b = to_signed(b, self.width)
        else:
            a = wrap(a, self.width)
            b = wrap(b, self.width)
        result = {
            "eq": a == b,
            "ne": a != b,
            "lt": a < b,
            "le": a <= b,
            "gt": a > b,
            "ge": a >= b,
        }[self.op]
        self.outputs["out"].value = int(result)

    def emit(self, ctx) -> bool:
        if self.signed:
            a = signed_expr(ctx.inp(self, "a"), self.width)
            b = signed_expr(ctx.inp(self, "b"), self.width)
        else:
            m = (1 << self.width) - 1
            a = f"(({ctx.inp(self, 'a')}) & {m})"
            b = f"(({ctx.inp(self, 'b')}) & {m})"
        sym = _REL_SYMS[self.op]
        ctx.evaluate(f"{ctx.out(self, 'out')} = 1 if {a} {sym} {b} else 0")
        return True

    def emit_batched(self, ctx) -> bool:
        if all(p.source is None for p in self.inputs.values()):
            return False  # both constant: result would be a scalar
        if self.signed:
            a = signed_expr(ctx.inp(self, "a"), self.width)
            b = signed_expr(ctx.inp(self, "b"), self.width)
        else:
            m = (1 << self.width) - 1
            a = f"(({ctx.inp(self, 'a')}) & {m})"
            b = f"(({ctx.inp(self, 'b')}) & {m})"
        sym = _REL_SYMS[self.op]
        ctx.evaluate(
            f"{ctx.out(self, 'out')} = ({a} {sym} {b}).astype(np.int64)")
        return True

    def resources(self) -> Resources:
        return Resources(slices=slices_for_bits(self.width))


class Logical(CombBlock):
    """Bitwise logic over ``n`` operands of ``width`` bits."""

    def __init__(self, name: str, width: int = 32, op: str = "and", n: int = 2):
        super().__init__(name)
        if op not in _LOGIC_OPS:
            raise ValueError(f"op must be one of {_LOGIC_OPS}")
        if n < 2:
            raise ValueError("logical block needs at least 2 inputs")
        self.width = width
        self.op = op
        self.n = n
        for k in range(n):
            self.add_input(f"d{k}")
        self.add_output("out", width)

    def evaluate(self) -> None:
        values = [self.in_value(f"d{k}") for k in range(self.n)]
        acc = values[0]
        base = self.op.removeprefix("n") if self.op in ("nand", "nor") else (
            "xor" if self.op == "xnor" else self.op
        )
        for v in values[1:]:
            if base == "and":
                acc &= v
            elif base == "or":
                acc |= v
            else:
                acc ^= v
        if self.op in ("nand", "nor", "xnor"):
            acc = ~acc
        self.outputs["out"].value = wrap(acc, self.width)

    def emit(self, ctx) -> bool:
        sym = _LOGIC_SYMS[self.op]
        expr = f" {sym} ".join(
            f"({ctx.inp(self, f'd{k}')})" for k in range(self.n)
        )
        if self.op in ("nand", "nor", "xnor"):
            expr = f"~({expr})"
        m = (1 << self.width) - 1
        ctx.evaluate(f"{ctx.out(self, 'out')} = ({expr}) & {m}")
        return True

    def emit_batched(self, ctx) -> bool:
        # the scalar source is pure bitwise arithmetic — elementwise
        # safe on (N,) int64 arrays as long as one operand is an array
        if all(p.source is None for p in self.inputs.values()):
            return False
        return self.emit(ctx)

    def resources(self) -> Resources:
        return Resources(slices=slices_for_bits(self.width) * (self.n - 1))


class Inverter(CombBlock):
    """Bitwise NOT."""

    def __init__(self, name: str, width: int = 1):
        super().__init__(name)
        self.width = width
        self.add_input("a")
        self.add_output("out", width)

    def evaluate(self) -> None:
        self.outputs["out"].value = wrap(~self.in_value("a"), self.width)

    def emit(self, ctx) -> bool:
        m = (1 << self.width) - 1
        ctx.evaluate(
            f"{ctx.out(self, 'out')} = (~({ctx.inp(self, 'a')})) & {m}"
        )
        return True

    def emit_batched(self, ctx) -> bool:
        if self.inputs["a"].source is None:
            return False
        return self.emit(ctx)

    def resources(self) -> Resources:
        return Resources(slices=slices_for_bits(self.width))


class Slice(CombBlock):
    """Extract bits ``[msb:lsb]`` (inclusive) from the input."""

    def __init__(self, name: str, msb: int, lsb: int = 0):
        super().__init__(name)
        if msb < lsb or lsb < 0:
            # ModelError at construction: a reversed range would
            # otherwise surface as a zero/garbage mask at evaluate time
            # with no hint of which block is wrong.
            from repro.sysgen.model import ModelError
            raise ModelError(
                f"slice {name!r}: require msb >= lsb >= 0, "
                f"got [{msb}:{lsb}]"
            )
        self.msb = msb
        self.lsb = lsb
        self.add_input("a")
        self.add_output("out", msb - lsb + 1)

    def evaluate(self) -> None:
        width = self.msb - self.lsb + 1
        self.outputs["out"].value = (self.in_value("a") >> self.lsb) & (
            (1 << width) - 1
        )

    def emit(self, ctx) -> bool:
        m = (1 << (self.msb - self.lsb + 1)) - 1
        a = ctx.inp(self, "a")
        shifted = f"({a}) >> {self.lsb}" if self.lsb else f"({a})"
        ctx.evaluate(f"{ctx.out(self, 'out')} = ({shifted}) & {m}")
        return True

    def emit_batched(self, ctx) -> bool:
        if self.inputs["a"].source is None:
            return False
        return self.emit(ctx)

    def resources(self) -> Resources:
        return Resources()  # pure wiring


class Concat(CombBlock):
    """Concatenate inputs, ``d0`` becoming the most significant field."""

    def __init__(self, name: str, widths: list[int]):
        super().__init__(name)
        if not widths:
            raise ValueError("concat needs at least one field")
        self.widths = list(widths)
        for k in range(len(widths)):
            self.add_input(f"d{k}")
        self.add_output("out", sum(widths))

    def evaluate(self) -> None:
        acc = 0
        for k, width in enumerate(self.widths):
            acc = (acc << width) | wrap(self.in_value(f"d{k}"), width)
        self.outputs["out"].value = acc

    def emit(self, ctx) -> bool:
        parts = []
        shift = sum(self.widths)
        for k, width in enumerate(self.widths):
            shift -= width
            field = f"(({ctx.inp(self, f'd{k}')}) & {(1 << width) - 1})"
            parts.append(f"({field} << {shift})" if shift else field)
        ctx.evaluate(f"{ctx.out(self, 'out')} = {' | '.join(parts)}")
        return True

    def emit_batched(self, ctx) -> bool:
        if all(p.source is None for p in self.inputs.values()):
            return False
        return self.emit(ctx)

    def resources(self) -> Resources:
        return Resources()  # pure wiring
