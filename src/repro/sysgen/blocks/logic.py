"""Combinational selection, comparison and bit-manipulation blocks."""

from __future__ import annotations

from repro.resources.types import Resources
from repro.sysgen.block import CombBlock, slices_for_bits, to_signed, wrap

_REL_OPS = ("eq", "ne", "lt", "le", "gt", "ge")
_LOGIC_OPS = ("and", "or", "xor", "nand", "nor", "xnor")


class Mux(CombBlock):
    """``n``-way multiplexer: ``out = d<sel>``."""

    def __init__(self, name: str, width: int = 32, n: int = 2):
        super().__init__(name)
        if n < 2:
            raise ValueError("mux needs at least 2 inputs")
        self.width = width
        self.n = n
        self.add_input("sel")
        for k in range(n):
            self.add_input(f"d{k}")
        self.add_output("out", width)

    def evaluate(self) -> None:
        sel = self.in_value("sel") % self.n
        self.outputs["out"].value = wrap(self.in_value(f"d{sel}"), self.width)

    def resources(self) -> Resources:
        # one LUT per output bit per pair of inputs
        return Resources(slices=slices_for_bits(self.width) * (self.n - 1))


class Relational(CombBlock):
    """Comparator producing a 1-bit flag."""

    def __init__(self, name: str, width: int = 32, op: str = "lt",
                 signed: bool = True):
        super().__init__(name)
        if op not in _REL_OPS:
            raise ValueError(f"op must be one of {_REL_OPS}")
        self.width = width
        self.op = op
        self.signed = signed
        self.add_input("a")
        self.add_input("b")
        self.add_output("out", 1)

    def evaluate(self) -> None:
        a = self.in_value("a")
        b = self.in_value("b")
        if self.signed:
            a = to_signed(a, self.width)
            b = to_signed(b, self.width)
        else:
            a = wrap(a, self.width)
            b = wrap(b, self.width)
        result = {
            "eq": a == b,
            "ne": a != b,
            "lt": a < b,
            "le": a <= b,
            "gt": a > b,
            "ge": a >= b,
        }[self.op]
        self.outputs["out"].value = int(result)

    def resources(self) -> Resources:
        return Resources(slices=slices_for_bits(self.width))


class Logical(CombBlock):
    """Bitwise logic over ``n`` operands of ``width`` bits."""

    def __init__(self, name: str, width: int = 32, op: str = "and", n: int = 2):
        super().__init__(name)
        if op not in _LOGIC_OPS:
            raise ValueError(f"op must be one of {_LOGIC_OPS}")
        if n < 2:
            raise ValueError("logical block needs at least 2 inputs")
        self.width = width
        self.op = op
        self.n = n
        for k in range(n):
            self.add_input(f"d{k}")
        self.add_output("out", width)

    def evaluate(self) -> None:
        values = [self.in_value(f"d{k}") for k in range(self.n)]
        acc = values[0]
        base = self.op.removeprefix("n") if self.op in ("nand", "nor") else (
            "xor" if self.op == "xnor" else self.op
        )
        for v in values[1:]:
            if base == "and":
                acc &= v
            elif base == "or":
                acc |= v
            else:
                acc ^= v
        if self.op in ("nand", "nor", "xnor"):
            acc = ~acc
        self.outputs["out"].value = wrap(acc, self.width)

    def resources(self) -> Resources:
        return Resources(slices=slices_for_bits(self.width) * (self.n - 1))


class Inverter(CombBlock):
    """Bitwise NOT."""

    def __init__(self, name: str, width: int = 1):
        super().__init__(name)
        self.width = width
        self.add_input("a")
        self.add_output("out", width)

    def evaluate(self) -> None:
        self.outputs["out"].value = wrap(~self.in_value("a"), self.width)

    def resources(self) -> Resources:
        return Resources(slices=slices_for_bits(self.width))


class Slice(CombBlock):
    """Extract bits ``[msb:lsb]`` (inclusive) from the input."""

    def __init__(self, name: str, msb: int, lsb: int = 0):
        super().__init__(name)
        if msb < lsb or lsb < 0:
            raise ValueError("require msb >= lsb >= 0")
        self.msb = msb
        self.lsb = lsb
        self.add_input("a")
        self.add_output("out", msb - lsb + 1)

    def evaluate(self) -> None:
        width = self.msb - self.lsb + 1
        self.outputs["out"].value = (self.in_value("a") >> self.lsb) & (
            (1 << width) - 1
        )

    def resources(self) -> Resources:
        return Resources()  # pure wiring


class Concat(CombBlock):
    """Concatenate inputs, ``d0`` becoming the most significant field."""

    def __init__(self, name: str, widths: list[int]):
        super().__init__(name)
        if not widths:
            raise ValueError("concat needs at least one field")
        self.widths = list(widths)
        for k in range(len(widths)):
            self.add_input(f"d{k}")
        self.add_output("out", sum(widths))

    def evaluate(self) -> None:
        acc = 0
        for k, width in enumerate(self.widths):
            acc = (acc << width) | wrap(self.in_value(f"d{k}"), width)
        self.outputs["out"].value = acc

    def resources(self) -> Resources:
        return Resources()  # pure wiring
