"""Block base classes.

Two evaluation disciplines:

* :class:`CombBlock` — combinational: ``evaluate()`` computes outputs
  from current input values; scheduled in topological order each cycle.
* :class:`SeqBlock` — sequential: ``present()`` drives outputs from the
  registered state at the start of a cycle, ``clock()`` captures inputs
  at the active edge.  Sequential blocks break combinational cycles
  (feedback must pass through at least one register, as in hardware).

Every block reports estimated FPGA resources via :meth:`Block.resources`
(slice counts use the Virtex-II fabric rule of thumb: one slice holds
two 4-input LUTs and two flip-flops, so a W-bit adder or register costs
about ``ceil(W/2)`` slices).
"""

from __future__ import annotations

from repro.resources.types import Resources
from repro.sysgen.ports import InputPort, OutputPort, PortRef

#: Sentinel horizon for "this block can be skipped indefinitely" — the
#: block is at a fixed point: re-running present/evaluate/clock with the
#: current inputs would change neither its outputs nor its state.
IDLE_FOREVER = 1 << 62


def slices_for_bits(bits: int) -> int:
    """Virtex-II slices for ``bits`` LUT/FF pairs (2 per slice)."""
    return (bits + 1) // 2


class Block:
    """Base class: named ports + resource model."""

    sequential = False

    def __init__(self, name: str):
        self.name = name
        self.inputs: dict[str, InputPort] = {}
        self.outputs: dict[str, OutputPort] = {}
        self.model = None  # set by Model.add

    # -- port construction ------------------------------------------------
    def add_input(self, name: str, default: int = 0) -> InputPort:
        if name in self.inputs or name in self.outputs:
            raise ValueError(f"duplicate port {name!r} on block {self.name!r}")
        port = InputPort(self, name, default)
        self.inputs[name] = port
        return port

    def add_output(self, name: str, width: int = 32) -> OutputPort:
        if name in self.inputs or name in self.outputs:
            raise ValueError(f"duplicate port {name!r} on block {self.name!r}")
        port = OutputPort(self, name, width)
        self.outputs[name] = port
        return port

    # -- port access --------------------------------------------------------
    def i(self, name: str) -> PortRef:
        """Reference to input port ``name`` (for ``Model.connect``)."""
        return PortRef(self.inputs[name])

    def o(self, name: str) -> PortRef:
        """Reference to output port ``name``."""
        return PortRef(self.outputs[name])

    def in_value(self, name: str) -> int:
        return self.inputs[name].value

    def out_value(self, name: str) -> int:
        return self.outputs[name].value

    # -- simulation hooks --------------------------------------------------
    def evaluate(self) -> None:
        """Combinational propagation (comb blocks only)."""

    def present(self) -> None:
        """Drive outputs from registered state (seq blocks only)."""

    def clock(self) -> None:
        """Capture inputs at the clock edge (seq blocks only)."""

    def reset(self) -> None:
        """Return to power-on state."""
        for out in self.outputs.values():
            out.value = 0

    # -- checkpointing -------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot: output-port values plus any internal
        state a subclass contributes via :meth:`extra_state`."""
        state = {"outputs": {n: p.value for n, p in self.outputs.items()}}
        extra = self.extra_state()
        if extra:
            state["extra"] = extra
        return state

    def load_state(self, state: dict) -> None:
        for name, value in state["outputs"].items():
            self.outputs[name].value = value
        self.load_extra_state(state.get("extra", {}))

    def extra_state(self) -> dict:
        """Internal (non-port) state; stateful subclasses override both
        this and :meth:`load_extra_state` symmetrically."""
        return {}

    def load_extra_state(self, extra: dict) -> None:
        pass

    # -- fast-forward (activity tracking) -----------------------------------
    def idle_horizon(self) -> int:
        """Cycles this block can safely be *not simulated at all*,
        assuming its input signals hold their current values.

        Return 0 when the block has (or may have) pending work — any
        state transition or output change on the next clock edge.
        Return :data:`IDLE_FOREVER` when the block is at a fixed point.
        A finite positive value promises the outputs stay constant for
        that many cycles *and* that :meth:`fast_forward` can replay the
        skipped internal state evolution.

        The default is conservative: combinational blocks are pure
        functions of their inputs (idle whenever the rest of the design
        is), sequential blocks must opt in by overriding.
        """
        return 0 if self.sequential else IDLE_FOREVER

    def fast_forward(self, cycles: int) -> None:
        """Catch internal state up after the model skipped ``cycles``
        clock cycles.  Only called for the window a prior
        :meth:`idle_horizon` allowed; blocks whose idle condition is a
        strict fixed point (everything in the standard library) have
        nothing to do."""

    # -- compiled-schedule code generation -----------------------------------
    def emit(self, ctx) -> bool:
        """Contribute inline source for this block to a compiled
        schedule (see :mod:`repro.sysgen.compiled`).

        Implementations use the :class:`~repro.sysgen.compiled.EmitContext`
        helpers to append statements to the ``present``/``evaluate``/
        ``clock`` phases and return True.  The default returns False,
        which makes the compiler splice interpreter-style method
        dispatch (with port synchronization) into the generated
        function instead — correct for any subclass, just slower.

        The emitted code must be observably identical to the
        ``present``/``evaluate``/``clock`` methods: same port values,
        same state transitions, same telemetry events, same exceptions.
        """
        return False

    def emit_batched(self, ctx) -> bool:
        """Contribute vectorized source for this block to a lockstep
        batched schedule (see :mod:`repro.sysgen.batched`).

        Same contract as :meth:`emit`, except every port variable holds
        an ``(N,)`` int64 array (one lane per batched variant) and any
        sequential state update must be masked by ``ctx.act`` so
        inactive lanes stay frozen.  The default returns False: the
        batch compiler then dispatches this block's interpreter methods
        per active lane on the per-lane clone objects — bit-identical
        with a scalar run, just not vectorized.

        Implementations must either emit the complete block and return
        True or emit nothing and return False — no partial output.
        """
        return False

    # -- metadata -------------------------------------------------------------
    def resources(self) -> Resources:
        """Estimated FPGA resources for this block."""
        return Resources()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = type(self).__name__
        return f"<{kind} {self.name!r}>"


class CombBlock(Block):
    sequential = False


class SeqBlock(Block):
    sequential = True


def mask(width: int) -> int:
    return (1 << width) - 1


def wrap(value: int, width: int) -> int:
    """Two's-complement wrap of ``value`` into ``width`` bits, returned
    as an unsigned bit pattern."""
    return value & ((1 << width) - 1)


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned bit pattern as a signed value."""
    value &= (1 << width) - 1
    return value - (1 << width) if value & (1 << (width - 1)) else value
