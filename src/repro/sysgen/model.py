"""Cycle-driven simulation engine for sysgen block diagrams.

The model compiles a static schedule once: sequential-block outputs and
source blocks are roots, combinational blocks are topologically sorted
between them.  Each :meth:`Model.step` then simulates one clock cycle::

    present()  on every sequential block   (registered outputs appear)
    evaluate() on comb blocks in topo order (signals settle)
    sample     probes
    clock()    on every sequential block   (state captures inputs)

A combinational feedback loop (no register on the path) is rejected at
compile time, matching hardware semantics.
"""

from __future__ import annotations

from collections import deque

from repro.resources.types import Resources
from repro.runapi.engine import EngineError, resolve_engine
from repro.sysgen.block import IDLE_FOREVER, Block
from repro.sysgen.compiled import CompiledSchedule
from repro.sysgen.ports import InputPort, OutputPort, PortRef


class ModelError(RuntimeError):
    """Construction or scheduling error."""


class Probe:
    """Records one port's value every cycle."""

    def __init__(self, port: OutputPort, name: str = ""):
        self.port = port
        self.name = name or f"{port.block.name}.{port.name}"
        self.samples: list[int] = []

    def sample(self) -> None:
        self.samples.append(self.port.value)


class Model:
    """A System Generator design: blocks + wires + schedule."""

    def __init__(self, name: str = "design"):
        self.name = name
        self.blocks: list[Block] = []
        self._names: set[str] = set()
        self.probes: list[Probe] = []
        self.cycle = 0
        self._schedule: list[Block] | None = None
        self._seq: list[Block] = []
        self._ff_blocks: list[Block] = []
        #: generated-code engine (None = interpreter; see compile())
        self._compiled: CompiledSchedule | None = None
        #: deprecated per-model escape hatch mirroring
        #: REPRO_SYSGEN_INTERP; honored (with a one-time warning) when
        #: the engine request is "auto" — use set_engine() instead
        self.force_interpreter = False
        #: unified engine request; see repro.runapi.engine
        self._engine_request = "auto"
        #: True once a full step() has run since the last reset/compile,
        #: i.e. every output port holds its settled post-evaluate value.
        self._settled = False
        #: (source OutputPort, dest InputPort) pairs, for lowering
        self.connections: list[tuple[OutputPort, InputPort]] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        """Structure changed: both the schedule and any generated code
        derived from it are stale."""
        self._schedule = None
        self._compiled = None

    def add(self, block: Block) -> Block:
        if block.name in self._names:
            raise ModelError(f"duplicate block name {block.name!r}")
        if block.model is not None:
            raise ModelError(f"block {block.name!r} already belongs to a model")
        self._names.add(block.name)
        block.model = self
        self.blocks.append(block)
        self._invalidate()
        return block

    def connect(self, src: PortRef, *dsts: PortRef) -> None:
        """Wire an output to one or more inputs.

        All targets are validated before any is wired: a bad target
        anywhere in ``dsts`` leaves the model exactly as it was (no
        partially-applied multi-target connect shadowed by a stale
        compiled schedule).
        """
        if src.is_input:
            raise ModelError(f"connection source must be an output: {src!r}")
        out = src.port
        assert isinstance(out, OutputPort)
        targets: list[InputPort] = []
        for dst in dsts:
            if not dst.is_input:
                raise ModelError(f"connection target must be an input: {dst!r}")
            port = dst.port
            assert isinstance(port, InputPort)
            if port.source is not None or port in targets:
                driver = port.source if port.source is not None else out
                raise ModelError(
                    f"input {port.block.name}.{port.name} already driven by "
                    f"{driver.block.name}.{driver.name}"
                )
            targets.append(port)
        for port in targets:
            port.source = out
            self.connections.append((out, port))
            self._invalidate()

    def probe(self, ref: PortRef, name: str = "") -> Probe:
        if ref.is_input:
            raise ModelError("probes attach to output ports")
        probe = Probe(ref.port, name)  # type: ignore[arg-type]
        self.probes.append(probe)
        # The compiled step function binds the probe list at codegen
        # time; regenerate (without touching the schedule or the
        # settle flag) so a probe added mid-run starts sampling
        # immediately, as under the interpreter.
        if self._schedule is not None:
            self._codegen()
        return probe

    def block(self, name: str) -> Block:
        for b in self.blocks:
            if b.name == name:
                return b
        raise ModelError(f"no block named {name!r}")

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def compile(self) -> None:
        """Build the static combinational schedule."""
        comb = [b for b in self.blocks if not b.sequential]
        self._seq = [b for b in self.blocks if b.sequential]
        # dependency edges between comb blocks
        deps: dict[Block, set[Block]] = {b: set() for b in comb}
        users: dict[Block, list[Block]] = {b: [] for b in comb}
        for block in comb:
            for port in block.inputs.values():
                if port.source is None:
                    continue
                src = port.source.block
                if not src.sequential and src is not block:
                    if src not in deps[block]:
                        deps[block].add(src)
                        users[src].append(block)
        ready = deque(b for b in comb if not deps[b])
        order: list[Block] = []
        remaining = {b: len(deps[b]) for b in comb}
        while ready:
            block = ready.popleft()
            order.append(block)
            for user in users[block]:
                remaining[user] -= 1
                if remaining[user] == 0:
                    ready.append(user)
        if len(order) != len(comb):
            cyclic = sorted(b.name for b in comb if remaining[b] > 0)
            raise ModelError(
                "combinational loop through blocks: " + ", ".join(cyclic)
                + " (insert a Register/Delay)"
            )
        self._schedule = order
        self._ff_blocks = [
            b for b in self.blocks
            if type(b).fast_forward is not Block.fast_forward
        ]
        self._settled = False
        self._codegen()

    def _codegen(self) -> None:
        """(Re)generate the compiled step/settle functions for the
        current schedule, unless the engine request (or, under
        ``"auto"``, a deprecated interpreter knob) resolves to the
        interpreter."""
        self._compiled = None
        if resolve_engine(self._engine_request, model=self) == "interpreter":
            return
        self._compiled = CompiledSchedule(self)

    def set_engine(self, engine: str) -> None:
        """Pin this model to an engine (``"auto"``, ``"compiled"`` or
        ``"interpreter"``); an explicit choice overrides the deprecated
        ``force_interpreter`` / ``REPRO_SYSGEN_INTERP`` knobs."""
        if engine == "batched":
            raise EngineError(
                "a scalar Model cannot run batched; construct a "
                "repro.sysgen.batched.BatchedModel over N models instead"
            )
        resolve_engine(engine if engine != "auto" else "compiled")  # validate
        self._engine_request = engine
        if self._schedule is not None:
            self._codegen()

    @property
    def engine(self) -> str:
        """Which engine the next step() will run: ``"compiled"`` or
        ``"interpreter"`` (compiles the model if needed)."""
        if self._schedule is None:
            self.compile()
        return "compiled" if self._compiled is not None else "interpreter"

    @property
    def compiled_source(self) -> str | None:
        """Generated python source of the compiled schedule, or None
        when running under the interpreter."""
        if self._schedule is None:
            self.compile()
        return None if self._compiled is None else self._compiled.source

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------
    def step(self, cycles: int = 1) -> None:
        """Advance ``cycles`` clock cycles."""
        if self._schedule is None:
            self.compile()
        assert self._schedule is not None
        if self._compiled is not None:
            if cycles > 0:
                self._compiled.step(cycles)
                self._settled = True
            return
        schedule = self._schedule
        seq = self._seq
        probes = self.probes
        for _ in range(cycles):
            for block in seq:
                block.present()
            for block in schedule:
                block.evaluate()
            for probe in probes:
                probe.sample()
            for block in seq:
                block.clock()
            self.cycle += 1
        if cycles > 0:
            self._settled = True

    # ------------------------------------------------------------------
    # Fast-forward (bulk time advance between interface events)
    # ------------------------------------------------------------------
    def idle_horizon(self) -> int:
        """How many cycles the whole design can skip without simulation.

        Returns 0 unless every block reports a positive
        :meth:`~repro.sysgen.block.Block.idle_horizon` — i.e. the design
        is quiescent: no sequential block or FSL endpoint has pending
        work and every output already holds its settled value.  The
        co-simulation kernel uses this as the hardware side of the event
        horizon; :data:`~repro.sysgen.block.IDLE_FOREVER` means "idle
        until an external input (FSL push/pop, gateway drive) changes".
        """
        if self._schedule is None or not self._settled:
            return 0
        horizon = IDLE_FOREVER
        for block in self.blocks:
            h = block.idle_horizon()
            if h <= 0:
                return 0
            if h < horizon:
                horizon = h
        return horizon

    def fast_forward(self, cycles: int) -> None:
        """Advance the clock ``cycles`` cycles without simulating them.

        Caller contract: a preceding :meth:`idle_horizon` returned at
        least ``cycles`` and no external input changed since.  Probes
        record the (unchanged) settled values so traces stay
        bit-identical with a per-cycle run.
        """
        if cycles <= 0:
            return
        for probe in self.probes:
            probe.samples.extend((probe.port.value,) * cycles)
        for block in self._ff_blocks:
            block.fast_forward(cycles)
        self.cycle += cycles

    def settle(self) -> None:
        """Propagate combinational logic without advancing the clock
        (useful to inspect mid-cycle values in tests)."""
        if self._schedule is None:
            self.compile()
        assert self._schedule is not None
        if self._compiled is not None:
            self._compiled.settle()
            return
        for block in self._seq:
            block.present()
        for block in self._schedule:
            block.evaluate()

    def reset(self) -> None:
        self.cycle = 0
        self._settled = False
        for block in self.blocks:
            block.reset()
        for probe in self.probes:
            probe.samples.clear()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Dynamic state only: cycle count, settle flag, probe samples
        and per-block state.  The schedule is derived (rebuilt by
        :meth:`compile`) and the wiring is construction-time."""
        return {
            "cycle": self.cycle,
            "settled": self._settled,
            "probes": [list(p.samples) for p in self.probes],
            "blocks": {b.name: b.state_dict() for b in self.blocks},
        }

    def load_state(self, state: dict) -> None:
        if set(state["blocks"]) != self._names:
            missing = self._names.symmetric_difference(state["blocks"])
            raise ModelError(
                "checkpoint block set does not match this model: "
                + ", ".join(sorted(missing))
            )
        if len(state["probes"]) != len(self.probes):
            raise ModelError(
                f"checkpoint has {len(state['probes'])} probes, "
                f"model has {len(self.probes)}"
            )
        self.cycle = state["cycle"]
        self._settled = state["settled"]
        for probe, samples in zip(self.probes, state["probes"]):
            probe.samples[:] = samples
        for block in self.blocks:
            block.load_state(state["blocks"][block.name])
        if self._schedule is None:
            self.compile()
            self._settled = state["settled"]

    # ------------------------------------------------------------------
    def resources(self) -> Resources:
        """Total estimated resources over all blocks (the System
        Generator resource-estimator analogue)."""
        total = Resources()
        for block in self.blocks:
            total = total + block.resources()
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Model {self.name!r}: {len(self.blocks)} blocks>"
