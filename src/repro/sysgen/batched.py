"""Batched lockstep execution of N structurally identical models.

A parameter sweep or fault campaign simulates the *same* design many
times with different constants, programs or seeds.  Run scalar, each
variant pays the full python interpretation cost per cycle.  This
module extends the compiled-schedule idea of
:mod:`repro.sysgen.compiled` one axis further: N variants advance in
lockstep through one generated step function whose values are numpy
``int64`` arrays of shape ``(N,)`` — one lane per variant.  State that
the scalar engines keep in python attributes (register contents, port
values, FIFO occupancies, pipeline stages) moves into arrays with a
batch axis, so a register update costs one vectorized ``np.where``
instead of N python statements.

Blocks contribute vectorized source through
:meth:`~repro.sysgen.block.Block.emit_batched`.  Blocks that cannot be
vectorized (FSL endpoints whose channel objects are shared with the
CPU, fixed-point Convert, user subclasses) *fall back per lane*: the
generated code dispatches their interpreter methods on the per-lane
clone objects with port synchronization around the call, exactly like
the scalar compiled engine's fallback — so telemetry, channel
statistics and drop counters stay bit-identical with a scalar run.

Divergence between lanes is handled by masking: the step function
takes a boolean active-lane array, sequential state updates are
wrapped in ``np.where(act & ..., new, old)``, probes sample active
lanes only, and fallback dispatch loops over the active lane list.  A
halted or evicted lane's clone objects and array rows freeze at their
final values.  Events that cannot be expressed under a mask at all
(GDB attach, checkpoint rollback, mid-run exceptions) are *evicted* by
the batched co-simulation layer (:mod:`repro.cosim.batch`), which
replays the lane on a scalar engine from cycle 0.

``BatchUnsupported`` is the refusal signal: lanes that are not
structurally identical, ports too wide for int64 lanes, or a missing
numpy all raise it, and callers fall back to scalar simulation.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Callable

try:  # numpy is the only dependency; gate it so scalar paths never pay
    import numpy as np
except ImportError:  # pragma: no cover - baked into the toolchain image
    np = None  # type: ignore[assignment]

from repro.sysgen.block import IDLE_FOREVER
from repro.sysgen.compiled import CompileError, _reindent

if TYPE_CHECKING:  # pragma: no cover
    from repro.sysgen.block import Block
    from repro.sysgen.model import Model
    from repro.sysgen.ports import OutputPort

#: widest output port a vectorized lane can carry: values live in
#: int64 lanes and intermediates (a+b, sign extension) need headroom.
MAX_VEC_WIDTH = 60


class BatchUnsupported(RuntimeError):
    """The model set cannot run as one lockstep batch; run scalar."""


# ---------------------------------------------------------------------------
# Structural identity
# ---------------------------------------------------------------------------

#: construction attributes that shape the generated code and therefore
#: must match across lanes.  Value-like attributes (Constant.value,
#: Register init, Counter.step, ROM contents) deliberately stay out:
#: those become per-lane arrays.
_STRUCT_ATTRS = (
    "width", "latency", "depth", "n", "msb", "lsb", "widths", "op",
    "signed", "direction", "arithmetic", "amount",
    "width_a", "width_b", "out_width", "sequential",
)


def _lane_diff(a: "np.ndarray", b: "np.ndarray") -> "np.ndarray":
    """(N,) bool: which lanes' rows of ``a`` differ from ``b``."""
    neq = a != b
    return neq.any(axis=1) if neq.ndim == 2 else neq


def block_signature(block: "Block") -> tuple:
    """Hashable structural fingerprint of one block."""
    ins = tuple(
        (p.name, p.default,
         None if p.source is None
         else (p.source.block.name, p.source.name))
        for p in block.inputs.values()
    )
    outs = tuple((p.name, p.width) for p in block.outputs.values())
    attrs = tuple(
        (a, getattr(block, a)) for a in _STRUCT_ATTRS if hasattr(block, a)
    )
    # tuple-ify list attrs (Concat.widths) so the signature hashes
    attrs = tuple((a, tuple(v) if isinstance(v, list) else v)
                  for a, v in attrs)
    return (type(block).__name__, block.name, ins, outs, attrs)


def lockstep_signature(model: "Model") -> tuple:
    """Structural fingerprint of a model: two models with equal
    signatures can share one lockstep schedule (their value-like
    parameters — constants, ROM contents, programs — may differ)."""
    blocks = tuple(block_signature(b) for b in model.blocks)
    probes = tuple((p.port.block.name, p.port.name, p.name)
                   for p in model.probes)
    return (model.name, blocks, probes)


# ---------------------------------------------------------------------------
# Emit context
# ---------------------------------------------------------------------------


class BatchEmitContext:
    """Code-generation context handed to ``emit_batched``.

    Mirrors :class:`repro.sysgen.compiled.EmitContext` — the same line
    sinks (present / evaluate / clock / entry / exit) and value helpers
    (inp / out / lit / bind / fresh / tmp) — but every port variable
    holds an ``(N,)`` int64 array and sequential updates must be
    masked by :attr:`act` (boolean active-lane array).  Extra helpers:

    * :meth:`state` — a persistent ``(N, ...)`` state array slot,
      (re)loadable from the per-lane clone blocks
    * :meth:`lane_blocks` / :meth:`lane_ports` — the per-lane clone
      objects behind a template block / port (fallback dispatch)
    * :meth:`as_array` — force a possibly-literal expression to an
      ``(N,)`` array (broadcast against a bound zeros array)
    * :attr:`act` / :attr:`lanes` — the mask array and active lane
      index list (function arguments, fixed for one ``step`` call)
    * :attr:`arange` — a bound ``np.arange(N)`` for fancy indexing
    """

    def __init__(self, batched: "BatchedModel"):
        self.batched = batched
        self.model = batched.template
        self.n = batched.n
        self.ns: dict[str, object] = {"np": np}
        self._bound: dict[int, str] = {}
        self._port_var: dict[int, str] = {}
        self._ports: list["OutputPort"] = []
        self._entry: list[str] = []
        self._present: list[str] = []
        self._evaluate: list[str] = []
        self._probe: list[str] = []
        self._clock: list[str] = []
        self._exit: list[str] = []
        self._names = 0
        self.state_loaders: list[Callable[[], "np.ndarray"]] = []
        self.act = "_act"
        self.lanes = "_ln"
        self.arange = self.bind(np.arange(self.n), "ar")
        self.zeros = self.bind(np.zeros(self.n, np.int64), "zz")
        self._lane_block_memo: dict[int, list["Block"]] = {}

    # -- line sinks (same contract as EmitContext) ----------------------
    def entry(self, line: str) -> None:
        self._entry.append(line)

    def present(self, line: str) -> None:
        self._present.append(line)

    def evaluate(self, line: str) -> None:
        self._evaluate.append(line)

    def probe_line(self, line: str) -> None:
        self._probe.append(line)

    def clock(self, line: str) -> None:
        self._clock.append(line)

    def exit(self, line: str) -> None:
        self._exit.append(line)

    # -- names ----------------------------------------------------------
    def _fresh_name(self, prefix: str) -> str:
        self._names += 1
        return f"{prefix}{self._names}"

    def tmp(self) -> str:
        return self._fresh_name("_t")

    def bind(self, obj: object, hint: str = "b") -> str:
        key = id(obj)
        name = self._bound.get(key)
        if name is None:
            name = self._fresh_name(f"_{hint}")
            self._bound[key] = name
            self.ns[name] = obj
        return name

    def fresh(self, obj: object, attr: str, hint: str = "a") -> str:
        name = self._fresh_name(f"_{hint}")
        self.entry(f"{name} = {self.bind(obj)}.{attr}")
        return name

    # -- ports ----------------------------------------------------------
    def port_var(self, port: "OutputPort") -> str:
        name = self._port_var.get(id(port))
        if name is None:
            name = f"v{len(self._ports)}"
            self._port_var[id(port)] = name
            self._ports.append(port)
        return name

    def out(self, block: "Block", name: str) -> str:
        return self.port_var(block.outputs[name])

    def inp(self, block: "Block", name: str) -> str:
        port = block.inputs[name]
        if port.source is None:
            return repr(port.default)
        return self.port_var(port.source)

    @staticmethod
    def lit(expr: str) -> int | None:
        try:
            return int(expr)
        except ValueError:
            return None

    def as_array(self, expr: str) -> str:
        """``expr`` broadcast to an ``(N,)`` int64 array (no-op values:
        adding the bound zeros array)."""
        if self.lit(expr) is None and expr.startswith("v"):
            return expr  # already a port array
        return f"(({expr}) + {self.zeros})"

    # -- state slots -----------------------------------------------------
    def state(self, loader: Callable[[], "np.ndarray"], hint: str = "st") -> str:
        """A persistent state array: loaded from the ``_S`` store at
        call entry, written back in the exit ``finally``.
        ``loader()`` rebuilds the array from the per-lane clone blocks
        (used at construction and on :meth:`BatchedModel.reset`)."""
        idx = len(self.state_loaders)
        self.state_loaders.append(loader)
        name = self._fresh_name(f"_{hint}")
        self.entry(f"{name} = _S[{idx}]")
        self.exit(f"_S[{idx}] = {name}")
        return name

    # -- per-lane clone access -------------------------------------------
    def lane_blocks(self, block: "Block") -> list["Block"]:
        """The clone of ``block`` in every lane (template included)."""
        got = self._lane_block_memo.get(id(block))
        if got is None:
            got = [bm[block.name] for bm in self.batched._block_maps]
            self._lane_block_memo[id(block)] = got
        return got

    def lane_ports(self, port: "OutputPort") -> list["OutputPort"]:
        return [b.outputs[port.name]
                for b in self.lane_blocks(port.block)]

    def lane_values(self, port: "OutputPort") -> "np.ndarray":
        return np.fromiter((p.value for p in self.lane_ports(port)),
                           np.int64, self.n)

    # -- masked-update helpers -------------------------------------------
    def where(self, cond: str, a: str, b: str) -> str:
        return f"np.where({cond}, {a}, {b})"

    def masked_present(self, out: str, expr: str) -> None:
        """Present ``out = expr`` for active lanes only.  Deactivated
        lanes must keep the port value of their final executed cycle
        (the scalar engine's value at the moment it stopped), so every
        sequential present is masked; combinational re-evaluation then
        reproduces the frozen values from these frozen inputs."""
        self.present(f"{out} = np.where({self.act}, {expr}, {out})")

    def flag(self, expr: str) -> str:
        """Condition string for ``(expr) & 1`` with literal folding:
        returns ``"1"``/``"0"`` for compile-time-constant guards."""
        v = self.lit(expr)
        if v is not None:
            return "1" if v & 1 else "0"
        return f"((({expr}) & 1) > 0)"


def guarded_update_batched(ctx: BatchEmitContext, rst: str, en: str,
                           rst_val: str, en_val: str, old: str) -> str | None:
    """Masked ``np.where`` chain for the registered-update pattern
    (``if rst: old = rst_val elif en: old = en_val``), pruned when a
    guard is a literal.  Returns an expression for the new state array,
    or None when the update is dead."""
    act = ctx.act
    rflag = ctx.flag(rst)
    eflag = ctx.flag(en)
    if rflag == "0":
        if eflag == "0":
            return None
        cond = act if eflag == "1" else f"{act} & {eflag}"
        return ctx.where(cond, en_val, old)
    if rflag == "1":
        return ctx.where(act, rst_val, old)
    inner = old
    if eflag == "1":
        inner = ctx.where(act, en_val, old)
    elif eflag != "0":
        inner = ctx.where(f"{act} & {eflag}", en_val, old)
    return ctx.where(f"{act} & {rflag}", rst_val, inner)


_BARE_NAME = re.compile(r"[A-Za-z_]\w*\Z")


def _unmask(line: str) -> str:
    """Rewrite one generated line for the all-lanes-active fast path.

    With every lane active the mask is the identity:
    ``np.where(_act, A, B)`` is ``A`` (copied when ``A`` is a bare
    array name, because the masked form produced a fresh array and
    later in-place writes — fallback reloads, 2-D state stores — must
    not leak through an alias), ``_act & F`` is ``F``, and a bare
    ``_act`` is the bound all-true array.  Purely textual: the masked
    and unmasked variants come from the same emitted source, so they
    cannot diverge behaviourally.
    """
    token = "np.where(_act"
    pos = 0
    while True:
        j = line.find(token, pos)
        if j < 0:
            break
        k = j + len(token)
        if line.startswith("[:, None], ", k):
            k += len("[:, None], ")
        elif line.startswith(", ", k):
            k += 2
        else:  # np.where(_act & F, …): the `_act & ` strip handles it
            pos = k
            continue
        # split `A, B)` at the top-level comma, then the closing paren
        depth, split, end = 0, None, None
        for i in range(k, len(line)):
            c = line[i]
            if c in "([":
                depth += 1
            elif c in ")]":
                if depth == 0:
                    end = i
                    break
                depth -= 1
            elif c == "," and depth == 0 and split is None:
                split = i
        if split is None or end is None:  # pragma: no cover - emitter bug
            raise CompileError(f"unbalanced np.where in generated: {line}")
        a = line[k:split].strip()
        repl = f"{a}.copy()" if _BARE_NAME.match(a) else f"({a})"
        line = line[:j] + repl + line[end + 1:]
        pos = 0
    line = line.replace("_act & ", "")
    return re.sub(r"\b_act\b", "_TRUE", line)


def _emit_fallback_batched(ctx: BatchEmitContext, block: "Block") -> None:
    """Per-lane interpreter dispatch for a block without a vectorized
    emitter: sync the clone's feeding ports from the lane arrays, run
    the clone's method, read the outputs back — for active lanes only.
    Bit-identical with a scalar run of each lane (same channel objects,
    telemetry hooks and drop counters fire on the clones)."""
    clones = ctx.bind(ctx.lane_blocks(block), "fb")
    flush = []
    for port in block.inputs.values():
        if port.source is not None:
            var = ctx.port_var(port.source)
            pl = ctx.bind(ctx.lane_ports(port.source), "fp")
            flush.append(f"    {pl}[_l].value = int({var}[_l])")
    reload = []
    for port in block.outputs.values():
        var = ctx.port_var(port)
        pl = ctx.bind(ctx.lane_ports(port), "fp")
        reload.append(f"    {var}[_l] = {pl}[_l].value")

    def loop(body: list[str], sink) -> None:
        sink("\n".join([f"for _l in {ctx.lanes}:"] + body))

    if block.sequential:
        loop([f"    {clones}[_l].present()"] + reload, ctx.present)
        loop(flush + [f"    {clones}[_l].clock()"] + reload, ctx.clock)
    else:
        loop(flush + [f"    {clones}[_l].evaluate()"] + reload, ctx.evaluate)


# ---------------------------------------------------------------------------
# Schedule
# ---------------------------------------------------------------------------


class BatchedSchedule:
    """Generated lockstep step/settle functions for one batch.

    ``source`` holds the generated python; ``step(cycles, act, lanes)``
    advances every lane where ``act`` is True by ``cycles`` cycles.
    """

    def __init__(self, batched: "BatchedModel"):
        template = batched.template
        assert template._schedule is not None
        ctx = BatchEmitContext(batched)
        self.ctx = ctx
        self.fallback_blocks: list[str] = []
        for block in list(template._seq) + list(template._schedule):
            if not block.emit_batched(ctx):
                _emit_fallback_batched(ctx, block)
                self.fallback_blocks.append(block.name)

        for k, probe in enumerate(template.probes):
            apps = [m.probes[k].samples.append for m in batched.models]
            ap = ctx.bind(apps, "ap")
            port = probe.port
            if id(port) in ctx._port_var:
                var = ctx.port_var(port)
                ctx.probe_line(
                    f"for _l in {ctx.lanes}: {ap}[_l](int({var}[_l]))"
                )
            else:  # probe on a port no block drives through the batch
                pl = ctx.bind(ctx.lane_ports(port), "fp")
                ctx.probe_line(
                    f"for _l in {ctx.lanes}: {ap}[_l](int({pl}[_l].value))"
                )

        cycle_body = (ctx._present + ctx._evaluate + ctx._probe + ctx._clock)
        # the all-lanes-active variant: identical source with the mask
        # arithmetic elided — the hot path of campaign tails, where
        # every lane advances together between divergence events
        cycle_body_all = [_unmask(line) for line in cycle_body]
        settle_body = ctx._present + ctx._evaluate

        loads = [f"v{k} = _P[{k}]" for k in range(len(ctx._ports))]
        stores = [f"_P[{k}] = v{k}" for k in range(len(ctx._ports))]

        models = ctx.bind(batched.models, "lm")
        bref = ctx.bind(batched, "bm")
        ctx.ns["_P"] = self.port_store = [None] * len(ctx._ports)
        ctx.ns["_S"] = self.state_store = [None] * len(ctx.state_loaders)
        ctx.ns["_TRUE"] = np.ones(batched.n, dtype=bool)

        args = ", ".join(f"{k}={k}" for k in ctx.ns)
        head = f", {args}" if args else ""
        src = []
        for fname, body in (("_step", cycle_body),
                            ("_step_all", cycle_body_all)):
            src += [f"def {fname}(_n, _act, _ln{head}):"]
            src += _reindent(ctx._entry + loads, "    ")
            src += ["    _done = 0",
                    "    try:",
                    "        while _done < _n:"]
            src += _reindent(body, "            ") or ["            pass"]
            src += ["            _done += 1",
                    "    finally:"]
            src += _reindent(stores + ctx._exit, "        ")
            src += [f"        for _l in _ln: {models}[_l].cycle += _done",
                    f"        {bref}.cycle += _done", ""]
        src += [f"def _settle(_act, _ln{head}):"]
        src += _reindent(ctx._entry + loads, "    ")
        src += ["    try:"]
        src += _reindent(settle_body, "        ") or ["        pass"]
        src += ["    finally:"]
        src += _reindent(stores + ctx._exit, "        ") or ["        pass"]
        src.append("")
        self.source = "\n".join(src)

        ns = dict(ctx.ns)
        try:
            code = compile(
                self.source,
                f"<sysgen-batched:{template.name}x{batched.n}>", "exec")
            exec(code, ns)  # noqa: S102 - our own generated source
        except SyntaxError as exc:  # pragma: no cover - emitter bug
            raise CompileError(
                f"generated lockstep schedule for model "
                f"{template.name!r} does not compile: {exc}\n{self.source}"
            ) from exc
        self.step = ns["_step"]
        self.step_all = ns["_step_all"]
        self.settle = ns["_settle"]
        self._cycle_body = cycle_body
        self._batched = batched
        self.ckernel = None
        self.step_c = None

    # -- native kernel (optional) ---------------------------------------
    def build_ckernel(self) -> None:
        """Translate the numpy runs of the cycle body into a compiled C
        kernel (see :mod:`repro.sysgen.ckernel`).  Called after the
        first :meth:`sync_from_clones`, when the port/state arrays
        exist.  Any unsupported construct or missing compiler leaves
        the pure-numpy step in place."""
        from repro.sysgen.ckernel import CUnsupported, build_step_kernel

        ctx = self.ctx
        if "_ck" in ctx.ns:  # pragma: no cover - name-collision paranoia
            return
        state_names = {}
        entry_extra = []
        for line in ctx._entry:
            m = re.match(r"(\w+) = _S\[(\d+)\]$", line)
            if m:
                state_names[m.group(1)] = int(m.group(2))
            else:
                entry_extra.append(line)
        try:
            built = build_step_kernel(
                self._batched.n,
                self._cycle_body,
                self.port_store,
                self.state_store,
                {f"v{k}": k for k in range(len(ctx._ports))},
                state_names,
                ctx.ns,
                ctx.act,
                "_TRUE",
                ctx.zeros,
            )
        except CUnsupported:
            return
        if built is None:
            return
        kernel, kbody = built
        run = kernel.runner(self._batched)

        loads = [f"v{k} = _P[{k}]" for k in range(len(ctx._ports))]
        models = ctx.bind(self._batched.models, "lm")
        bref = ctx.bind(self._batched, "bm")
        args = ", ".join(f"{k}={k}" for k in ctx.ns)
        head = f", {args}" if args else ""
        src = [f"def _step_c(_n, _act, _ln{head}, _ck=_ck):"]
        src += _reindent(ctx._entry + loads, "    ")
        src += ["    _done = 0",
                "    try:",
                "        while _done < _n:"]
        for item in kbody:
            if isinstance(item, int):
                src.append(f"            _ck({item})")
            else:
                src += _reindent([item], "            ")
        src += ["            _done += 1",
                "    finally:",
                f"        for _l in _ln: {models}[_l].cycle += _done",
                f"        {bref}.cycle += _done", ""]
        source_c = "\n".join(src)
        ns = dict(ctx.ns)
        ns["_ck"] = run
        code = compile(
            source_c,
            f"<sysgen-batched-c:{self._batched.template.name}"
            f"x{self._batched.n}>", "exec")
        exec(code, ns)  # noqa: S102 - our own generated source
        self.ckernel = kernel
        self.step_c = ns["_step_c"]
        self._n_port_slots = len(ctx._ports)

    def resync_kernel(self) -> None:
        """Re-point the kernel's slot table after anything replaced a
        port/state array object (numpy ``settle``, pokes, resets)."""
        kernel = self.ckernel
        if kernel is None:
            return
        for k, arr in enumerate(self.port_store):
            kernel.arrays[k] = arr
        base = self._n_port_slots
        for j, arr in enumerate(self.state_store):
            kernel.arrays[base + j] = arr
        kernel._gen = -1

    def sync_from_clones(self) -> None:
        """(Re)build every port and state array from the per-lane clone
        objects — at construction, and after ``reset``/``load``."""
        ctx = self.ctx
        for k, port in enumerate(ctx._ports):
            self.port_store[k] = ctx.lane_values(port)
        for k, loader in enumerate(ctx.state_loaders):
            self.state_store[k] = loader()
        self.resync_kernel()


# ---------------------------------------------------------------------------
# Batched model
# ---------------------------------------------------------------------------


class BatchedModel:
    """N structurally identical models advancing in lockstep.

    Construct with the N per-lane :class:`~repro.sysgen.model.Model`
    instances (typically the same builder called N times with variant
    parameters).  Lane 0's model doubles as the structural template.
    Raises :class:`BatchUnsupported` when the models cannot share one
    lockstep schedule — callers fall back to scalar simulation.
    """

    def __init__(self, models: list["Model"]):
        if np is None:  # pragma: no cover - numpy is baked in
            raise BatchUnsupported("numpy is not available")
        if not models:
            raise BatchUnsupported("empty batch")
        self.models = list(models)
        self.n = len(self.models)
        self.template = self.models[0]
        for m in self.models:
            # clone models only ever run their interpreter methods (per
            # lane, via fallback dispatch); skip their scalar codegen.
            m.set_engine("interpreter")
            if m._schedule is None:
                m.compile()
        sig0 = lockstep_signature(self.template)
        for lane, m in enumerate(self.models[1:], start=1):
            if lockstep_signature(m) != sig0:
                raise BatchUnsupported(
                    f"lane {lane} is not structurally identical to lane 0"
                    " (block set, wiring, widths and probes must match)"
                )
        wide = [
            f"{b.name}.{p.name}({p.width})"
            for b in self.template.blocks
            for p in b.outputs.values() if p.width > MAX_VEC_WIDTH
        ]
        if wide:
            raise BatchUnsupported(
                "ports too wide for int64 lanes: " + ", ".join(wide)
            )
        self.cycle = 0
        self.active = np.ones(self.n, dtype=bool)
        self._lanes = list(range(self.n))
        self._block_maps = [{b.name: b for b in m.blocks}
                            for m in self.models]
        self._schedule = BatchedSchedule(self)
        self._schedule.sync_from_clones()
        self._schedule.build_ckernel()

    # -- lane lifecycle --------------------------------------------------
    @property
    def lanes(self) -> list[int]:
        """Active lane indices (in lane order)."""
        return list(self._lanes)

    def deactivate(self, lane: int) -> None:
        """Freeze a lane: its state, probes and clone objects keep
        their current values; subsequent steps skip it."""
        self.active[lane] = False
        self._lanes = [int(i) for i in np.flatnonzero(self.active)]

    def activate(self, lane: int) -> None:
        """Thaw a frozen lane.  Masked updates keep every lane's state
        arrays exact while frozen, so a reactivated lane continues bit-
        identically from the cycle it was frozen at — this is how the
        batched co-simulation pauses lanes at per-lane cycle targets."""
        self.active[lane] = True
        self._lanes = [int(i) for i in np.flatnonzero(self.active)]

    @property
    def any_active(self) -> bool:
        return bool(self._lanes)

    # -- simulation ------------------------------------------------------
    def step(self, cycles: int = 1) -> None:
        """Advance every active lane ``cycles`` clock cycles."""
        if cycles <= 0:
            return
        step_c = self._schedule.step_c
        if step_c is not None:
            step_c(cycles, self.active, self._lanes)
        elif len(self._lanes) == self.n:
            self._schedule.step_all(cycles, self.active, self._lanes)
        else:
            self._schedule.step(cycles, self.active, self._lanes)

    def settle(self) -> None:
        """Propagate combinational logic without a clock edge."""
        self._schedule.settle(self.active, self._lanes)
        self._schedule.resync_kernel()

    # -- fast-forward ----------------------------------------------------
    def state_image(self) -> tuple[list, list]:
        """Snapshot of every port and state array (deep copies)."""
        s = self._schedule
        return ([a.copy() for a in s.port_store],
                [a.copy() for a in s.state_store])

    def state_unchanged(self, image: tuple[list, list]) -> bool:
        """True when no port or state array differs from ``image``.

        With unchanged inputs the step function is deterministic, so an
        unchanged step proves the whole vectorized design sits at a
        fixed point: every further step is the identity until an
        external input (CPU FSL transfer, fault poke, fallback-block
        output) changes.  This is the hardware-idle test the batched
        engine uses in place of the scalar per-block ``idle_horizon``
        walk, whose per-lane state it cannot see."""
        ports, states = image
        s = self._schedule
        for a, b in zip(s.port_store, ports):
            if not np.array_equal(a, b):
                return False
        for a, b in zip(s.state_store, states):
            if not np.array_equal(a, b):
                return False
        return True

    def changed_lanes(self, image: tuple[list, list]) -> "np.ndarray":
        """Per-lane OR of :meth:`state_unchanged`'s comparison: a
        ``(N,)`` bool mask of lanes whose slice of any port or state
        array differs from ``image``.  A False lane sits at its own
        fixed point (the masked step is per-lane deterministic), which
        is the evidence the per-lane freeze needs where the global
        fast-forward needs the whole batch quiet."""
        changed = np.zeros(self.n, dtype=bool)
        s = self._schedule
        for a, b in zip(s.port_store, image[0]):
            np.logical_or(changed, _lane_diff(a, b), out=changed)
        for a, b in zip(s.state_store, image[1]):
            np.logical_or(changed, _lane_diff(a, b), out=changed)
        return changed

    def fallback_idle_horizon(self, lanes: list[int] | None = None) -> int:
        """Min ``idle_horizon`` over the fallback blocks of the given
        lanes (their clone state is live — the generated step dispatches
        them per lane every cycle, unlike the vectorized blocks)."""
        names = self._schedule.fallback_blocks
        if not names:
            return IDLE_FOREVER
        horizon = IDLE_FOREVER
        for lane in (self._lanes if lanes is None else lanes):
            bm = self._block_maps[lane]
            for name in names:
                h = bm[name].idle_horizon()
                if h <= 0:
                    return 0
                if h < horizon:
                    horizon = h
        return horizon

    def fallback_port_indices(self) -> list[int]:
        """Port-store indices driven by fallback blocks (the external
        inputs of the vectorized subgraph, alongside the CPU's FSL
        traffic)."""
        got = getattr(self, "_fb_ports", None)
        if got is None:
            ctx = self._schedule.ctx
            got = []
            for name in self._schedule.fallback_blocks:
                for port in self.template.block(name).outputs.values():
                    if id(port) in ctx._port_var:
                        got.append(ctx._ports.index(port))
            self._fb_ports = got
        return got

    def fallback_outputs_image(self) -> list:
        """Copies of the fallback-driven port arrays — the frozen-input
        evidence a fast-forward skip re-checks before committing."""
        store = self._schedule.port_store
        return [store[k].copy() for k in self.fallback_port_indices()]

    def fallback_outputs_unchanged(self, image) -> bool:
        store = self._schedule.port_store
        for k, saved in zip(self.fallback_port_indices(), image):
            if not np.array_equal(store[k], saved):
                return False
        return True

    def _probe_sources(self) -> list[tuple]:
        """(probe index, port-store index | None, clone ports) per
        probe — where frozen probe samples are read from."""
        srcs = getattr(self, "_probe_srcs", None)
        if srcs is None:
            ctx = self._schedule.ctx
            srcs = []
            for k, probe in enumerate(self.template.probes):
                port = probe.port
                if id(port) in ctx._port_var:
                    srcs.append((k, ctx._ports.index(port), None))
                else:
                    srcs.append((k, None, ctx.lane_ports(port)))
            self._probe_srcs = srcs
        return srcs

    def fast_forward(self, cycles: int) -> None:
        """Advance every active lane ``cycles`` cycles without stepping.

        Caller contract (mirrors the scalar
        :meth:`~repro.sysgen.model.Model.fast_forward`): the design is
        at a fixed point — :meth:`state_unchanged` held over a step and
        :meth:`fallback_idle_horizon` covers the window — and no
        external input changes meanwhile.  Probes record the frozen
        values so traces stay bit-identical with a per-cycle run; every
        block in the standard library has strict-fixed-point idleness,
        so there is no per-block state to catch up."""
        if cycles <= 0:
            return
        srcs = self._probe_sources()
        for k, idx, clones in srcs:
            if idx is not None:
                arr = self._schedule.port_store[idx]
                for lane in self._lanes:
                    self.models[lane].probes[k].samples.extend(
                        (int(arr[lane]),) * cycles)
            else:
                for lane in self._lanes:
                    self.models[lane].probes[k].samples.extend(
                        (int(clones[lane].value),) * cycles)
        for lane in self._lanes:
            self.models[lane].cycle += cycles
        self.cycle += cycles

    def fast_forward_lane(self, lane: int, cycles: int) -> None:
        """:meth:`fast_forward` for one (typically frozen) lane: extend
        its probes with the frozen values and advance its clone's cycle
        counter, without touching the shared vector clock — the lane is
        catching up to it."""
        if cycles <= 0:
            return
        for k, idx, clones in self._probe_sources():
            if idx is not None:
                v = int(self._schedule.port_store[idx][lane])
            else:
                v = int(clones[lane].value)
            self.models[lane].probes[k].samples.extend((v,) * cycles)
        self.models[lane].cycle += cycles

    def reset(self) -> None:
        """Reset every lane (clone models included) to cycle 0."""
        for m in self.models:
            m.reset()
        self.cycle = 0
        self.active = np.ones(self.n, dtype=bool)
        self._lanes = list(range(self.n))
        self._schedule.sync_from_clones()

    # -- introspection / pokes -------------------------------------------
    @property
    def fallback_blocks(self) -> list[str]:
        """Blocks running per-lane interpreter dispatch (not vectorized)."""
        return list(self._schedule.fallback_blocks)

    @property
    def batched_source(self) -> str:
        return self._schedule.source

    def _port_index(self, block_name: str, port_name: str) -> int:
        port = self.template.block(block_name).outputs[port_name]
        ctx = self._schedule.ctx
        var = ctx._port_var.get(id(port))
        if var is None:
            raise BatchUnsupported(
                f"port {block_name}.{port_name} is not tracked by the "
                "lockstep schedule"
            )
        return ctx._ports.index(port)

    def peek(self, block_name: str, port_name: str) -> "np.ndarray":
        """Copy of the (N,) value array behind an output port."""
        return self._schedule.port_store[
            self._port_index(block_name, port_name)].copy()

    def poke(self, block_name: str, port_name: str, lane: int,
             value: int) -> None:
        """Write one lane of an output port (fault injection's
        ``stuck_at``).  Copy-on-write: port arrays may alias state
        arrays, so the slot is replaced, never mutated."""
        self.poke_slot(self._port_index(block_name, port_name), lane, value)

    def force_handle(self, block_name: str, port_name: str,
                     lane: int) -> tuple[int, "OutputPort"]:
        """Resolve a (port-store index, per-lane clone port) pair for a
        repeated per-cycle force — the ``stuck_at`` fast path.  Raises
        :class:`BatchUnsupported` when the schedule does not track the
        port (the lane must then be evicted to a scalar replay)."""
        k = self._port_index(block_name, port_name)
        port = self.template.block(block_name).outputs[port_name]
        clone = self._schedule.ctx.lane_ports(port)[lane]
        return k, clone

    def poke_slot(self, k: int, lane: int, value: int) -> None:
        """:meth:`poke` by pre-resolved port-store index."""
        arr = self._schedule.port_store[k].copy()
        arr[lane] = value
        self._schedule.port_store[k] = arr
        kernel = self._schedule.ckernel
        if kernel is not None:
            kernel.rebind(k, arr)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<BatchedModel {self.template.name!r} x{self.n}: "
                f"{len(self._lanes)} active>")
