"""The gateway's write-ahead journal: crash-safe job state.

PR 9's gateway kept its job table in memory only — a gateway crash
silently dropped every queued *and* running job.  This module is the
durability layer behind ``mb32-farm serve --recover``: an append-only
JSON-lines log of job submissions and state transitions, written
*before* the corresponding in-memory transition takes effect, so a
crashed gateway can be restarted and replay itself back to a
consistent table:

* ``submit``  — the job id, full :class:`~repro.farm.protocol.JobSpec`
  and fingerprint of every admitted job,
* ``progress`` — the latest checkpoint document of a preempted
  cycle-granular job (``scenario`` / ``multi_scenario``), so recovery
  resumes from the last checkpoint instead of cycle 0,
* ``units`` — completed shard records of a sharded job (``sweep`` /
  ``campaign``), so recovery only re-runs the missing units,
* ``done`` / ``failed`` — terminal transitions; a completed cacheable
  job's bytes live in the content-addressed
  :class:`~repro.farm.cache.FarmCache` (the WAL stores only the
  pointer), while non-cacheable results are inlined so they survive
  too.

Every line is sealed with a per-record digest
(:func:`repro.runapi.durable.seal_record`); replay stops at the first
truncated or damaged line — the standard WAL-tail rule — so a crash
mid-append costs at most the final record, never a corrupted table.
"""

from __future__ import annotations

import contextlib
import json
import os
import pathlib
from typing import Any

from repro.runapi.durable import record_intact, seal_record

WAL_FORMAT = "mb32-farm-wal"
WAL_VERSION = 1

#: journal event verbs
EV_SUBMIT = "submit"
EV_PROGRESS = "progress"
EV_UNITS = "units"
EV_DONE = "done"
EV_FAILED = "failed"


class GatewayJournal:
    """Append-only, sealed, replayable journal of gateway events."""

    def __init__(self, path: str | os.PathLike, *, fsync: bool = False):
        self.path = pathlib.Path(path)
        self.fsync = fsync
        self._fh: Any = None
        self.records_written = 0

    def open(self) -> None:
        """Open for appending, writing the header on a fresh file."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        self._fh = open(self.path, "a", encoding="utf-8")
        if fresh:
            self.record({"ev": "header", "format": WAL_FORMAT,
                         "version": WAL_VERSION})

    def record(self, event: dict[str, Any]) -> None:
        """Seal and append one event, flushed to the OS immediately
        (``fsync=True`` additionally syncs to stable storage — power
        -loss durability at a per-event fsync cost)."""
        if self._fh is None:
            return
        # canonicalize through a JSON round-trip so the seal digest is
        # computed on exactly what replay will parse (tuples -> lists)
        event = json.loads(json.dumps(event, default=repr))
        self._fh.write(json.dumps(seal_record(event)) + "\n")
        self._fh.flush()
        if self.fsync:
            with contextlib.suppress(OSError, ValueError):
                os.fsync(self._fh.fileno())
        self.records_written += 1

    def replay(self) -> list[dict[str, Any]]:
        """Parse the intact prefix of an existing journal.

        Returns the event records in append order (header excluded);
        replay stops at the first truncated or damaged line.  A
        missing file replays as empty; a file that is not a farm WAL
        raises ``ValueError`` (refusing to "recover" from garbage).
        """
        if not self.path.exists():
            return []
        events: list[dict[str, Any]] = []
        header_seen = False
        with open(self.path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    break  # torn tail from a crash mid-append
                if not record_intact(rec):
                    break  # damaged line: replay the intact prefix
                if not header_seen:
                    header_seen = True
                    if (not isinstance(rec, dict)
                            or rec.get("format") != WAL_FORMAT
                            or rec.get("version") != WAL_VERSION):
                        raise ValueError(
                            f"{self.path} is not an mb32-farm "
                            f"write-ahead journal"
                        )
                    continue
                events.append(rec)
        return events

    def sync(self) -> None:
        """Force everything appended so far to stable storage."""
        if self._fh is not None:
            self._fh.flush()
            with contextlib.suppress(OSError, ValueError):
                os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None
