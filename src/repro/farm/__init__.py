"""Co-simulation as a service: the asyncio job farm.

The paper's own workflow is already client/server — ``mb-gdb`` talks
to the cycle-accurate simulator over TCP — and this package extends
that split to fleet scale: an asyncio **gateway**
(:mod:`repro.farm.gateway`) accepts compile+simulate jobs over
HTTP/JSON (stdlib-only: hand-rolled HTTP/1.1 on :mod:`asyncio`),
multiplexes thousands of concurrent sessions, and dispatches work to a
pool of process **workers** (:mod:`repro.farm.worker`).

The pieces that make it a farm rather than a queue:

* **content-addressed deduplication** — every job is keyed by
  :func:`repro.farm.protocol.job_fingerprint` (built on the public
  :mod:`repro.runapi.fingerprint` recipe).  A result already on disk
  (:class:`repro.farm.cache.FarmCache`) is replayed byte-identically
  in microseconds; concurrent duplicates coalesce onto one execution
  and all receive the same bytes,
* **checkpoint preempt + migrate** — long ``scenario`` /
  ``multi_scenario`` runs are preempted at cycle granularity through
  the deterministic checkpoint/restore of
  :mod:`repro.cosim.checkpoint` and resumed on a *different* worker,
  bit-identical to an uninterrupted run; sweep shards and fault
  campaigns migrate at point/trial granularity by shipping their
  completed-unit journal,
* **sweep/campaign sharding** — ``sweep`` and ``campaign`` jobs split
  their points across the worker pool and merge into the same report
  documents ``repro.cosim.sweep`` / ``repro.faults.campaign`` produce
  locally (byte-identical, enforced by tests),
* **per-tenant accounting and load shedding** — queue depth, cache
  hit-rate, simulated cycles/s and per-tenant usage hang off the
  PR-4 telemetry :class:`~repro.telemetry.metrics.MetricsRegistry`
  and are served by ``GET /v1/status``; past ``max_queue`` the
  gateway sheds with ``503``.

Durability and chaos (PR 10): every cache entry is written through the
crash-safe envelope of :mod:`repro.runapi.durable` (torn or bit-flipped
entries quarantine and re-execute instead of being served), the gateway
journals submissions and state transitions to a write-ahead log
(:mod:`repro.farm.wal`) replayed by ``mb32-farm serve --recover``, and
the seeded deterministic chaos harness (:mod:`repro.farm.chaos`,
``mb32-farm chaos``) proves the invariant: every accepted job completes
with bytes identical to a fault-free run, under worker kills, stalls,
corrupted cache writes, dropped connections and gateway crashes.

The ``mb32-farm`` CLI (``serve`` / ``submit`` / ``status`` /
``drain`` / ``chaos``) fronts all of it;
:class:`repro.farm.client.FarmClient` is the in-process client the CLI
and the tests share.
"""

from repro.farm.cache import FarmCache
from repro.farm.chaos import (
    CHAOS_KINDS,
    ChaosPlan,
    ChaosSpec,
    generate_chaos_plan,
    run_chaos_campaign,
)
from repro.farm.client import FarmClient, FarmError, FarmUnavailable
from repro.farm.gateway import FarmGateway, start_farm_thread
from repro.farm.wal import GatewayJournal
from repro.farm.protocol import (
    JOB_KINDS,
    PROTOCOL_VERSION,
    JobSpec,
    job_fingerprint,
)

__all__ = [
    "CHAOS_KINDS",
    "ChaosPlan",
    "ChaosSpec",
    "FarmCache",
    "FarmClient",
    "FarmError",
    "FarmGateway",
    "FarmUnavailable",
    "GatewayJournal",
    "JOB_KINDS",
    "JobSpec",
    "PROTOCOL_VERSION",
    "generate_chaos_plan",
    "job_fingerprint",
    "run_chaos_campaign",
    "start_farm_thread",
]
