"""The asyncio farm gateway.

One process, one event loop, N worker processes.  The gateway owns
four cooperating pieces:

* the **HTTP front** — a hand-rolled asyncio HTTP/1.1 server
  (:mod:`repro.farm.httpio`) multiplexing thousands of concurrent
  keep-alive client sessions over ``/v1/...`` endpoints,
* the **job table** — every submission becomes a :class:`Job` keyed by
  its content fingerprint; duplicates of an in-flight job coalesce
  onto it (one execution, N waiters, byte-identical bytes for all) and
  results land in the content-addressed :class:`~repro.farm.cache
  .FarmCache`, so a re-submission after completion is answered from
  disk in microseconds without touching a worker,
* the **dispatcher** — jobs become :class:`Task` units (whole job, or
  point/trial shards for sweeps and campaigns) pulled by idle workers;
  a preempt request sets the worker's shared event, the worker yields
  a checkpoint (or its completed-unit journal) and the task re-queues
  **excluding that worker** — checkpoint migration.  A worker that
  dies mid-task is detected by pipe EOF; its task re-dispatches and a
  replacement worker is spawned,
* the **meters** — queue depth, busy workers, cache hit/coalesce/shed
  counters, simulated cycles and per-job latency live in a
  :class:`~repro.telemetry.metrics.MetricsRegistry`; per-tenant usage
  is tallied next to it.  ``GET /v1/status`` serves both, and
  ``max_queue`` turns the queue-depth gauge into load shedding (503).

Endpoints
---------
=============================  =======================================
``POST /v1/jobs``              submit (``?wait=1`` to block for the
                               result, ``&timeout_s=`` to bound it)
``GET  /v1/jobs/<id>``         status (+ result once done)
``GET  /v1/jobs/<id>/result``  the raw result document bytes
``POST /v1/jobs/<id>/preempt`` checkpoint + migrate a running job
``GET  /v1/status``            farm status, metrics, tenants
``GET  /v1/healthz``           liveness
``POST /v1/drain``             finish everything, then shut down
=============================  =======================================
"""

from __future__ import annotations

import asyncio
import contextlib
import multiprocessing
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any

from repro.farm import httpio
from repro.farm.cache import FarmCache
from repro.farm.jobs import PREEMPT_SLICE, _spec_from_payload
from repro.farm.wal import (
    EV_DONE,
    EV_FAILED,
    EV_PROGRESS,
    EV_SUBMIT,
    EV_UNITS,
    GatewayJournal,
)
from repro.farm.protocol import (
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    JobSpec,
    ProtocolError,
    job_fingerprint,
)
from repro.farm.worker import CMD_EXIT, CMD_JOB, worker_main
from repro.telemetry.metrics import MetricsRegistry

#: per-job latency histogram buckets (milliseconds)
LATENCY_BOUNDS_MS = (1, 5, 10, 50, 250, 1_000, 5_000, 30_000)

#: sharded job kinds (unit-boundary migration); everything else is a
#: single task (cycle-boundary checkpoint migration where supported)
SHARDED_KINDS = ("sweep", "campaign")


@dataclass
class Task:
    """One dispatchable unit of work (a whole job, or one shard)."""

    id: int
    job: "Job"
    units: list[int] | None = None
    resume_state: dict[str, Any] | None = None
    exclude_worker: int | None = None


@dataclass
class Job:
    """Gateway-side record of one deduplicated job."""

    id: str
    spec: JobSpec
    fingerprint: str
    state: str = STATE_QUEUED
    cache_hit: bool = False
    submitted: float = 0.0
    finished: float = 0.0
    tenants: dict[str, int] = field(default_factory=dict)
    result_bytes: bytes | None = None
    error: str | None = None
    done: asyncio.Event = field(default_factory=asyncio.Event)
    # sharded bookkeeping
    n_units: int = 0
    records: dict[int, dict[str, Any]] = field(default_factory=dict)
    baseline_cycles: int | None = None
    tasks_inflight: int = 0
    # accounting
    executions: int = 0
    preempts: int = 0
    migrations: int = 0
    cycles: int = 0
    workers_used: set[int] = field(default_factory=set)

    @property
    def wall_ms(self) -> float:
        end = self.finished if self.finished else time.perf_counter()
        return (end - self.submitted) * 1e3

    def status_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "id": self.id,
            "kind": self.spec.kind,
            "state": self.state,
            "fingerprint": self.fingerprint,
            "cache_hit": self.cache_hit,
            "executions": self.executions,
            "preempts": self.preempts,
            "migrations": self.migrations,
            "workers_used": sorted(self.workers_used),
            "cycles": self.cycles,
            "wall_ms": round(self.wall_ms, 3),
            "error": self.error,
        }
        if self.state == STATE_DONE and self.result_bytes is not None:
            import json

            out["result"] = json.loads(self.result_bytes)
        return out


class _WorkerHandle:
    """One worker process + its pipe, preempt event and reader thread."""

    def __init__(self, worker_id: int, ctx, on_message, on_death):
        self.id = worker_id
        self.preempt = ctx.Event()
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(
            target=worker_main,
            args=(child_conn, self.preempt, worker_id),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.task: Task | None = None
        self.alive = True
        self._on_message = on_message
        self._on_death = on_death
        self._thread = threading.Thread(
            target=self._read_loop, daemon=True,
            name=f"farm-worker-{worker_id}-reader",
        )
        self._thread.start()

    def _read_loop(self) -> None:
        while True:
            try:
                msg = self.conn.recv()
            except (EOFError, OSError):
                self._on_death(self)
                return
            if msg.get("cmd") == CMD_EXIT:
                return
            self._on_message(self, msg)

    def kill(self) -> None:
        self.alive = False
        with contextlib.suppress(OSError, ValueError):
            self.conn.close()
        if self.process.is_alive():
            self.process.terminate()
        self.process.join(timeout=5)


class FarmGateway:
    """The co-simulation-as-a-service gateway (one per host/port)."""

    def __init__(
        self,
        *,
        workers: int = 4,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: str | None = None,
        max_queue: int = 10_000,
        preempt_slice: int = PREEMPT_SLICE,
        journal_path: str | None = None,
        recover: bool = False,
        wal_fsync: bool = False,
    ):
        if workers < 1:
            raise ValueError("a farm needs at least one worker")
        if recover and journal_path is None:
            raise ValueError("recover=True needs a journal_path")
        self.requested_workers = workers
        self.host = host
        self.port = port
        self.cache = FarmCache(cache_dir) if cache_dir else None
        self.max_queue = max_queue
        self.preempt_slice = preempt_slice
        self.journal = (
            GatewayJournal(journal_path, fsync=wal_fsync)
            if journal_path else None
        )
        self.recover = recover

        self.metrics = MetricsRegistry()
        self.tenants: dict[str, dict[str, int]] = {}
        self.jobs: dict[str, Job] = {}
        self._inflight: dict[str, Job] = {}
        self._queue: deque[Task] = deque()
        self._workers: dict[int, _WorkerHandle] = {}
        self._next_job = 0
        self._next_task = 0
        self._next_worker = 0
        self._draining = False
        self._drained = None  # asyncio.Event, created in start()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._address: tuple[str, int] | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._ctx = multiprocessing.get_context()
        self.started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        assert self._address is not None, "gateway not started"
        return self._address

    async def start(self) -> None:
        """Spawn the worker pool, replay the write-ahead journal when
        recovering, and start accepting connections."""
        self._loop = asyncio.get_running_loop()
        self._drained = asyncio.Event()
        recovered_events = None
        if self.journal is not None and self.recover:
            recovered_events = self.journal.replay()
        for _ in range(self.requested_workers):
            self._spawn_worker()
        if self.journal is not None:
            self.journal.open()
        if recovered_events is not None:
            self._recover(recovered_events)
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self._address = self._server.sockets[0].getsockname()[:2]
        self.started = True

    async def serve_forever(self) -> None:
        """Run until drained (``POST /v1/drain``) or cancelled."""
        assert self._drained is not None
        await self._drained.wait()

    async def close(self) -> None:
        """Stop immediately: drop the queue, kill workers, close."""
        self._draining = True
        self._queue.clear()
        for job in list(self._inflight.values()):
            if not job.done.is_set():
                self._fail_job(job, "gateway closed")
        for handle in list(self._workers.values()):
            handle.kill()
        self._workers.clear()
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        self._cancel_connections()
        if self.journal is not None:
            self.journal.close()
        if self._drained is not None:
            self._drained.set()

    async def crash(self) -> None:
        """Abrupt stop simulating a gateway crash: kill the workers
        and the listener *without* recording any job outcome — the
        write-ahead journal (flushed on every append) is the only
        survivor, exactly as after a real ``SIGKILL``.  Chaos/test
        infrastructure only."""
        self._draining = True
        self._queue.clear()
        for handle in list(self._workers.values()):
            handle.alive = False  # suppress the death-handler respawn
            handle.kill()
        self._workers.clear()
        if self._server is not None:
            self._server.close()
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        self._cancel_connections()
        if self._drained is not None:
            self._drained.set()

    async def drain(self) -> dict[str, Any]:
        """Finish every queued/running job, then shut down cleanly."""
        self._draining = True
        pending = [
            job for job in self._inflight.values() if not job.done.is_set()
        ]
        for job in pending:
            await job.done.wait()
        for handle in list(self._workers.values()):
            if handle.alive:
                with contextlib.suppress(OSError, ValueError):
                    handle.conn.send({"cmd": CMD_EXIT})
        assert self._loop is not None
        for handle in list(self._workers.values()):
            handle.alive = False
            # join in the executor: never block the event loop
            await self._loop.run_in_executor(
                None, handle.process.join, 5
            )
        if self._server is not None:
            self._server.close()
        completed = sum(
            1 for j in self.jobs.values() if j.state == STATE_DONE
        )
        self._cancel_connections()
        if self.journal is not None:
            self.journal.close()
        if self._drained is not None:
            self._drained.set()
        return {"drained": True, "jobs_completed": completed}

    def _cancel_connections(self) -> None:
        """Drop idle keep-alive connections so shutdown leaves no
        pending tasks behind (the caller's own connection survives
        long enough to receive its response)."""
        current = asyncio.current_task()
        for task in list(self._conn_tasks):
            if task is not current and not task.done():
                task.cancel()

    def _spawn_worker(self) -> _WorkerHandle:
        worker_id = self._next_worker
        self._next_worker += 1
        handle = _WorkerHandle(
            worker_id,
            self._ctx,
            on_message=self._on_worker_message_threadsafe,
            on_death=self._on_worker_death_threadsafe,
        )
        self._workers[worker_id] = handle
        return handle

    # ------------------------------------------------------------------
    # worker I/O (reader threads -> event loop)
    # ------------------------------------------------------------------
    def _on_worker_message_threadsafe(self, handle, msg) -> None:
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._on_worker_message, handle, msg)

    def _on_worker_death_threadsafe(self, handle) -> None:
        assert self._loop is not None
        self._loop.call_soon_threadsafe(self._on_worker_death, handle)

    def _on_worker_death(self, handle: _WorkerHandle) -> None:
        if not handle.alive:
            return  # deliberate shutdown
        handle.alive = False
        self._workers.pop(handle.id, None)
        self.metrics.counter("farm.workers.deaths").inc()
        task = handle.task
        handle.task = None
        if not self._draining:
            self._spawn_worker()
        if task is not None:
            # the stint died with the worker: re-dispatch from the last
            # known state (the resume_state it was launched with)
            self._queue.appendleft(task)
        self._pump()

    def _on_worker_message(self, handle: _WorkerHandle, msg: dict) -> None:
        task = handle.task
        handle.task = None
        self._gauge_workers()
        if task is None:
            return  # stale reply from a reassigned worker; ignore
        job = task.job
        job.executions += 1
        job.workers_used.add(handle.id)
        job.cycles += int(msg.get("cycles") or 0)
        self.metrics.counter("farm.cycles").inc(int(msg.get("cycles") or 0))

        if not msg.get("ok"):
            self._fail_job(job, msg.get("error") or "worker error")
        elif msg.get("outcome") == "preempted":
            job.preempts += 1
            self.metrics.counter("farm.jobs.preempts").inc()
            follow = Task(
                id=self._new_task_id(),
                job=job,
                exclude_worker=handle.id,
            )
            if task.units is not None:  # shard: journal migration
                self._absorb_shard_records(job, msg)
                follow.units = list(msg.get("remaining", []))
            else:  # checkpoint migration
                follow.resume_state = msg.get("state")
                self._journal({
                    "ev": EV_PROGRESS,
                    "id": job.id,
                    "state": follow.resume_state,
                })
            job.tasks_inflight -= 1
            self._enqueue_task(follow, front=True)
        else:
            job.tasks_inflight -= 1
            if task.units is not None:
                self._absorb_shard_records(job, msg)
                if len(job.records) >= job.n_units and \
                        job.tasks_inflight <= 0:
                    self._finish_sharded_job(job)
            else:
                self._finish_job(job, msg.get("result") or {})
        self._pump()

    def _absorb_shard_records(self, job: Job, msg: dict) -> None:
        """Fold a shard reply's completed-unit records into the job
        (journaling them, so recovery re-runs only the missing
        units)."""
        records = msg.get("records", [])
        for rec in records:
            job.records[rec["index"]] = rec
        if job.baseline_cycles is None:
            job.baseline_cycles = msg.get("baseline_cycles")
        if records:
            self._journal({
                "ev": EV_UNITS,
                "id": job.id,
                "records": records,
                "baseline_cycles": job.baseline_cycles,
            })

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _new_task_id(self) -> int:
        self._next_task += 1
        return self._next_task

    def _enqueue_task(self, task: Task, front: bool = False) -> None:
        task.job.tasks_inflight += 1
        if front:
            self._queue.appendleft(task)
        else:
            self._queue.append(task)
        self._gauge_queue()
        self._pump()

    def _pump(self) -> None:
        """Match queued tasks to idle workers (migration-aware)."""
        if not self._queue:
            self._gauge_queue()
            return
        idle = [
            h for h in self._workers.values()
            if h.alive and h.task is None
        ]
        if not idle:
            return
        multi_worker = len(self._workers) > 1
        progressed = True
        while progressed and idle and self._queue:
            progressed = False
            for qi, task in enumerate(self._queue):
                eligible = next(
                    (
                        h for h in idle
                        if task.exclude_worker is None
                        or h.id != task.exclude_worker
                        or not multi_worker
                    ),
                    None,
                )
                if eligible is None:
                    continue
                del self._queue[qi]
                idle.remove(eligible)
                if (task.exclude_worker is not None
                        and eligible.id != task.exclude_worker):
                    task.job.migrations += 1
                    self.metrics.counter("farm.jobs.migrations").inc()
                self._dispatch(eligible, task)
                progressed = True
                break
        self._gauge_queue()
        self._gauge_workers()

    def _dispatch(self, handle: _WorkerHandle, task: Task) -> None:
        handle.preempt.clear()
        handle.task = task
        job = task.job
        if job.state == STATE_QUEUED:
            job.state = STATE_RUNNING
        cmd = {
            "cmd": CMD_JOB,
            "task": task.id,
            "kind": job.spec.kind,
            "payload": job.spec.payload,
            "units": task.units,
            "resume_state": task.resume_state,
            "preempt_slice": self.preempt_slice,
        }
        assert self._loop is not None
        # pipe sends can block when the buffer is full; keep the loop free
        self._loop.run_in_executor(None, self._send_to_worker, handle, cmd)

    def _send_to_worker(self, handle: _WorkerHandle, cmd: dict) -> None:
        try:
            handle.conn.send(cmd)
        except (OSError, ValueError):
            pass  # the reader thread will surface the death

    # ------------------------------------------------------------------
    # job lifecycle
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> tuple[Job, bool, bool]:
        """Admit one submission; returns (job, coalesced, shed)."""
        tenant = self._tenant(spec.tenant)
        tenant["submitted"] += 1
        self.metrics.counter("farm.jobs.submitted").inc()

        if self._draining or len(self._queue) >= self.max_queue:
            tenant["shed"] += 1
            self.metrics.counter("farm.jobs.shed").inc()
            return self._shed_job(spec), False, True

        fingerprint = job_fingerprint(spec)

        # 1. content-addressed cache: served without touching a worker
        if spec.cacheable and self.cache is not None:
            hit = self.cache.get(fingerprint)
            if hit is not None:
                tenant["cache_hits"] += 1
                self.metrics.counter("farm.jobs.cache_hits").inc()
                job = self._new_job(spec, fingerprint)
                job.cache_hit = True
                job.result_bytes = hit
                job.state = STATE_DONE
                job.finished = time.perf_counter()
                job.done.set()
                self._observe_latency(job)
                tenant["completed"] += 1
                self.metrics.counter("farm.jobs.completed").inc()
                return job, False, False

        # 2. in-flight coalescing: one execution, N waiters
        running = self._inflight.get(fingerprint)
        if running is not None and spec.cacheable:
            tenant["coalesced"] += 1
            running.tenants[spec.tenant] = \
                running.tenants.get(spec.tenant, 0) + 1
            self.metrics.counter("farm.jobs.coalesced").inc()
            return running, True, False

        # 3. fresh work
        job = self._new_job(spec, fingerprint)
        if spec.cacheable:
            self._inflight[fingerprint] = job
        self._enqueue_job(job)
        return job, False, False

    def _journal(self, event: dict[str, Any]) -> None:
        if self.journal is not None:
            self.journal.record(event)
            self.metrics.counter("farm.wal.records").inc()

    def _new_job(self, spec: JobSpec, fingerprint: str) -> Job:
        self._next_job += 1
        job = Job(
            id=f"j{self._next_job:06d}",
            spec=spec,
            fingerprint=fingerprint,
            submitted=time.perf_counter(),
        )
        job.tenants[spec.tenant] = 1
        self.jobs[job.id] = job
        # write-ahead: the submission is on disk before any state
        # transition, so a crash cannot silently drop an accepted job
        self._journal({
            "ev": EV_SUBMIT,
            "id": job.id,
            "fingerprint": fingerprint,
            "spec": spec.to_dict(),
        })
        return job

    def _shed_job(self, spec: JobSpec) -> Job:
        job = self._new_job(spec, job_fingerprint(spec))
        job.state = STATE_FAILED
        job.error = "overloaded" if not self._draining else "draining"
        job.finished = time.perf_counter()
        job.done.set()
        return job

    def _enqueue_job(self, job: Job) -> None:
        spec = job.spec
        if spec.kind in SHARDED_KINDS:
            if spec.kind == "sweep":
                points = spec.payload.get("points")
                if not isinstance(points, list) or not points:
                    self._fail_job(
                        job, 'sweep payload needs a non-empty "points" array'
                    )
                    return
                job.n_units = len(points)
            else:  # campaign
                config = spec.payload.get("config")
                if not isinstance(config, dict) or \
                        int(config.get("trials", 0)) < 1:
                    self._fail_job(
                        job,
                        'campaign payload needs {"config": {...}} with '
                        'trials >= 1',
                    )
                    return
                job.n_units = int(config["trials"])
            self._enqueue_units(job, list(range(job.n_units)))
        else:
            self._enqueue_task(Task(id=self._new_task_id(), job=job))

    def _enqueue_units(self, job: Job, units: list[int]) -> None:
        """Shard ``units`` across the worker pool as dispatch tasks."""
        shards = max(1, min(len(self._workers), len(units)))
        bounds = [
            (len(units) * s // shards, len(units) * (s + 1) // shards)
            for s in range(shards)
        ]
        for lo, hi in bounds:
            if lo < hi:
                self._enqueue_task(
                    Task(
                        id=self._new_task_id(),
                        job=job,
                        units=units[lo:hi],
                    )
                )

    # ------------------------------------------------------------------
    # crash recovery
    # ------------------------------------------------------------------
    def _recover(self, events: list[dict[str, Any]]) -> None:
        """Rebuild the job table from the write-ahead journal.

        Completed jobs serve from the content-addressed cache (or
        their inlined bytes); jobs whose cached result was quarantined
        as damaged re-queue and re-execute; queued jobs re-queue;
        running cycle-granular jobs resume from their last journaled
        checkpoint and sharded jobs re-run only their missing units —
        all through the same dispatch paths a live job uses.
        """
        folded: dict[str, dict[str, Any]] = {}
        order: list[str] = []
        for ev in events:
            kind, jid = ev.get("ev"), ev.get("id")
            if kind == EV_SUBMIT and isinstance(jid, str):
                if jid not in folded:
                    order.append(jid)
                folded[jid] = {"submit": ev, "records": {},
                               "baseline": None, "state": None,
                               "terminal": None}
            elif jid in folded:
                entry = folded[jid]
                if kind == EV_PROGRESS:
                    entry["state"] = ev.get("state")
                elif kind == EV_UNITS:
                    for rec in ev.get("records", []):
                        entry["records"][int(rec["index"])] = rec
                    if entry["baseline"] is None:
                        entry["baseline"] = ev.get("baseline_cycles")
                elif kind in (EV_DONE, EV_FAILED):
                    entry["terminal"] = ev

        for jid in order:
            entry = folded[jid]
            try:
                spec = JobSpec.from_dict(entry["submit"]["spec"])
            except ProtocolError:
                continue  # journaled by a future/foreign version
            job = Job(
                id=jid,
                spec=spec,
                fingerprint=str(entry["submit"]["fingerprint"]),
                submitted=time.perf_counter(),
            )
            job.tenants[spec.tenant] = 1
            self.jobs[jid] = job
            with contextlib.suppress(ValueError):
                self._next_job = max(self._next_job, int(jid.lstrip("j")))
            terminal = entry["terminal"]
            if terminal is not None and terminal["ev"] == EV_FAILED:
                job.state = STATE_FAILED
                job.error = terminal.get("error")
                job.finished = job.submitted
                job.done.set()
                self.metrics.counter("farm.recovery.failed").inc()
                continue
            body: bytes | None = None
            if terminal is not None:  # EV_DONE
                if terminal.get("cached"):
                    if self.cache is not None:
                        body = self.cache.get(job.fingerprint)
                elif isinstance(terminal.get("body"), str):
                    body = terminal["body"].encode("ascii")
            elif spec.cacheable and self.cache is not None:
                # completed-but-unjournaled (crash between cache.put
                # and the WAL append) or a twin's bytes: serve them
                body = self.cache.get(job.fingerprint)
            if body is not None:
                job.result_bytes = body
                job.state = STATE_DONE
                job.cache_hit = terminal is None or \
                    bool(terminal.get("cached"))
                job.finished = job.submitted
                job.done.set()
                self.metrics.counter("farm.recovery.replayed_done").inc()
                continue
            # pending (or done-but-quarantined): re-queue and run again
            if terminal is not None:
                self.metrics.counter("farm.recovery.reexecuted").inc()
            if spec.cacheable:
                self._inflight[job.fingerprint] = job
            self.metrics.counter("farm.recovery.requeued").inc()
            if spec.kind in SHARDED_KINDS:
                self._requeue_sharded(job, entry)
            else:
                task = Task(
                    id=self._new_task_id(),
                    job=job,
                    resume_state=entry["state"],
                )
                self._enqueue_task(task)

    def _requeue_sharded(
        self, job: Job, entry: dict[str, Any]
    ) -> None:
        """Re-queue a sharded job minus its journaled completed
        units (falling back to full validation/sharding in
        ``_enqueue_job`` when nothing completed yet)."""
        job.records = dict(entry["records"])
        if entry["baseline"] is not None:
            job.baseline_cycles = int(entry["baseline"])
        if not job.records:
            self._enqueue_job(job)
            return
        spec = job.spec
        if spec.kind == "sweep":
            job.n_units = len(spec.payload.get("points") or [])
        else:
            job.n_units = int(
                (spec.payload.get("config") or {}).get("trials", 0)
            )
        missing = [
            i for i in range(job.n_units) if i not in job.records
        ]
        if not missing:
            self._finish_sharded_job(job)
        else:
            self._enqueue_units(job, missing)

    def _fail_job(self, job: Job, error: str) -> None:
        job.state = STATE_FAILED
        job.error = error
        job.finished = time.perf_counter()
        self._inflight.pop(job.fingerprint, None)
        self.metrics.counter("farm.jobs.failed").inc()
        for tenant_name in job.tenants:
            self._tenant(tenant_name)["failed"] += 1
        self._journal({"ev": EV_FAILED, "id": job.id, "error": error})
        job.done.set()

    def _finish_job(self, job: Job, result_doc: dict[str, Any]) -> None:
        document = {
            "format": "mb32-farm-result",
            "version": 1,
            "kind": job.spec.kind,
            "fingerprint": job.fingerprint,
            **result_doc,
        }
        self._complete(job, httpio.json_body(document))

    def _finish_sharded_job(self, job: Job) -> None:
        try:
            if job.spec.kind == "sweep":
                body = self._merge_sweep(job)
            else:
                body = self._merge_campaign(job)
        except Exception as exc:
            self._fail_job(job, f"shard merge failed: "
                                f"{type(exc).__name__}: {exc}")
            return
        self._finish_job(job, body)

    def _merge_sweep(self, job: Job) -> dict[str, Any]:
        """Assemble the shard journals into the exact per-point records
        a local ``sweep()`` produces (same DSEResult dict layout)."""
        from repro.cosim.sweep import (
            _payload_from_jsonable,
            _to_dse_result,
        )

        points = job.spec.payload["points"]
        results = []
        for index in range(job.n_units):
            rec = job.records[index]
            spec = _spec_from_payload(points[index], f"point-{index}")
            result = _to_dse_result(
                spec,
                _payload_from_jsonable(rec["payload"]),
                rec.get("attempts", 1),
                rec.get("backoff_s", []),
            )
            results.append(result.to_dict())
        ok = sum(1 for r in results if r["status"] == "ok")
        return {
            "family": "sweep",
            "points": job.n_units,
            "ok": ok,
            "failed": job.n_units - ok,
            "results": results,
        }

    def _merge_campaign(self, job: Job) -> dict[str, Any]:
        """Assemble trial shards into the exact
        :meth:`~repro.faults.campaign.CampaignReport.to_dict` document
        the local scalar runner produces (byte-identical)."""
        from repro.faults.campaign import CampaignReport
        from repro.farm.jobs import campaign_config_from_dict

        config = campaign_config_from_dict(job.spec.payload["config"])
        trials = [
            job.records[index]["trial"] for index in range(job.n_units)
        ]
        report = CampaignReport(
            config=config,
            baseline_cycles=int(job.baseline_cycles or 0),
            trials=trials,
            workers=len(self._workers),
        )
        return {"family": "campaign", "report": report.to_dict()}

    def _complete(self, job: Job, body: bytes) -> None:
        job.result_bytes = body
        job.state = STATE_DONE
        job.finished = time.perf_counter()
        self._inflight.pop(job.fingerprint, None)
        cached = job.spec.cacheable and self.cache is not None
        if cached:
            # cache first, then journal: a crash between the two
            # re-queues the job on recovery (cache miss -> re-execute)
            # rather than pointing at bytes that never landed
            self.cache.put(job.fingerprint, body)
        done_event: dict[str, Any] = {
            "ev": EV_DONE, "id": job.id, "cached": cached,
        }
        if not cached:
            # json_body output is ASCII; inline it so even uncached
            # results survive a restart byte-identically
            done_event["body"] = body.decode("ascii")
        self._journal(done_event)
        self._observe_latency(job)
        self.metrics.counter("farm.jobs.completed").inc()
        for tenant_name, n in job.tenants.items():
            tenant = self._tenant(tenant_name)
            tenant["completed"] += n
            tenant["cycles"] += job.cycles
        job.done.set()

    # ------------------------------------------------------------------
    # preemption
    # ------------------------------------------------------------------
    def preempt_job(self, job: Job) -> int:
        """Raise the preempt flag on every worker running this job."""
        n = 0
        for handle in self._workers.values():
            if handle.task is not None and handle.task.job is job:
                handle.preempt.set()
                n += 1
        return n

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------
    def _tenant(self, name: str) -> dict[str, int]:
        tenant = self.tenants.get(name)
        if tenant is None:
            tenant = self.tenants[name] = {
                "submitted": 0,
                "completed": 0,
                "failed": 0,
                "cache_hits": 0,
                "coalesced": 0,
                "shed": 0,
                "cycles": 0,
            }
        return tenant

    def _observe_latency(self, job: Job) -> None:
        self.metrics.histogram(
            "farm.latency_ms", LATENCY_BOUNDS_MS
        ).observe(max(0, int(job.wall_ms)))

    def _gauge_queue(self) -> None:
        self.metrics.gauge("farm.queue_depth").set(len(self._queue))

    def _gauge_workers(self) -> None:
        busy = sum(
            1 for h in self._workers.values()
            if h.alive and h.task is not None
        )
        self.metrics.gauge("farm.busy_workers").set(busy)

    def status_dict(self) -> dict[str, Any]:
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "workers": {
                "total": len(self._workers),
                "busy": sum(
                    1 for h in self._workers.values()
                    if h.alive and h.task is not None
                ),
            },
            "queue_depth": len(self._queue),
            "draining": self._draining,
            "jobs": states,
            "cache_entries": len(self.cache) if self.cache else 0,
            "cache_quarantined": (
                self.cache.quarantined() if self.cache else 0
            ),
            "cache_stats": dict(self.cache.stats) if self.cache else {},
            "wal_records": (
                self.journal.records_written if self.journal else 0
            ),
            "metrics": self.metrics.snapshot(),
            "tenants": {k: dict(v) for k, v in sorted(self.tenants.items())},
        }

    # ------------------------------------------------------------------
    # HTTP front
    # ------------------------------------------------------------------
    async def _serve_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    request = await httpio.read_request(reader)
                except httpio.HTTPProtocolError as exc:
                    writer.write(
                        httpio.response_bytes(
                            400,
                            httpio.json_body({"error": str(exc)}),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    return
                if request is None:
                    return
                response = await self._route(request)
                fault = httpio.response_fault
                if fault is not None:
                    action = fault(request, response)
                    if action is not None:
                        verb, n = action
                        self.metrics.counter("farm.chaos.conn_faults").inc()
                        if verb == "truncate" and n > 0:
                            writer.write(response[:n])
                            with contextlib.suppress(Exception):
                                await writer.drain()
                        return  # drop the connection mid-exchange
                writer.write(response)
                await writer.drain()
                if request.headers.get("connection", "").lower() == "close":
                    return
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            return
        except asyncio.CancelledError:
            return  # shutdown dropped this idle keep-alive connection
        finally:
            with contextlib.suppress(Exception):
                writer.close()

    async def _route(self, request: httpio.Request) -> bytes:
        try:
            return await self._route_inner(request)
        except (ProtocolError, httpio.HTTPProtocolError) as exc:
            return httpio.response_bytes(
                400, httpio.json_body({"error": str(exc)})
            )
        except Exception as exc:  # never kill the connection loop
            return httpio.response_bytes(
                500,
                httpio.json_body(
                    {"error": f"{type(exc).__name__}: {exc}"}
                ),
            )

    async def _route_inner(self, request: httpio.Request) -> bytes:
        method, path = request.method, request.path
        if path == "/v1/healthz" and method == "GET":
            return httpio.response_bytes(
                200, httpio.json_body({"ok": True})
            )
        if path == "/v1/status" and method == "GET":
            return httpio.response_bytes(
                200, httpio.json_body(self.status_dict())
            )
        if path == "/v1/jobs" and method == "POST":
            return await self._handle_submit(request)
        if path == "/v1/drain" and method == "POST":
            result = await self.drain()
            return httpio.response_bytes(
                200, httpio.json_body(result), keep_alive=False
            )
        if path.startswith("/v1/jobs/"):
            parts = path.split("/")
            # /v1/jobs/<id>[/result|/preempt] -> ['', 'v1', 'jobs', id, ...]
            job = self.jobs.get(parts[3]) if len(parts) > 3 else None
            if job is None:
                return httpio.response_bytes(
                    404, httpio.json_body({"error": "no such job"})
                )
            tail = parts[4] if len(parts) > 4 else ""
            if tail == "" and method == "GET":
                return await self._handle_job_status(request, job)
            if tail == "result" and method == "GET":
                if job.state != STATE_DONE or job.result_bytes is None:
                    return httpio.response_bytes(
                        404,
                        httpio.json_body(
                            {"error": f"job is {job.state}",
                             "state": job.state}
                        ),
                    )
                return httpio.response_bytes(200, job.result_bytes)
            if tail == "preempt" and method == "POST":
                n = self.preempt_job(job)
                return httpio.response_bytes(
                    200,
                    httpio.json_body(
                        {"id": job.id, "state": job.state, "preempting": n}
                    ),
                )
        return httpio.response_bytes(
            404, httpio.json_body({"error": f"no route {method} {path}"})
        )

    async def _handle_submit(self, request: httpio.Request) -> bytes:
        spec = JobSpec.from_dict(request.json())
        header_tenant = request.headers.get("x-mb32-tenant")
        if header_tenant:
            spec.tenant = header_tenant
        job, coalesced, shed = self.submit(spec)
        if shed:
            return httpio.response_bytes(
                503,
                httpio.json_body(
                    {"id": job.id, "state": job.state, "error": job.error}
                ),
                extra_headers={"Retry-After": "1"},
            )
        if request.flag("wait"):
            await self._wait_for(job, request)
        status = job.status_dict()
        status["coalesced"] = coalesced
        code = 200 if job.done.is_set() else 202
        return httpio.response_bytes(code, httpio.json_body(status))

    async def _handle_job_status(
        self, request: httpio.Request, job: Job
    ) -> bytes:
        if request.flag("wait"):
            await self._wait_for(job, request)
        code = 200 if job.done.is_set() else 202
        return httpio.response_bytes(
            code, httpio.json_body(job.status_dict())
        )

    async def _wait_for(self, job: Job, request: httpio.Request) -> None:
        timeout = request.param("timeout_s")
        try:
            await asyncio.wait_for(
                job.done.wait(),
                float(timeout) if timeout is not None else None,
            )
        except asyncio.TimeoutError:
            pass


# ----------------------------------------------------------------------
# embedding helpers (CLI, tests, benchmarks)
# ----------------------------------------------------------------------
class FarmThread:
    """A gateway running its own event loop in a daemon thread — the
    embedding the tests, benchmarks and ``mb32-farm submit --local``
    use.  ``host``/``port`` are live once the constructor returns."""

    def __init__(self, **gateway_kwargs):
        self.gateway = FarmGateway(**gateway_kwargs)
        self.loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="farm-gateway"
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("farm gateway failed to start")

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)

        async def main():
            await self.gateway.start()
            self._ready.set()
            await self.gateway.serve_forever()

        try:
            self.loop.run_until_complete(main())
        finally:
            # let cancelled connection tasks unwind and final response
            # bytes flush before tearing the loop down
            with contextlib.suppress(Exception):
                pending = [
                    t for t in asyncio.all_tasks(self.loop) if not t.done()
                ]
                if pending:
                    self.loop.run_until_complete(
                        asyncio.wait(pending, timeout=1)
                    )
            self.loop.close()

    @property
    def host(self) -> str:
        return self.gateway.address[0]

    @property
    def port(self) -> int:
        return self.gateway.address[1]

    def stop(self, timeout: float = 30.0) -> None:
        """Hard-stop the gateway and join the loop thread."""
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.gateway.close(), self.loop
            )
            with contextlib.suppress(Exception):
                future.result(timeout=timeout)
        self._thread.join(timeout=timeout)

    def crash(self, timeout: float = 30.0) -> None:
        """Kill the gateway as a crash would: no drain, no job-state
        bookkeeping, only the write-ahead journal survives.  Pair with
        ``start_farm_thread(..., recover=True)`` on the same journal
        and cache to exercise the recovery path."""
        if self._thread.is_alive():
            future = asyncio.run_coroutine_threadsafe(
                self.gateway.crash(), self.loop
            )
            with contextlib.suppress(Exception):
                future.result(timeout=timeout)
        self._thread.join(timeout=timeout)


def start_farm_thread(**gateway_kwargs) -> FarmThread:
    """Start a gateway in a background thread; returns the handle."""
    return FarmThread(**gateway_kwargs)
