"""Worker-side job execution: every farm job kind in one place.

Each executor takes ``(payload, resume_state, should_preempt)`` and
returns one of:

* ``{"outcome": "done", "result": <doc>, "cycles": n}`` — the job
  finished; ``result`` is the JSON document the gateway serializes
  (deterministically — equal work gives equal bytes) and caches,
* ``{"outcome": "preempted", "state": <doc>, "cycles": n}`` — a
  cycle-granular job (``scenario`` / ``multi_scenario``) observed the
  preempt flag; ``state`` is a :mod:`repro.cosim.checkpoint` document
  the gateway hands to the *next* worker, which restores it into a
  freshly built simulation — the PR-5 bit-identical resume, now across
  process (and in principle machine) boundaries,
* ``{"outcome": "preempted", "records": [...], "remaining": [...],
  "cycles": n}`` — a sharded job (``sweep`` / ``campaign``) was
  preempted at a unit boundary; completed unit records travel back
  (the journal form of migration) and the remaining indices are
  re-dispatched elsewhere.

The executors deliberately reuse the existing engines rather than
reimplementing them: ``simulate`` and ``sweep`` units run through the
sweep engine's ``_evaluate`` (same classification, same
``run_timeout`` budget enforcement, same journal record shape) with
retries slept through the shared :func:`repro.runapi.backoff` policy;
``campaign`` units run through the fault campaign's own per-trial
evaluator and produce the exact trial records the local scalar
runner emits.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.cosim.checkpoint import checkpoint_to_dict, restore_from_dict
from repro.cosim.dse import STATUS_OK
from repro.cosim.environment import CoSimDeadlock
from repro.cosim.partition import DesignSpec
from repro.cosim.sweep import (
    RETRIABLE,
    _evaluate,
    _payload_to_jsonable,
)
from repro.iss.cpu import HaltReason
from repro.runapi.backoff import retry_backoff_delay
from repro.runapi.engine import engine_scope

#: cycles between preempt-flag checks inside a scenario run — small
#: enough that a preempt lands within microseconds of simulated work,
#: large enough that the slice loop adds no measurable overhead.
PREEMPT_SLICE = 4_096

ShouldPreempt = Callable[[], bool]


class JobError(RuntimeError):
    """A malformed or unexecutable job payload (maps to job state
    ``failed``, never to a worker crash)."""


# ----------------------------------------------------------------------
# scenario / multi_scenario: cycle-granular, checkpoint-preemptible
# ----------------------------------------------------------------------
def _load_scenario(payload: dict[str, Any]):
    from repro.conformance.scenario import Scenario, ScenarioGenerator

    if "scenario" in payload:
        return Scenario.from_dict(payload["scenario"])
    if "seed" in payload and "index" in payload:
        gen = ScenarioGenerator(
            seed=int(payload["seed"]),
            max_cycles=int(payload.get("max_cycles", 60_000)),
        )
        return gen.scenario(int(payload["index"]))
    raise JobError(
        'scenario payload needs {"scenario": {...}} or '
        '{"seed": S, "index": I}'
    )


def _load_multi_scenario(payload: dict[str, Any]):
    from repro.conformance.multicpu import (
        MultiScenario,
        MultiScenarioGenerator,
    )

    if "scenario" in payload:
        return MultiScenario.from_dict(payload["scenario"])
    if "seed" in payload and "index" in payload:
        gen = MultiScenarioGenerator(
            seed=int(payload["seed"]),
            max_cycles=int(payload.get("max_cycles", 120_000)),
        )
        return gen.scenario(int(payload["index"]))
    raise JobError(
        'multi_scenario payload needs {"scenario": {...}} or '
        '{"seed": S, "index": I}'
    )


def _run_preemptible(
    sim,
    *,
    max_cycles: int,
    cycle_of: Callable[[], int],
    resume: Callable[[], None],
    should_preempt: ShouldPreempt,
    preempt_slice: int,
) -> tuple[str, str] | None:
    """Drive ``sim`` to its budget in preempt-checkable slices.

    Returns ``(status, error)`` when the run reached a terminal state,
    or ``None`` when the preempt flag was observed (the caller
    checkpoints).  Slicing is invisible to the observable surface: the
    deadlock watchdog checks on absolute cycle multiples and every
    restore is bit-identical, so N slices ≡ one uninterrupted run
    (``tests/test_farm_migrate.py`` enforces this end to end).
    """
    slices_done = 0
    while True:
        done = cycle_of()
        remaining = max_cycles - done
        if remaining <= 0:
            return "max_cycles", ""
        if slices_done > 0 and should_preempt():
            # like the shard executors' ``pos > 0`` guard: a stint
            # always advances at least one slice, so a preempt storm
            # cannot livelock a job
            return None
        step = min(preempt_slice, remaining)
        try:
            result = sim.run(until=step)
        except CoSimDeadlock as exc:
            return "deadlock", str(exc)
        except Exception as exc:  # any crash is an observable
            return f"error:{type(exc).__name__}", str(exc)
        if result.halt_reason is HaltReason.MAX_CYCLES:
            if cycle_of() >= max_cycles:
                return "max_cycles", ""
            resume()  # clear the slice-budget halt and continue
            slices_done += 1
            continue
        return "exit", ""


def run_scenario_job(
    payload: dict[str, Any],
    resume_state: dict[str, Any] | None,
    should_preempt: ShouldPreempt,
    preempt_slice: int = PREEMPT_SLICE,
) -> dict[str, Any]:
    """Execute one single-CPU conformance scenario, checkpointably."""
    from repro.conformance.oracle import _capture, _make_sim
    from repro.conformance.scenario import build_program

    scenario = _load_scenario(payload)
    fast_forward = bool(payload.get("fast_forward", True))
    program = build_program(scenario)
    sim, _trace = _make_sim(scenario, program, fast_forward=fast_forward)
    if resume_state is not None:
        restore_from_dict(sim, resume_state)
        sim.cpu.resume()  # clear the halt at the preemption point
    start_cycle = sim.cpu.cycle
    finished = _run_preemptible(
        sim,
        max_cycles=scenario.max_cycles,
        cycle_of=lambda: sim.cpu.cycle,
        resume=sim.cpu.resume,
        should_preempt=should_preempt,
        preempt_slice=preempt_slice,
    )
    stint = sim.cpu.cycle - start_cycle
    if finished is None:
        return {
            "outcome": "preempted",
            "state": checkpoint_to_dict(sim, label=scenario.name),
            "cycles": stint,
        }
    status, error = finished
    # trace=None: the FSL transaction log is a tracer, not simulation
    # state, so it cannot migrate — captured uniformly as empty to keep
    # fresh and migrated runs byte-identical.
    obs = _capture(sim, "farm", status, error, None)
    return {
        "outcome": "done",
        "result": {
            "family": "scenario",
            "name": scenario.name,
            "observation": obs.comparable(),
        },
        "cycles": stint,
    }


def run_multi_scenario_job(
    payload: dict[str, Any],
    resume_state: dict[str, Any] | None,
    should_preempt: ShouldPreempt,
    preempt_slice: int = PREEMPT_SLICE,
) -> dict[str, Any]:
    """Execute one K-CPU conformance scenario, checkpointably."""
    from repro.conformance.multicpu import build_multi_sim, build_programs
    from repro.conformance.oracle import _capture_multi

    scenario = _load_multi_scenario(payload)
    fast_forward = bool(payload.get("fast_forward", True))
    programs = build_programs(scenario)
    sim, _trace = build_multi_sim(
        scenario, programs, fast_forward=fast_forward
    )
    if resume_state is not None:
        restore_from_dict(sim, resume_state)
        sim.resume()
    start_cycle = sim.cycle
    finished = _run_preemptible(
        sim,
        max_cycles=scenario.max_cycles,
        cycle_of=lambda: sim.cycle,
        resume=sim.resume,
        should_preempt=should_preempt,
        preempt_slice=preempt_slice,
    )
    stint = sim.cycle - start_cycle
    if finished is None:
        return {
            "outcome": "preempted",
            "state": checkpoint_to_dict(sim, label=scenario.name),
            "cycles": stint,
        }
    status, error = finished
    obs = _capture_multi(sim, "farm", status, error, None)
    return {
        "outcome": "done",
        "result": {
            "family": "multi_scenario",
            "name": scenario.name,
            "observation": obs.comparable(),
        },
        "cycles": stint,
    }


# ----------------------------------------------------------------------
# simulate: one design point through the sweep evaluator
# ----------------------------------------------------------------------
def _spec_from_payload(data: dict[str, Any], default_name: str) -> DesignSpec:
    if "factory" not in data:
        raise JobError('design payload is missing "factory"')
    return DesignSpec(
        name=str(data.get("name", default_name)),
        factory=data["factory"],
        params=dict(data.get("params", {})),
    )


def _evaluate_with_retries(
    spec: DesignSpec,
    *,
    timeout_s: float | None,
    retries: int,
    retry_backoff_s: float,
    backoff_seed: int,
    engine: str,
    evaluate: Callable[..., dict[str, Any]] = _evaluate,
) -> tuple[dict[str, Any], int, list[float]]:
    """The sweep engine's evaluate-retry-backoff loop, one unit at a
    time (the in-worker form of ``sweep(workers=0, retries=...)``)."""
    attempts = 0
    backoffs: list[float] = []
    while True:
        attempts += 1
        with engine_scope(engine):
            payload = evaluate(spec, None, timeout_s, False)
        if payload["status"] in RETRIABLE and attempts <= retries:
            delay = retry_backoff_delay(
                retry_backoff_s, spec.name, attempts, backoff_seed
            )
            backoffs.append(delay)
            if delay > 0:
                time.sleep(delay)
            continue
        return payload, attempts, backoffs


def run_simulate_job(
    payload: dict[str, Any],
    resume_state: dict[str, Any] | None,
    should_preempt: ShouldPreempt,
    preempt_slice: int = PREEMPT_SLICE,
) -> dict[str, Any]:
    """Evaluate one design point (build + run + classify + estimate)."""
    del resume_state, should_preempt, preempt_slice
    spec = _spec_from_payload(
        payload.get("design", payload), default_name="farm-design"
    )
    result, attempts, backoffs = _evaluate_with_retries(
        spec,
        timeout_s=payload.get("timeout_s"),
        retries=int(payload.get("retries", 0)),
        retry_backoff_s=float(payload.get("retry_backoff_s", 0.0)),
        backoff_seed=int(payload.get("backoff_seed", 0)),
        engine=str(payload.get("engine", "auto")),
    )
    doc = _payload_to_jsonable(result)
    cycles = (doc.get("result") or {}).get("cycles") or 0
    return {
        "outcome": "done",
        "result": {
            "family": "simulate",
            "name": spec.name,
            "attempts": attempts,
            "backoff_s": backoffs,
            **doc,
        },
        "cycles": int(cycles),
    }


# ----------------------------------------------------------------------
# sweep shards: units preempt/migrate at point boundaries
# ----------------------------------------------------------------------
def run_sweep_shard(
    payload: dict[str, Any],
    units: list[int],
    should_preempt: ShouldPreempt,
) -> dict[str, Any]:
    """Evaluate the sweep points at indices ``units``.

    Each completed unit becomes a journal-shaped record (the
    :class:`~repro.cosim.sweep.SweepJournal` line layout); a preempt
    observed between units returns the completed records plus the
    untouched indices for re-dispatch.
    """
    points = payload.get("points")
    if not isinstance(points, list) or not points:
        raise JobError('sweep payload needs a non-empty "points" array')
    records: list[dict[str, Any]] = []
    cycles = 0
    for pos, index in enumerate(units):
        if should_preempt() and pos > 0:
            return {
                "outcome": "preempted",
                "records": records,
                "remaining": list(units[pos:]),
                "cycles": cycles,
            }
        spec = _spec_from_payload(points[index], f"point-{index}")
        result, attempts, backoffs = _evaluate_with_retries(
            spec,
            timeout_s=payload.get("timeout_s"),
            retries=int(payload.get("retries", 0)),
            retry_backoff_s=float(payload.get("retry_backoff_s", 0.0)),
            backoff_seed=int(payload.get("backoff_seed", 0)),
            engine=str(payload.get("engine", "auto")),
        )
        doc = _payload_to_jsonable(result)
        cycles += (doc.get("result") or {}).get("cycles") or 0
        records.append(
            {
                "index": index,
                "attempts": attempts,
                "backoff_s": backoffs,
                "payload": doc,
            }
        )
    return {"outcome": "done", "records": records, "cycles": cycles}


# ----------------------------------------------------------------------
# campaign shards: trials preempt/migrate at trial boundaries
# ----------------------------------------------------------------------
def campaign_config_from_dict(data: dict[str, Any]):
    """Rebuild a :class:`~repro.faults.campaign.CampaignConfig` from
    its ``to_dict()`` form (the wire form of a campaign job)."""
    from repro.faults.campaign import CampaignConfig

    data = dict(data)
    if "kinds" in data:
        data["kinds"] = tuple(data["kinds"])
    return CampaignConfig(**data)


def run_campaign_shard(
    payload: dict[str, Any],
    units: list[int],
    should_preempt: ShouldPreempt,
) -> dict[str, Any]:
    """Run the campaign trials at indices ``units``.

    The shard rebuilds + baselines the design locally (deterministic,
    so every shard agrees on ``baseline_cycles``) and evaluates each
    trial through the campaign's own evaluator, producing the exact
    per-trial records :func:`repro.faults.campaign.run_campaign`
    emits — the gateway merge is therefore byte-identical to a local
    scalar campaign.
    """
    from repro.faults.campaign import (
        OUTCOME_CRASH,
        _campaign_setup,
        _evaluate_trial,
        campaign_specs,
    )

    if "config" not in payload:
        raise JobError('campaign payload needs a "config" object')
    config = campaign_config_from_dict(payload["config"])
    _design, baseline, channels, ports, cpus, mem_words = (
        _campaign_setup(config))
    specs = campaign_specs(
        config, baseline.cycles, channels, ports, mem_words, cpus
    )
    records: list[dict[str, Any]] = []
    cycles = 0
    for pos, index in enumerate(units):
        if should_preempt() and pos > 0:
            return {
                "outcome": "preempted",
                "records": records,
                "remaining": list(units[pos:]),
                "baseline_cycles": baseline.cycles,
                "cycles": cycles,
            }
        result, _attempts, _backoffs = _evaluate_with_retries(
            specs[index],
            timeout_s=payload.get("timeout_s"),
            retries=int(payload.get("retries", 0)),
            retry_backoff_s=float(payload.get("retry_backoff_s", 0.0)),
            backoff_seed=int(payload.get("backoff_seed", 0)),
            engine="auto",  # the trial evaluator applies config.engine
            evaluate=_evaluate_trial,
        )
        if result["status"] == STATUS_OK and result["metrics"] is not None:
            trial = dict(result["metrics"])
        else:  # the evaluation itself died (mirrors run_campaign)
            trial = {
                "seed": f"{config.seed}/{index}",
                "plan": specs[index].params["plan"],
                "injected": [],
                "rollbacks": 0,
                "backoff_s": [],
                "checkpoint_cycle": None,
                "outcome": OUTCOME_CRASH,
                "original_outcome": OUTCOME_CRASH,
                "detail": result["error"] or "trial evaluation failed",
                "cycles": None,
                "exit_code": None,
            }
        trial["trial"] = index
        cycles += trial.get("cycles") or 0
        records.append({"index": index, "trial": trial})
    return {
        "outcome": "done",
        "records": records,
        "baseline_cycles": baseline.cycles,
        "cycles": cycles,
    }


# ----------------------------------------------------------------------
# dispatch
# ----------------------------------------------------------------------
def execute(
    kind: str,
    payload: dict[str, Any],
    *,
    units: list[int] | None = None,
    resume_state: dict[str, Any] | None = None,
    should_preempt: ShouldPreempt = lambda: False,
    preempt_slice: int = PREEMPT_SLICE,
) -> dict[str, Any]:
    """Run one worker command; the single entry point of
    :mod:`repro.farm.worker`."""
    if kind == "scenario":
        return run_scenario_job(
            payload, resume_state, should_preempt, preempt_slice
        )
    if kind == "multi_scenario":
        return run_multi_scenario_job(
            payload, resume_state, should_preempt, preempt_slice
        )
    if kind == "simulate":
        return run_simulate_job(
            payload, resume_state, should_preempt, preempt_slice
        )
    if kind == "sweep":
        return run_sweep_shard(payload, units or [], should_preempt)
    if kind == "campaign":
        return run_campaign_shard(payload, units or [], should_preempt)
    raise JobError(f"unknown job kind {kind!r}")
