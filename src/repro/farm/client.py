"""Synchronous farm client — what the ``mb32-farm`` CLI and the test
suite talk through.

Uses :class:`http.client.HTTPConnection` (stdlib) with a persistent
keep-alive connection; the asyncio counterpart for load generation
lives in :class:`repro.farm.httpio.AsyncHTTPConnection`.
"""

from __future__ import annotations

import http.client
import json
from typing import Any

from repro.farm.protocol import JobSpec


class FarmError(RuntimeError):
    """A non-2xx farm response.  ``status`` is the HTTP code and
    ``body`` the decoded JSON error document (when there was one)."""

    def __init__(self, status: int, body: Any):
        self.status = status
        self.body = body
        detail = body.get("error") if isinstance(body, dict) else body
        super().__init__(f"farm returned {status}: {detail}")


class FarmClient:
    """One keep-alive connection to a gateway."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str = "default",
        timeout: float = 600.0,
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, payload: Any = None
    ) -> tuple[int, bytes]:
        body = (
            json.dumps(payload, sort_keys=True).encode()
            if payload is not None else None
        )
        headers = {
            "Content-Type": "application/json",
            "X-MB32-Tenant": self.tenant,
        }
        for attempt in (1, 2):  # one transparent reconnect
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                data = response.read()
                if response.will_close:
                    self._conn.close()
                    self._conn = None
                return response.status, data
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt == 2:
                    raise
        raise AssertionError("unreachable")

    def _json(self, method: str, path: str, payload: Any = None) -> Any:
        status, data = self._request(method, path, payload)
        try:
            doc = json.loads(data) if data else None
        except ValueError:
            doc = data.decode("latin-1", "replace")
        if status >= 400:
            raise FarmError(status, doc)
        return doc

    # ------------------------------------------------------------------
    # job surface
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        payload: dict[str, Any],
        *,
        cacheable: bool = True,
        priority: int = 0,
        wait: bool = False,
        timeout_s: float | None = None,
    ) -> dict[str, Any]:
        """Submit one job; returns its status document (with the
        result inlined when ``wait=True`` and the job finished)."""
        spec = JobSpec(
            kind=kind,
            payload=payload,
            tenant=self.tenant,
            priority=priority,
            cacheable=cacheable,
        )
        path = "/v1/jobs"
        if wait:
            path += "?wait=1"
            if timeout_s is not None:
                path += f"&timeout_s={timeout_s}"
        return self._json("POST", path, spec.to_dict())

    def status(
        self,
        job_id: str,
        *,
        wait: bool = False,
        timeout_s: float | None = None,
    ) -> dict[str, Any]:
        path = f"/v1/jobs/{job_id}"
        if wait:
            path += "?wait=1"
            if timeout_s is not None:
                path += f"&timeout_s={timeout_s}"
        return self._json("GET", path)

    def result_bytes(self, job_id: str) -> bytes:
        """The raw result document bytes — byte-identical across cache
        hits, coalesced duplicates and the original execution."""
        status, data = self._request("GET", f"/v1/jobs/{job_id}/result")
        if status != 200:
            try:
                doc = json.loads(data)
            except ValueError:
                doc = data.decode("latin-1", "replace")
            raise FarmError(status, doc)
        return data

    def result(self, job_id: str) -> dict[str, Any]:
        return json.loads(self.result_bytes(job_id))

    def preempt(self, job_id: str) -> dict[str, Any]:
        """Checkpoint-and-migrate a running job."""
        return self._json("POST", f"/v1/jobs/{job_id}/preempt")

    # ------------------------------------------------------------------
    # farm surface
    # ------------------------------------------------------------------
    def farm_status(self) -> dict[str, Any]:
        return self._json("GET", "/v1/status")

    def healthz(self) -> bool:
        try:
            doc = self._json("GET", "/v1/healthz")
        except (FarmError, OSError, http.client.HTTPException):
            return False
        return bool(doc and doc.get("ok"))

    def drain(self) -> dict[str, Any]:
        """Ask the gateway to finish everything and shut down."""
        return self._json("POST", "/v1/drain")

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "FarmClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
