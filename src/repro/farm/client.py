"""Synchronous farm client — what the ``mb32-farm`` CLI and the test
suite talk through.

Uses :class:`http.client.HTTPConnection` (stdlib) with a persistent
keep-alive connection; the asyncio counterpart for load generation
lives in :class:`repro.farm.httpio.AsyncHTTPConnection`.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any

from repro.farm.protocol import JobSpec
from repro.runapi.backoff import retry_backoff_delay


class FarmError(RuntimeError):
    """A non-2xx farm response.  ``status`` is the HTTP code and
    ``body`` the decoded JSON error document (when there was one)."""

    def __init__(self, status: int, body: Any):
        self.status = status
        self.body = body
        detail = body.get("error") if isinstance(body, dict) else body
        super().__init__(f"farm returned {status}: {detail}")


class FarmUnavailable(FarmError):
    """The gateway could not be reached (connection refused/reset,
    mid-response disconnect) or kept shedding load (503) until the
    retry budget ran out.  ``status`` is 503 for shedding and 0 for
    transport failures; the last low-level exception is chained as
    ``__cause__`` — callers get one clean typed error, never a raw
    socket traceback."""


class FarmClient:
    """One keep-alive connection to a gateway.

    ``retries``/``backoff_s``/``deadline_s`` make the client resilient
    to a flapping gateway: transport errors (connection refused/reset,
    truncated responses) and 503 load-shed responses are retried on
    the shared seeded :func:`repro.runapi.backoff.retry_backoff_delay`
    schedule until the retry budget *and* the total wall-clock
    deadline are exhausted, then surface as one typed
    :class:`FarmUnavailable`.  Retrying a submission is idempotent for
    cacheable jobs — the farm's content-addressed dedup coalesces a
    re-sent duplicate onto the original execution.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        tenant: str = "default",
        timeout: float = 600.0,
        retries: int = 0,
        backoff_s: float = 0.05,
        deadline_s: float | None = None,
        backoff_seed: int = 0,
    ):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        self.retries = retries
        self.backoff_s = backoff_s
        self.deadline_s = deadline_s
        self.backoff_seed = backoff_seed
        self._conn: http.client.HTTPConnection | None = None

    # ------------------------------------------------------------------
    def _request_once(
        self, method: str, path: str, body: bytes | None,
        headers: dict[str, str],
    ) -> tuple[int, bytes]:
        for attempt in (1, 2):  # one transparent reconnect
            if self._conn is None:
                self._conn = http.client.HTTPConnection(
                    self.host, self.port, timeout=self.timeout
                )
            try:
                self._conn.request(method, path, body=body, headers=headers)
                response = self._conn.getresponse()
                data = response.read()
                if response.will_close:
                    self._conn.close()
                    self._conn = None
                return response.status, data
            except (ConnectionError, http.client.HTTPException, OSError):
                self.close()
                if attempt == 2:
                    raise
        raise AssertionError("unreachable")

    def _request(
        self, method: str, path: str, payload: Any = None
    ) -> tuple[int, bytes]:
        body = (
            json.dumps(payload, sort_keys=True).encode()
            if payload is not None else None
        )
        headers = {
            "Content-Type": "application/json",
            "X-MB32-Tenant": self.tenant,
        }
        deadline = (
            time.monotonic() + self.deadline_s
            if self.deadline_s is not None else None
        )
        attempt = 0
        last_exc: Exception | None = None
        last_shed: tuple[int, bytes] | None = None
        while True:
            attempt += 1
            try:
                status, data = self._request_once(
                    method, path, body, headers
                )
                if status != 503:
                    return status, data
                last_shed, last_exc = (status, data), None
            except (ConnectionError, http.client.HTTPException,
                    OSError) as exc:
                last_exc, last_shed = exc, None
            if attempt > self.retries:
                break
            delay = retry_backoff_delay(
                self.backoff_s, f"{method} {path}", attempt,
                self.backoff_seed,
            )
            if deadline is not None and \
                    time.monotonic() + delay >= deadline:
                break
            if delay > 0:
                time.sleep(delay)
        if last_shed is not None:
            if self.retries == 0:
                return last_shed  # pre-retry behavior: raw 503 upward
            try:
                doc = json.loads(last_shed[1])
            except ValueError:
                doc = {"error": "overloaded"}
            raise FarmUnavailable(503, doc)
        raise FarmUnavailable(
            0,
            {"error": f"gateway {self.host}:{self.port} unreachable "
                      f"after {attempt} attempt(s): {last_exc}"},
        ) from last_exc

    def _json(self, method: str, path: str, payload: Any = None) -> Any:
        status, data = self._request(method, path, payload)
        try:
            doc = json.loads(data) if data else None
        except ValueError:
            doc = data.decode("latin-1", "replace")
        if status >= 400:
            raise FarmError(status, doc)
        return doc

    # ------------------------------------------------------------------
    # job surface
    # ------------------------------------------------------------------
    def submit(
        self,
        kind: str,
        payload: dict[str, Any],
        *,
        cacheable: bool = True,
        priority: int = 0,
        wait: bool = False,
        timeout_s: float | None = None,
    ) -> dict[str, Any]:
        """Submit one job; returns its status document (with the
        result inlined when ``wait=True`` and the job finished)."""
        spec = JobSpec(
            kind=kind,
            payload=payload,
            tenant=self.tenant,
            priority=priority,
            cacheable=cacheable,
        )
        path = "/v1/jobs"
        if wait:
            path += "?wait=1"
            if timeout_s is not None:
                path += f"&timeout_s={timeout_s}"
        return self._json("POST", path, spec.to_dict())

    def status(
        self,
        job_id: str,
        *,
        wait: bool = False,
        timeout_s: float | None = None,
    ) -> dict[str, Any]:
        path = f"/v1/jobs/{job_id}"
        if wait:
            path += "?wait=1"
            if timeout_s is not None:
                path += f"&timeout_s={timeout_s}"
        return self._json("GET", path)

    def result_bytes(self, job_id: str) -> bytes:
        """The raw result document bytes — byte-identical across cache
        hits, coalesced duplicates and the original execution."""
        status, data = self._request("GET", f"/v1/jobs/{job_id}/result")
        if status != 200:
            try:
                doc = json.loads(data)
            except ValueError:
                doc = data.decode("latin-1", "replace")
            raise FarmError(status, doc)
        return data

    def result(self, job_id: str) -> dict[str, Any]:
        return json.loads(self.result_bytes(job_id))

    def preempt(self, job_id: str) -> dict[str, Any]:
        """Checkpoint-and-migrate a running job."""
        return self._json("POST", f"/v1/jobs/{job_id}/preempt")

    # ------------------------------------------------------------------
    # farm surface
    # ------------------------------------------------------------------
    def farm_status(self) -> dict[str, Any]:
        return self._json("GET", "/v1/status")

    def healthz(self) -> bool:
        try:
            doc = self._json("GET", "/v1/healthz")
        except (FarmError, OSError, http.client.HTTPException):
            return False
        return bool(doc and doc.get("ok"))

    def drain(self) -> dict[str, Any]:
        """Ask the gateway to finish everything and shut down."""
        return self._json("POST", "/v1/drain")

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "FarmClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
