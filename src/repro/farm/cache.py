"""Content-addressed result store: fingerprint -> result bytes.

Unlike the sweep cache (which stores typed result/estimate records and
re-hydrates them), the farm cache stores the **serialized result
document verbatim** — ``get`` hands back exactly the bytes ``put``
stored, so a cache hit is byte-identical to the response the original
execution produced, at the cost of one small file read (microseconds,
no simulation, no JSON round-trip).

Writes are atomic (tmp + rename), so gateways and workers may share a
directory; corrupt or missing entries read as a miss.
"""

from __future__ import annotations

import os
import pathlib


class FarmCache:
    """One file per job fingerprint under ``path``."""

    SUFFIX = ".json"

    def __init__(self, path: str | os.PathLike):
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)

    def _entry(self, fingerprint: str) -> pathlib.Path:
        if not fingerprint or "/" in fingerprint or "." in fingerprint:
            raise ValueError(f"bad fingerprint {fingerprint!r}")
        return self.path / f"{fingerprint}{self.SUFFIX}"

    def get(self, fingerprint: str) -> bytes | None:
        try:
            return self._entry(fingerprint).read_bytes()
        except OSError:
            return None

    def put(self, fingerprint: str, payload: bytes) -> None:
        entry = self._entry(fingerprint)
        tmp = entry.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_bytes(payload)
        tmp.replace(entry)

    def __contains__(self, fingerprint: str) -> bool:
        return self._entry(fingerprint).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.path.glob(f"*{self.SUFFIX}"))

    def clear(self) -> int:
        """Drop every entry; returns the number removed."""
        n = 0
        for entry in self.path.glob(f"*{self.SUFFIX}"):
            try:
                entry.unlink()
                n += 1
            except OSError:
                pass
        return n
