"""Content-addressed result store: fingerprint -> result bytes.

Unlike the sweep cache (which stores typed result/estimate records and
re-hydrates them), the farm cache stores the **serialized result
document verbatim** — ``get`` hands back exactly the bytes ``put``
stored, so a cache hit is byte-identical to the response the original
execution produced, at the cost of one small file read (microseconds,
no simulation, no JSON round-trip).

Entries are written through the shared durable envelope
(:mod:`repro.runapi.durable`): tmp + ``os.replace`` + fsync of file
and directory on the write side, and a length+sha256 verification on
the read side.  A torn, truncated or bit-flipped entry is **never**
served — it classifies as damage, moves into the ``quarantine/``
sidecar directory for post-mortem, and reads as a miss so the job
re-executes.  Entries written by pre-envelope farms (raw JSON bytes)
still read back verbatim.

Gateways and workers may share a directory; a startup scavenge (and
every ``clear()``) collects the orphaned ``.tmp.<pid>`` staging files
a crashed writer leaves behind.
"""

from __future__ import annotations

import os
import pathlib

from repro.runapi.durable import (
    QUARANTINE_DIR,
    durable_write,
    read_verified,
    scavenge_tmp,
)

#: a startup scavenge only collects staging files at least this stale,
#: so it cannot race a live writer sharing the directory
STARTUP_SCAVENGE_AGE_S = 3600.0


class FarmCache:
    """One file per job fingerprint under ``path``."""

    SUFFIX = ".json"

    def __init__(self, path: str | os.PathLike, *, fsync: bool = True):
        self.path = pathlib.Path(path)
        self.path.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        #: damage accounting, served via the gateway status document
        self.stats = {"quarantined": 0, "scavenged": 0}
        self.stats["scavenged"] += scavenge_tmp(
            self.path, older_than_s=STARTUP_SCAVENGE_AGE_S
        )

    @property
    def quarantine_path(self) -> pathlib.Path:
        return self.path / QUARANTINE_DIR

    def _entry(self, fingerprint: str) -> pathlib.Path:
        if not fingerprint or "/" in fingerprint or "." in fingerprint:
            raise ValueError(f"bad fingerprint {fingerprint!r}")
        return self.path / f"{fingerprint}{self.SUFFIX}"

    def get(self, fingerprint: str) -> bytes | None:
        return read_verified(
            self._entry(fingerprint),
            quarantine_dir=self.quarantine_path,
            on_damage=self._on_damage,
        )

    def _on_damage(self, reason: str) -> None:
        self.stats["quarantined"] += 1
        self.stats[f"quarantined.{reason}"] = \
            self.stats.get(f"quarantined.{reason}", 0) + 1

    def put(self, fingerprint: str, payload: bytes) -> None:
        durable_write(self._entry(fingerprint), payload, fsync=self.fsync)

    def __contains__(self, fingerprint: str) -> bool:
        return self._entry(fingerprint).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.path.glob(f"*{self.SUFFIX}"))

    def quarantined(self) -> int:
        """Number of damaged entries sitting in the sidecar dir."""
        if not self.quarantine_path.is_dir():
            return 0
        return sum(1 for p in self.quarantine_path.iterdir() if p.is_file())

    def verify_all(self) -> int:
        """Read-verify every entry in place (quarantining damage);
        returns the number of intact entries.  Chaos-campaign epilogue:
        after this, the directory serves no corrupt bytes."""
        intact = 0
        for entry in sorted(self.path.glob(f"*{self.SUFFIX}")):
            if self.get(entry.name[:-len(self.SUFFIX)]) is not None:
                intact += 1
        return intact

    def clear(self) -> int:
        """Drop every entry (sweeping orphaned staging files too);
        returns the number of entries removed."""
        n = 0
        for entry in self.path.glob(f"*{self.SUFFIX}"):
            try:
                entry.unlink()
                n += 1
            except OSError:
                pass
        self.stats["scavenged"] += scavenge_tmp(self.path)
        return n
