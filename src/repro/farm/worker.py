"""The farm's process worker.

One worker is one long-lived process holding a duplex pipe to the
gateway and a shared preempt :class:`multiprocessing.Event`.  The
protocol is strictly request/response — the gateway never sends a
second command before the first answers — except for the preempt
event, which the gateway may set at any moment and the running job
polls at its unit/slice boundaries (see :mod:`repro.farm.jobs`).

A worker never dies on a job failure: every exception is folded into
an ``{"ok": False, "error": ...}`` reply, mirroring the sweep engine's
"failures are data" stance.  A genuinely dead worker (killed, OOM) is
detected gateway-side by pipe EOF and its task is re-dispatched.
"""

from __future__ import annotations

import time
import traceback
from typing import Any

from repro.farm.jobs import PREEMPT_SLICE, execute

#: worker command verbs
CMD_JOB = "job"
CMD_EXIT = "exit"
CMD_PING = "ping"


def worker_main(conn, preempt_event, worker_id: int) -> None:
    """Entry point of a worker process: serve commands until ``exit``.

    ``conn`` is the child end of a duplex pipe; ``preempt_event`` is
    set by the gateway to request checkpoint-and-yield and is cleared
    by the gateway before each dispatch (never here — clearing in the
    worker would race a preempt sent while the command was in
    flight)."""
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            return  # gateway went away
        cmd = msg.get("cmd")
        if cmd == CMD_EXIT:
            conn.send({"ok": True, "cmd": CMD_EXIT})
            return
        if cmd == CMD_PING:
            conn.send({"ok": True, "cmd": CMD_PING, "worker": worker_id})
            continue
        if cmd != CMD_JOB:
            conn.send({"ok": False, "error": f"unknown command {cmd!r}"})
            continue

        start = time.perf_counter()
        try:
            outcome = execute(
                msg["kind"],
                msg.get("payload", {}),
                units=msg.get("units"),
                resume_state=msg.get("resume_state"),
                should_preempt=preempt_event.is_set,
                preempt_slice=msg.get("preempt_slice", PREEMPT_SLICE),
            )
            reply: dict[str, Any] = {
                "ok": True,
                "task": msg.get("task"),
                "worker": worker_id,
                "wall_s": time.perf_counter() - start,
                **outcome,
            }
        except BaseException as exc:  # never let a worker die silently
            reply = {
                "ok": False,
                "task": msg.get("task"),
                "worker": worker_id,
                "wall_s": time.perf_counter() - start,
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(limit=8),
            }
        try:
            conn.send(reply)
        except (OSError, ValueError, BrokenPipeError):
            return
