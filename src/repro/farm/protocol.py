"""The farm's job schema and wire-level contracts.

A job travels as JSON with two identity-bearing fields — ``kind`` and
``payload`` — plus routing metadata (``tenant``, ``priority``,
``cacheable``) that deliberately does **not** enter the fingerprint:
two tenants submitting the same work share one execution and one cache
entry, while their accounting stays separate.

Job kinds
---------
``simulate``
    One design point: ``payload`` is a
    :class:`~repro.cosim.partition.DesignSpec`-shaped object
    (``factory``/``params``[/``name``]), evaluated through the sweep
    engine's classification (status ``ok`` / ``self-check-failed`` /
    ``deadlock`` / ``timeout`` / ``error``) with optional
    ``timeout_s`` / ``retries`` / ``engine``.
``scenario``
    One seeded conformance scenario (single CPU): ``payload`` carries
    either ``{"seed": S, "index": I}`` (generator coordinates) or a
    full ``{"scenario": {...}}`` document, plus ``fast_forward``.
    Preemptible at cycle granularity via checkpoint/restore.
``multi_scenario``
    The K-CPU equivalent over
    :class:`~repro.conformance.multicpu.MultiScenario`.
``sweep``
    A whole design-space sweep: ``payload`` is
    ``{"points": [spec...], "timeout_s":, "retries":,
    "retry_backoff_s":, "backoff_seed":, "engine":}``.  The gateway
    shards points across workers and merges one
    :class:`~repro.cosim.sweep.SweepReport`-shaped document.
``campaign``
    A fault-injection campaign: ``payload`` is
    ``{"config": CampaignConfig.to_dict()}``; trials are sharded
    across workers and merged into the exact
    :meth:`~repro.faults.campaign.CampaignReport.to_dict` document the
    local scalar runner produces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.runapi.fingerprint import fingerprint_json

#: wire/protocol version — part of every job fingerprint, so a schema
#: change can never alias a cache entry written by an older farm.
PROTOCOL_VERSION = 1

JOB_KINDS = ("simulate", "scenario", "multi_scenario", "sweep", "campaign")

#: job lifecycle states, as reported by ``GET /v1/jobs/<id>``
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"

JOB_STATES = (STATE_QUEUED, STATE_RUNNING, STATE_DONE, STATE_FAILED)


class ProtocolError(ValueError):
    """A malformed job submission (maps to HTTP 400)."""


@dataclass
class JobSpec:
    """One job as submitted by a client."""

    kind: str
    payload: dict[str, Any] = field(default_factory=dict)
    tenant: str = "default"
    priority: int = 0
    cacheable: bool = True

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ProtocolError(
                f"unknown job kind {self.kind!r} "
                f"(expected one of {', '.join(JOB_KINDS)})"
            )
        if not isinstance(self.payload, dict):
            raise ProtocolError('"payload" must be a JSON object')
        if not isinstance(self.tenant, str) or not self.tenant:
            raise ProtocolError('"tenant" must be a non-empty string')

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "payload": dict(self.payload),
            "tenant": self.tenant,
            "priority": self.priority,
            "cacheable": self.cacheable,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "JobSpec":
        if not isinstance(data, dict):
            raise ProtocolError("job must be a JSON object")
        if "kind" not in data:
            raise ProtocolError('job is missing required key "kind"')
        return cls(
            kind=data["kind"],
            payload=dict(data.get("payload", {})),
            tenant=str(data.get("tenant", "default")),
            priority=int(data.get("priority", 0)),
            cacheable=bool(data.get("cacheable", True)),
        )


def job_fingerprint(spec: JobSpec) -> str:
    """Content-addressed identity of a job: protocol version + kind +
    canonical payload.  Tenant/priority/cacheable are routing metadata
    and deliberately excluded, so identical work deduplicates across
    tenants."""
    return fingerprint_json(
        {
            "mb32-farm-job": PROTOCOL_VERSION,
            "kind": spec.kind,
            "payload": spec.payload,
        }
    )
