"""Deterministic chaos harness for the co-simulation farm.

The durability work (:mod:`repro.runapi.durable`, the gateway
write-ahead journal) claims that no infrastructure failure can change
a result: a job the farm *accepted* either completes with exactly the
bytes a fault-free farm would have produced, or visibly fails — never
silently diverges, never serves torn bytes.  This module is the
machine that earns that claim: a **seeded, replayable fault campaign**
against a live farm, mirroring how :mod:`repro.faults.plan` attacks
the simulated hardware.

* :func:`generate_chaos_plan` expands a seed into a
  :class:`ChaosPlan` — an ordered list of :class:`ChaosSpec` events
  pinned to *submission indices* (not wall-clock), so the interleaving
  of work and faults is identical on every run of the same seed,
* :class:`ChaosController` injects each event into a running
  :class:`~repro.farm.gateway.FarmThread`: ``SIGKILL``/``SIGSTOP`` of
  worker processes, torn and bit-flipped cache writes (through
  :func:`repro.runapi.durable.set_write_fault`), dropped and truncated
  HTTP responses (through
  :func:`repro.farm.httpio.set_response_fault`), and a full gateway
  crash + ``recover=True`` restart on the same journal and cache,
* :func:`run_chaos_campaign` drives a deterministic mixed workload
  (``simulate`` / ``sweep`` / ``campaign``) through a fault-free
  baseline farm and then through the chaos farm, and checks the
  invariant byte for byte.  The epilogue re-verifies every cache entry
  in place and replays the whole workload once more — quarantined
  entries must re-execute to the same bytes, everything else must hit.

``mb32-farm chaos`` fronts it from the CLI; every injected fault is
also counted on the gateway's
:class:`~repro.telemetry.metrics.MetricsRegistry` under
``farm.chaos.*``.
"""

from __future__ import annotations

import contextlib
import os
import pathlib
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.farm import httpio
from repro.farm.client import FarmClient, FarmError, FarmUnavailable
from repro.farm.gateway import FarmThread, start_farm_thread
from repro.runapi.durable import set_write_fault

#: every fault kind the harness can inject
CHAOS_KINDS = (
    "worker_kill",       # SIGKILL a worker process mid-task
    "worker_stall",      # SIGSTOP a worker, SIGCONT it shortly after
    "cache_torn_write",  # next durable cache write loses its tail
    "cache_bitflip",     # next durable cache write flips one bit
    "conn_drop",         # next HTTP response is dropped unanswered
    "conn_truncate",     # next HTTP response is cut mid-body
    "gateway_restart",   # crash the gateway, restart with --recover
)

SYNTH_FACTORY = "repro.cosim.sweep:SyntheticDesign"


# ----------------------------------------------------------------------
# the plan (mirrors repro.faults.plan: seed -> frozen specs)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChaosSpec:
    """One fault event, pinned to a submission index.

    ``at`` is the workload index *before* which the event fires —
    index-pinning (rather than wall-clock) is what makes a chaos run
    replayable.  ``param`` is a kind-specific knob: target selector
    for worker kills/stalls, stall duration entropy, ignored
    elsewhere.
    """

    kind: str
    at: int
    param: int = 0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(f"unknown chaos kind {self.kind!r}")
        if self.at < 0:
            raise ValueError("chaos events fire at submission index >= 0")

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "at": self.at, "param": self.param}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ChaosSpec":
        return cls(
            kind=str(data["kind"]),
            at=int(data["at"]),
            param=int(data.get("param", 0)),
        )


@dataclass
class ChaosPlan:
    """A complete seeded fault schedule for one campaign."""

    seed: int
    n_jobs: int
    events: tuple[ChaosSpec, ...] = ()

    def by_index(self) -> dict[int, list[ChaosSpec]]:
        out: dict[int, list[ChaosSpec]] = {}
        for ev in self.events:
            out.setdefault(ev.at, []).append(ev)
        return out

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "n_jobs": self.n_jobs,
            "events": [ev.to_dict() for ev in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ChaosPlan":
        return cls(
            seed=int(data["seed"]),
            n_jobs=int(data["n_jobs"]),
            events=tuple(
                ChaosSpec.from_dict(ev) for ev in data.get("events", [])
            ),
        )


def generate_chaos_plan(
    seed: int = 0,
    n_jobs: int = 200,
    *,
    faults: int = 30,
    kinds: tuple[str, ...] = CHAOS_KINDS,
    gateway_restarts: int = 1,
) -> ChaosPlan:
    """Expand ``seed`` into a deterministic fault schedule.

    ``faults`` total events are drawn over the non-restart kinds in
    ``kinds``; ``gateway_restarts`` crash+recover events (when the
    kind is enabled) are spread evenly through the campaign so
    recovery always happens mid-load.  Same arguments, same plan —
    byte for byte.
    """
    for kind in kinds:
        if kind not in CHAOS_KINDS:
            raise ValueError(f"unknown chaos kind {kind!r}")
    if n_jobs < 2:
        raise ValueError("a chaos campaign needs at least 2 jobs")
    rng = random.Random(f"mb32-chaos/{seed}")
    events: list[ChaosSpec] = []
    injectable = [k for k in kinds if k != "gateway_restart"]
    restarts = gateway_restarts if "gateway_restart" in kinds else 0
    for _ in range(max(0, faults - restarts)):
        if not injectable:
            break
        events.append(
            ChaosSpec(
                kind=rng.choice(injectable),
                at=rng.randrange(1, n_jobs),
                param=rng.randrange(1 << 16),
            )
        )
    for r in range(restarts):
        at = max(1, min(n_jobs - 1, n_jobs * (r + 1) // (restarts + 1)))
        events.append(ChaosSpec(kind="gateway_restart", at=at))
    events.sort(key=lambda ev: (ev.at, ev.kind, ev.param))
    return ChaosPlan(seed=seed, n_jobs=n_jobs, events=tuple(events))


# ----------------------------------------------------------------------
# the workload (deterministic mixed job stream)
# ----------------------------------------------------------------------
def build_workload(
    seed: int = 0, n_jobs: int = 200
) -> list[tuple[str, dict[str, Any]]]:
    """A deterministic stream of ``(kind, payload)`` submissions:
    mostly synthetic ``simulate`` points (some with nonzero runtime so
    faults land on *running* jobs), a spread of small ``sweep`` jobs,
    and a sprinkle of real fault-injection ``campaign`` jobs.  Every
    payload is a pure function of ``(seed, index)``, so the fault-free
    baseline and the chaos run execute identical work.
    """
    from repro.faults.campaign import CampaignConfig

    rng = random.Random(f"mb32-chaos-workload/{seed}")
    out: list[tuple[str, dict[str, Any]]] = []
    for i in range(n_jobs):
        roll = rng.random()
        if i % 40 == 7:  # a real campaign every 40 jobs
            config = CampaignConfig(
                app="cordic",
                design={"p": 2, "iters": 8, "ndata": 8},
                trials=2,
                seed=1000 + seed * 7 + i,
                max_cycles=60_000,
                deadlock_window=512,
            )
            out.append(("campaign", {"config": config.to_dict()}))
        elif roll < 0.15:
            n_points = 3 + rng.randrange(3)
            points = [
                {
                    "factory": SYNTH_FACTORY,
                    "params": {
                        "seconds": 0.0,
                        "cycles": 10_000 + i * 10 + k,
                    },
                }
                for k in range(n_points)
            ]
            out.append(("sweep", {"points": points}))
        else:
            # ~25% of the simulate points take real wall time, so the
            # queue stays occupied while faults fire
            seconds = (
                round(0.02 + rng.random() * 0.1, 3)
                if rng.random() < 0.25 else 0.0
            )
            out.append((
                "simulate",
                {
                    "design": {
                        "factory": SYNTH_FACTORY,
                        "params": {"seconds": seconds, "cycles": 1_000 + i},
                    }
                },
            ))
    return out


# ----------------------------------------------------------------------
# the controller (plan events -> live farm)
# ----------------------------------------------------------------------
class ChaosController:
    """Applies :class:`ChaosSpec` events to a live farm it owns.

    The controller boots the gateway (journal + cache under ``root``),
    injects each event, and — for ``gateway_restart`` — crashes the
    whole :class:`~repro.farm.gateway.FarmThread` and boots a
    replacement with ``recover=True`` on the same journal and cache.
    Callers must re-resolve ``controller.farm`` per request, since a
    restart changes the ephemeral port.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        workers: int = 3,
        seed: int = 0,
    ):
        self.root = pathlib.Path(root)
        self.workers = workers
        self.rng = random.Random(f"mb32-chaos-targets/{seed}")
        self.farm: FarmThread | None = None
        self.applied: dict[str, int] = {}
        self.fired: dict[str, int] = {}
        self.skipped: dict[str, int] = {}
        self.unfired = 0
        self.restarts = 0
        self._stalled: list[int] = []
        self._armed_write: str | None = None
        self._armed_conn: str | None = None
        self._metric_totals: dict[str, int] = {}

    # -- lifecycle ------------------------------------------------------
    @property
    def cache_dir(self) -> str:
        return str(self.root / "cache")

    @property
    def journal_path(self) -> str:
        return str(self.root / "gateway.wal")

    def start(self) -> FarmThread:
        assert self.farm is None
        self.farm = self._boot(recover=False)
        return self.farm

    def _boot(self, recover: bool) -> FarmThread:
        return start_farm_thread(
            workers=self.workers,
            cache_dir=self.cache_dir,
            journal_path=self.journal_path,
            recover=recover,
        )

    def shutdown(self) -> None:
        """Release every stall, clear the process-wide fault hooks and
        stop the farm — always call from a ``finally``."""
        self.release_stalls()
        if self._armed_write is not None or self._armed_conn is not None:
            self.unfired += 1  # an armed one-shot never got a chance
        set_write_fault(None)
        httpio.set_response_fault(None)
        if self.farm is not None:
            self._harvest(self.farm)
            self.farm.stop()
            self.farm = None

    # -- event application ---------------------------------------------
    def apply(self, spec: ChaosSpec) -> None:
        self.applied[spec.kind] = self.applied.get(spec.kind, 0) + 1
        assert self.farm is not None
        self.farm.gateway.metrics.counter(
            f"farm.chaos.{spec.kind}"
        ).inc()
        if spec.kind == "worker_kill":
            self._signal_worker(spec, signal.SIGKILL)
        elif spec.kind == "worker_stall":
            self._stall_worker(spec)
        elif spec.kind in ("cache_torn_write", "cache_bitflip"):
            self._arm_write_fault(spec.kind)
        elif spec.kind in ("conn_drop", "conn_truncate"):
            self._arm_conn_fault(spec.kind)
        elif spec.kind == "gateway_restart":
            self.restart()
        else:  # pragma: no cover - ChaosSpec validates kinds
            raise ValueError(f"unknown chaos kind {spec.kind!r}")

    def _live_handles(self) -> list[Any]:
        assert self.farm is not None
        return [
            h for h in list(self.farm.gateway._workers.values())
            if h.alive and h.process.is_alive()
        ]

    def _signal_worker(self, spec: ChaosSpec, signum: int) -> None:
        handles = self._live_handles()
        if not handles:
            self.skipped[spec.kind] = self.skipped.get(spec.kind, 0) + 1
            return
        handle = handles[spec.param % len(handles)]
        with contextlib.suppress(ProcessLookupError, OSError):
            os.kill(handle.process.pid, signum)
        self.fired[spec.kind] = self.fired.get(spec.kind, 0) + 1

    def _stall_worker(self, spec: ChaosSpec) -> None:
        handles = self._live_handles()
        if not handles:
            self.skipped[spec.kind] = self.skipped.get(spec.kind, 0) + 1
            return
        pid = handles[spec.param % len(handles)].process.pid
        try:
            os.kill(pid, signal.SIGSTOP)
        except (ProcessLookupError, OSError):
            self.skipped[spec.kind] = self.skipped.get(spec.kind, 0) + 1
            return
        self._stalled.append(pid)
        self.fired[spec.kind] = self.fired.get(spec.kind, 0) + 1
        # hung-then-slow: the worker stays frozen for a bounded window
        delay_s = 0.05 + (spec.param % 400) / 1_000.0
        timer = threading.Timer(delay_s, self._release_stall, args=(pid,))
        timer.daemon = True
        timer.start()

    def _release_stall(self, pid: int) -> None:
        if pid in self._stalled:
            self._stalled.remove(pid)
            with contextlib.suppress(ProcessLookupError, OSError):
                os.kill(pid, signal.SIGCONT)

    def release_stalls(self) -> None:
        for pid in list(self._stalled):
            self._release_stall(pid)

    def _arm_write_fault(self, kind: str) -> None:
        if self._armed_write is not None:
            self.unfired += 1  # previous one-shot never saw a write
        self._armed_write = kind

        def fault(path: str, blob: bytes) -> bytes:
            set_write_fault(None)
            self._armed_write = None
            self.fired[kind] = self.fired.get(kind, 0) + 1
            if kind == "cache_torn_write":
                return blob[: max(1, len(blob) // 2)]
            mutated = bytearray(blob)
            mutated[-1] ^= 0x01
            return bytes(mutated)

        set_write_fault(fault)

    def _arm_conn_fault(self, kind: str) -> None:
        if self._armed_conn is not None:
            self.unfired += 1
        self._armed_conn = kind

        def fault(request, response: bytes):
            httpio.set_response_fault(None)
            self._armed_conn = None
            self.fired[kind] = self.fired.get(kind, 0) + 1
            if kind == "conn_drop":
                return ("drop", 0)
            return ("truncate", max(1, len(response) // 2))

        httpio.set_response_fault(fault)

    def restart(self) -> None:
        """Crash the gateway (no drain, no bookkeeping — the WAL is
        the only survivor) and boot a recovering replacement on the
        same journal and cache."""
        assert self.farm is not None
        self.release_stalls()  # a SIGSTOPped worker cannot be reaped
        crashed, self.farm = self.farm, None
        self._harvest(crashed)
        crashed.crash()
        self.farm = self._boot(recover=True)
        self.restarts += 1
        self.fired["gateway_restart"] = \
            self.fired.get("gateway_restart", 0) + 1

    # -- accounting -----------------------------------------------------
    _HARVEST_KEYS = (
        "farm.workers.deaths",
        "farm.wal.records",
        "farm.chaos.conn_faults",
        "farm.recovery.requeued",
        "farm.recovery.replayed_done",
        "farm.recovery.reexecuted",
        "farm.recovery.failed",
        "farm.jobs.completed",
        "farm.jobs.submitted",
    )

    def _harvest(self, farm: FarmThread) -> None:
        """Fold one gateway generation's counters into the campaign
        totals (each restart starts a fresh MetricsRegistry)."""
        snapshot = farm.gateway.metrics.snapshot()
        for key in self._HARVEST_KEYS:
            value = snapshot.get(key)
            if isinstance(value, int):
                self._metric_totals[key] = \
                    self._metric_totals.get(key, 0) + value

    def metric_totals(self) -> dict[str, int]:
        totals = dict(self._metric_totals)
        if self.farm is not None:
            snapshot = self.farm.gateway.metrics.snapshot()
            for key in self._HARVEST_KEYS:
                value = snapshot.get(key)
                if isinstance(value, int):
                    totals[key] = totals.get(key, 0) + value
        return totals


# ----------------------------------------------------------------------
# the campaign driver + invariant checker
# ----------------------------------------------------------------------
@dataclass
class ChaosReport:
    """What happened, and whether the durability invariant held."""

    seed: int
    jobs: int
    workers: int
    plan: ChaosPlan
    wall_s: float = 0.0
    applied: dict[str, int] = field(default_factory=dict)
    fired: dict[str, int] = field(default_factory=dict)
    skipped: dict[str, int] = field(default_factory=dict)
    unfired: int = 0
    restarts: int = 0
    resubmissions: int = 0
    divergent: list[int] = field(default_factory=list)
    failed: dict[int, str] = field(default_factory=dict)
    second_divergent: list[int] = field(default_factory=list)
    second_failed: dict[int, str] = field(default_factory=dict)
    cache_entries: int = 0
    cache_quarantined: int = 0
    cache_intact: int = 0
    metrics: dict[str, int] = field(default_factory=dict)

    @property
    def faults_applied(self) -> int:
        return sum(self.applied.values())

    @property
    def ok(self) -> bool:
        """The invariant: every accepted job completed with bytes
        identical to the fault-free run, in both passes."""
        return not (self.divergent or self.failed
                    or self.second_divergent or self.second_failed)

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": "mb32-chaos-report",
            "version": 1,
            "seed": self.seed,
            "jobs": self.jobs,
            "workers": self.workers,
            "wall_s": round(self.wall_s, 3),
            "ok": self.ok,
            "faults_applied": self.faults_applied,
            "applied": dict(sorted(self.applied.items())),
            "fired": dict(sorted(self.fired.items())),
            "skipped": dict(sorted(self.skipped.items())),
            "unfired": self.unfired,
            "restarts": self.restarts,
            "resubmissions": self.resubmissions,
            "divergent": list(self.divergent),
            "failed": {str(k): v for k, v in self.failed.items()},
            "second_divergent": list(self.second_divergent),
            "second_failed": {
                str(k): v for k, v in self.second_failed.items()
            },
            "cache_entries": self.cache_entries,
            "cache_quarantined": self.cache_quarantined,
            "cache_intact": self.cache_intact,
            "metrics": dict(sorted(self.metrics.items())),
            "plan": self.plan.to_dict(),
        }

    def table(self) -> str:
        """The per-kind outcome table (CLI / EXPERIMENTS.md)."""
        rows = [("fault kind", "planned", "applied", "fired", "skipped")]
        planned = self.plan.counts()
        for kind in CHAOS_KINDS:
            if not (planned.get(kind) or self.applied.get(kind)):
                continue
            rows.append((
                kind,
                str(planned.get(kind, 0)),
                str(self.applied.get(kind, 0)),
                str(self.fired.get(kind, 0)),
                str(self.skipped.get(kind, 0)),
            ))
        widths = [
            max(len(row[col]) for row in rows) for col in range(5)
        ]
        lines = []
        for i, row in enumerate(rows):
            lines.append("  ".join(
                cell.ljust(widths[col]) for col, cell in enumerate(row)
            ).rstrip())
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


def _call(
    get_farm: Callable[[], FarmThread | None],
    fn: Callable[[FarmClient], Any],
    *,
    deadline_s: float = 120.0,
) -> Any:
    """Run ``fn`` against the *current* farm, retrying across dropped
    connections and gateway restarts (the port changes, so the farm
    handle is re-resolved on every attempt)."""
    deadline = time.monotonic() + deadline_s
    last: Exception | None = None
    while time.monotonic() < deadline:
        farm = get_farm()
        if farm is None:
            time.sleep(0.05)
            continue
        try:
            with FarmClient(
                farm.host, farm.port,
                retries=2, backoff_s=0.02, deadline_s=5.0,
            ) as client:
                return fn(client)
        except FarmUnavailable as exc:
            last = exc
            time.sleep(0.05)
    raise RuntimeError(
        f"farm stayed unreachable for {deadline_s:.0f}s"
    ) from last


def _submit_all(
    get_farm: Callable[[], FarmThread | None],
    workload: list[tuple[str, dict[str, Any]]],
    *,
    on_index: Callable[[int], None] | None = None,
) -> dict[int, str]:
    ids: dict[int, str] = {}
    for index, (kind, payload) in enumerate(workload):
        if on_index is not None:
            on_index(index)
        doc = _call(
            get_farm,
            lambda c, k=kind, p=payload: c.submit(k, p),
        )
        ids[index] = doc["id"]
    return ids


def _collect_all(
    get_farm: Callable[[], FarmThread | None],
    workload: list[tuple[str, dict[str, Any]]],
    ids: dict[int, str],
    *,
    deadline_s: float = 600.0,
) -> tuple[dict[int, bytes], dict[int, str], int]:
    """Wait every job to a terminal state; returns
    ``(bytes_by_index, failures_by_index, resubmissions)``.  A job id
    lost to a restart race is re-submitted — idempotent, because the
    farm coalesces on the content fingerprint."""
    out: dict[int, bytes] = {}
    failures: dict[int, str] = {}
    resubmissions = 0
    deadline = time.monotonic() + deadline_s
    for index, (kind, payload) in enumerate(workload):
        job_id = ids[index]
        while True:
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"chaos collect timed out at job {index} "
                    f"({kind}, id {job_id})"
                )
            try:
                doc = _call(
                    get_farm,
                    lambda c, j=job_id: c.status(
                        j, wait=True, timeout_s=5.0
                    ),
                )
            except FarmError as exc:
                if exc.status == 404:
                    doc = _call(
                        get_farm,
                        lambda c, k=kind, p=payload: c.submit(k, p),
                    )
                    job_id = doc["id"]
                    resubmissions += 1
                    continue
                raise
            state = doc.get("state")
            if state == "done":
                try:
                    out[index] = _call(
                        get_farm,
                        lambda c, j=job_id: c.result_bytes(j),
                    )
                except FarmError as exc:
                    if exc.status == 404:
                        continue  # raced a restart; poll again
                    raise
                break
            if state == "failed":
                failures[index] = str(doc.get("error"))
                break
            # queued/running: keep waiting
    return out, failures, resubmissions


def run_chaos_campaign(
    root: str | os.PathLike,
    *,
    seed: int = 0,
    jobs: int = 200,
    faults: int = 30,
    workers: int = 3,
    kinds: tuple[str, ...] = CHAOS_KINDS,
    gateway_restarts: int = 1,
    plan: ChaosPlan | None = None,
    progress: Callable[[str], None] | None = None,
    collect_timeout_s: float = 600.0,
) -> ChaosReport:
    """Run the full campaign under ``root`` (scratch directory).

    Phase 1 runs the deterministic workload through a fault-free farm
    and records every result's bytes.  Phase 2 replays the same
    workload through a journaled farm while injecting the plan's
    faults at their pinned submission indices.  Phase 3 (epilogue)
    re-verifies the cache in place and replays the workload once more
    against the surviving farm — quarantined entries must re-execute
    to identical bytes, intact entries must hit.  The report's ``ok``
    is the durability invariant.
    """
    root = pathlib.Path(root)
    root.mkdir(parents=True, exist_ok=True)
    say = progress or (lambda _msg: None)
    workload = build_workload(seed, jobs)
    if plan is None:
        plan = generate_chaos_plan(
            seed, jobs, faults=faults, kinds=kinds,
            gateway_restarts=gateway_restarts,
        )
    report = ChaosReport(
        seed=seed, jobs=jobs, workers=workers, plan=plan
    )
    started = time.perf_counter()

    # -- phase 1: fault-free baseline ----------------------------------
    say(f"baseline: {jobs} jobs on {workers} workers")
    baseline_farm = start_farm_thread(
        workers=workers, cache_dir=str(root / "baseline-cache")
    )
    try:
        ids = _submit_all(lambda: baseline_farm, workload)
        baseline, base_failures, _ = _collect_all(
            lambda: baseline_farm, workload, ids,
            deadline_s=collect_timeout_s,
        )
    finally:
        baseline_farm.stop()
    if base_failures:
        raise RuntimeError(
            f"fault-free baseline failed jobs {sorted(base_failures)}: "
            f"{base_failures}"
        )

    # -- phase 2: the chaos run ----------------------------------------
    say(f"chaos: {len(plan.events)} faults over {jobs} submissions")
    controller = ChaosController(root, workers=workers, seed=seed)
    controller.start()
    events_at = plan.by_index()
    try:
        def fire(index: int) -> None:
            for event in events_at.get(index, []):
                say(f"  @job {index}: {event.kind}")
                controller.apply(event)

        ids = _submit_all(
            lambda: controller.farm, workload, on_index=fire
        )
        # events pinned past the last submission fire before collect
        for index in sorted(k for k in events_at if k >= len(workload)):
            fire(index)
        results, failures, resubmissions = _collect_all(
            lambda: controller.farm, workload, ids,
            deadline_s=collect_timeout_s,
        )
        report.failed = failures
        report.resubmissions = resubmissions
        report.divergent = [
            index for index, blob in sorted(results.items())
            if blob != baseline.get(index)
        ]

        # -- phase 3: epilogue — verify the cache, replay everything --
        say("epilogue: verify cache + second pass")
        assert controller.farm is not None
        cache = controller.farm.gateway.cache
        assert cache is not None
        report.cache_intact = cache.verify_all()
        ids2 = _submit_all(lambda: controller.farm, workload)
        second, second_failures, _ = _collect_all(
            lambda: controller.farm, workload, ids2,
            deadline_s=collect_timeout_s,
        )
        report.second_failed = second_failures
        report.second_divergent = [
            index for index, blob in sorted(second.items())
            if blob != baseline.get(index)
        ]
        report.cache_entries = len(cache)
        report.cache_quarantined = cache.quarantined()
    finally:
        controller.shutdown()

    report.applied = dict(controller.applied)
    report.fired = dict(controller.fired)
    report.skipped = dict(controller.skipped)
    report.unfired = controller.unfired
    report.restarts = controller.restarts
    report.metrics = controller.metric_totals()
    report.wall_s = time.perf_counter() - started
    return report
