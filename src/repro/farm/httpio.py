"""Hand-rolled HTTP/1.1 on asyncio — the farm's only wire format.

Deliberately stdlib-only and minimal: request-line + headers + a
``Content-Length`` body, persistent connections by default (HTTP/1.1
keep-alive is what lets one load generator push thousands of
submissions through a handful of sockets), no chunked encoding, no
TLS.  Both halves live here: the server-side parser the gateway loops
on, and a tiny async client used by the benchmarks and tests.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qs, urlsplit

#: request-line + headers may not exceed this (a farm request is JSON
#: control traffic, not a file upload)
MAX_HEADER_BYTES = 64 * 1024
#: largest accepted body — big enough for a many-point sweep document
MAX_BODY_BYTES = 64 * 1024 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HTTPProtocolError(Exception):
    """Malformed inbound request — the connection is dropped."""


# ----------------------------------------------------------------------
# chaos hook: connection drops / response truncation
# ----------------------------------------------------------------------
#: when set (by :mod:`repro.farm.chaos`), the gateway consults this
#: with ``(request, response_bytes)`` before writing each response.
#: Return ``None`` for normal delivery, ``("drop", 0)`` to close the
#: connection without answering, or ``("truncate", n)`` to send only
#: the first ``n`` bytes and close — the wire-level failure modes a
#: resilient client must survive.
response_fault = None


def set_response_fault(fault) -> None:
    """Install (or clear, with ``None``) the process-wide response
    fault hook.  Test/chaos infrastructure only."""
    global response_fault
    response_fault = fault


@dataclass
class Request:
    """One parsed request."""

    method: str
    path: str
    query: dict[str, list[str]] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise HTTPProtocolError(f"request body is not JSON: {exc}")

    def flag(self, name: str, default: bool = False) -> bool:
        """A ``?name=1`` style boolean query parameter."""
        values = self.query.get(name)
        if not values:
            return default
        return values[-1].lower() not in ("0", "false", "no", "")

    def param(self, name: str, default: str | None = None) -> str | None:
        values = self.query.get(name)
        return values[-1] if values else default


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; ``None`` on a clean EOF between requests."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HTTPProtocolError("connection closed mid-request")
    except asyncio.LimitOverrunError:
        raise HTTPProtocolError("request head exceeds buffer limit")
    if len(head) > MAX_HEADER_BYTES:
        raise HTTPProtocolError("request head too large")

    lines = head.decode("latin-1").split("\r\n")
    try:
        method, target, version = lines[0].split(" ", 2)
    except ValueError:
        raise HTTPProtocolError(f"malformed request line {lines[0]!r}")
    if not version.startswith("HTTP/1."):
        raise HTTPProtocolError(f"unsupported protocol {version!r}")

    headers: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HTTPProtocolError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        raise HTTPProtocolError("chunked bodies are not supported")
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > MAX_BODY_BYTES:
        raise HTTPProtocolError(f"bad content-length {length}")
    body = await reader.readexactly(length) if length else b""

    split = urlsplit(target)
    return Request(
        method=method.upper(),
        path=split.path,
        query=parse_qs(split.query),
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """Render one full response (head + body) ready for ``write()``."""
    reason = REASONS.get(status, "Unknown")
    head = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        head.append(f"{name}: {value}")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def json_body(payload: Any) -> bytes:
    """Compact deterministic JSON bytes (the farm's canonical body
    encoding — sorted keys so equal documents are equal bytes)."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode()


# ----------------------------------------------------------------------
# A tiny async client (benchmarks / load tests)
# ----------------------------------------------------------------------
class AsyncHTTPConnection:
    """One persistent client connection; not concurrency-safe — use
    one per in-flight request stream (that *is* the load test)."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        if self._writer is None:
            await self.connect()
        assert self._reader is not None and self._writer is not None
        payload = body or b""
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Length: {len(payload)}",
            "Content-Type: application/json",
        ]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        self._writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload
        )
        await self._writer.drain()

        status_line = await self._reader.readuntil(b"\r\n")
        parts = status_line.decode("latin-1").split(" ", 2)
        status = int(parts[1])
        resp_headers: dict[str, str] = {}
        while True:
            line = (await self._reader.readuntil(b"\r\n")) \
                .decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            resp_headers[name.strip().lower()] = value.strip()
        length = int(resp_headers.get("content-length", "0") or "0")
        data = await self._reader.readexactly(length) if length else b""
        return status, resp_headers, data

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (OSError, ConnectionError):
                pass
            self._writer = None
            self._reader = None
