"""repro — MATLAB/Simulink-style HW/SW co-simulation for FPGA soft processors.

A from-scratch Python reproduction of *"MATLAB/Simulink Based
Hardware/Software Co-Simulation for Designing Using FPGA Configured
Soft Processors"* (Ou & Prasanna, IPDPS 2005).

The package layers, bottom-up:

* :mod:`repro.fixedpoint` — fixed-point arithmetic substrate
* :mod:`repro.isa`, :mod:`repro.asm`, :mod:`repro.mcc` — the MB32
  soft-processor ISA, assembler/linker and mini-C compiler (the
  ``mb-gcc`` analogue)
* :mod:`repro.iss` — cycle-accurate instruction-set simulator
* :mod:`repro.bus` — FSL / LMB / OPB communication models
* :mod:`repro.sysgen` — System Generator-style arithmetic-level
  hardware block modeling
* :mod:`repro.rtl` — event-driven RTL simulation kernel (the ModelSim
  baseline)
* :mod:`repro.cosim` — the paper's contribution: the high-level
  cycle-accurate co-simulation environment
* :mod:`repro.resources` — rapid resource estimation (Section III-C)
* :mod:`repro.apps` — the paper's two applications: CORDIC division
  and block matrix multiplication
"""

__version__ = "1.0.0"

__all__ = [
    "fixedpoint",
    "isa",
    "asm",
    "mcc",
    "iss",
    "bus",
    "sysgen",
    "rtl",
    "cosim",
    "resources",
    "apps",
    "gdb",
    "pygen",
]
