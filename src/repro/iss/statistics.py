"""Execution statistics collected by the ISS.

The design-space exploration in :mod:`repro.cosim.dse` and the
benchmark harness read these counters to report cycle counts,
instruction mix and stall behaviour.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any


@dataclass
class CPUStats:
    """Counters updated as the CPU executes."""

    instructions: int = 0
    cycles: int = 0
    stall_cycles: int = 0  # cycles spent blocked on FSL accesses
    branches_taken: int = 0
    branches_not_taken: int = 0
    loads: int = 0
    stores: int = 0
    fsl_gets: int = 0
    fsl_puts: int = 0
    #: absolute cycle of the most recent instruction issue — the
    #: persisted tripwire of the co-simulation progress watchdog, so
    #: deadlock detection survives checkpoint/restore bit-identically
    last_retire_cycle: int = 0
    by_mnemonic: Counter = field(default_factory=Counter)

    @property
    def cpi(self) -> float:
        """Average cycles per instruction (including stalls)."""
        return self.cycles / self.instructions if self.instructions else 0.0

    def reset(self) -> None:
        self.instructions = 0
        self.cycles = 0
        self.stall_cycles = 0
        self.branches_taken = 0
        self.branches_not_taken = 0
        self.loads = 0
        self.stores = 0
        self.fsl_gets = 0
        self.fsl_puts = 0
        self.last_retire_cycle = 0
        self.by_mnemonic.clear()

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-safe dict of all counters (used by telemetry
        snapshots and sweep reports)."""
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "cpi": self.cpi,
            "stall_cycles": self.stall_cycles,
            "branches_taken": self.branches_taken,
            "branches_not_taken": self.branches_not_taken,
            "loads": self.loads,
            "stores": self.stores,
            "fsl_gets": self.fsl_gets,
            "fsl_puts": self.fsl_puts,
            "by_mnemonic": dict(sorted(self.by_mnemonic.items())),
        }

    def state_dict(self) -> dict[str, Any]:
        """Serializable snapshot of every counter (checkpointing)."""
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "stall_cycles": self.stall_cycles,
            "branches_taken": self.branches_taken,
            "branches_not_taken": self.branches_not_taken,
            "loads": self.loads,
            "stores": self.stores,
            "fsl_gets": self.fsl_gets,
            "fsl_puts": self.fsl_puts,
            "last_retire_cycle": self.last_retire_cycle,
            "by_mnemonic": dict(sorted(self.by_mnemonic.items())),
        }

    def load_state(self, state: dict[str, Any]) -> None:
        self.instructions = state["instructions"]
        self.cycles = state["cycles"]
        self.stall_cycles = state["stall_cycles"]
        self.branches_taken = state["branches_taken"]
        self.branches_not_taken = state["branches_not_taken"]
        self.loads = state["loads"]
        self.stores = state["stores"]
        self.fsl_gets = state["fsl_gets"]
        self.fsl_puts = state["fsl_puts"]
        self.last_retire_cycle = state["last_retire_cycle"]
        self.by_mnemonic.clear()
        self.by_mnemonic.update(state["by_mnemonic"])

    def summary(self, top_mnemonics: int = 5) -> str:
        lines = [
            f"instructions : {self.instructions}",
            f"cycles       : {self.cycles}",
            f"CPI          : {self.cpi:.3f}",
            f"stall cycles : {self.stall_cycles}",
            f"branches     : {self.branches_taken} taken / "
            f"{self.branches_not_taken} not taken",
            f"memory       : {self.loads} loads / {self.stores} stores",
            f"FSL          : {self.fsl_gets} gets / {self.fsl_puts} puts",
        ]
        if top_mnemonics and self.by_mnemonic:
            lines.append(f"top {min(top_mnemonics, len(self.by_mnemonic))} "
                         "instruction mix:")
            total = self.instructions or 1
            for mnemonic, count in self.by_mnemonic.most_common(top_mnemonics):
                lines.append(
                    f"  {mnemonic:<8} {count:>8}  ({count / total:.1%})"
                )
        return "\n".join(lines)
