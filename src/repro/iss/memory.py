"""Memory system for the MB32 ISS.

The paper's configuration stores instructions and data in on-chip
BRAMs reached through two LMB interface controllers with a fixed
one-cycle latency.  :class:`BRAM` models the memory array;
:class:`AddressSpace` decodes addresses to the BRAM or to debug MMIO
devices (exit / console), which substitute for the JTAG-based I/O a
real board would provide.

All multi-byte accesses are big-endian, matching MicroBlaze.
Unaligned accesses raise :class:`BusFault` (MicroBlaze raises an
unaligned-access exception).
"""

from __future__ import annotations

import base64
import zlib
from typing import Callable, Protocol

#: MMIO addresses used by the runtime (crt0 writes the exit code here).
EXIT_ADDR = 0xFFFF_0000
#: MMIO console: a store writes one character (low byte).
CONSOLE_ADDR = 0xFFFF_0004


class BusFault(RuntimeError):
    """Raised for out-of-range or unaligned accesses."""


class Device(Protocol):
    def dev_read(self, offset: int) -> int: ...
    def dev_write(self, offset: int, value: int) -> None: ...


class BRAM:
    """A block-RAM-backed memory array (byte-addressable, big-endian)."""

    def __init__(self, size: int):
        if size <= 0 or size % 4:
            raise ValueError("BRAM size must be a positive multiple of 4")
        self.size = size
        self._mem = bytearray(size)

    # -- loading -------------------------------------------------------
    def load(self, addr: int, data: bytes) -> None:
        if addr < 0 or addr + len(data) > self.size:
            raise BusFault(f"load of {len(data)} bytes at {addr:#x} out of range")
        self._mem[addr : addr + len(data)] = data

    def dump(self, addr: int = 0, length: int | None = None) -> bytes:
        if length is None:
            length = self.size - addr
        return bytes(self._mem[addr : addr + length])

    # -- checkpointing -------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe snapshot (contents compressed + base64-encoded)."""
        return {
            "size": self.size,
            "mem": base64.b64encode(
                zlib.compress(bytes(self._mem))).decode("ascii"),
        }

    def load_state(self, state: dict) -> None:
        if state["size"] != self.size:
            raise BusFault(
                f"checkpoint BRAM size {state['size']:#x} != {self.size:#x}")
        self._mem[:] = zlib.decompress(base64.b64decode(state["mem"]))

    # -- accesses --------------------------------------------------------
    def _check(self, addr: int, size: int) -> None:
        if addr % size:
            raise BusFault(f"unaligned {size}-byte access at {addr:#010x}")
        if addr < 0 or addr + size > self.size:
            raise BusFault(f"access at {addr:#010x} beyond BRAM size {self.size:#x}")

    def read_u8(self, addr: int) -> int:
        self._check(addr, 1)
        return self._mem[addr]

    def read_u16(self, addr: int) -> int:
        self._check(addr, 2)
        return int.from_bytes(self._mem[addr : addr + 2], "big")

    def read_u32(self, addr: int) -> int:
        self._check(addr, 4)
        return int.from_bytes(self._mem[addr : addr + 4], "big")

    def write_u8(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        self._mem[addr] = value & 0xFF

    def write_u16(self, addr: int, value: int) -> None:
        self._check(addr, 2)
        self._mem[addr : addr + 2] = (value & 0xFFFF).to_bytes(2, "big")

    def write_u32(self, addr: int, value: int) -> None:
        self._check(addr, 4)
        self._mem[addr : addr + 4] = (value & 0xFFFFFFFF).to_bytes(4, "big")


class ExitDevice:
    """A store to this device halts the simulation with an exit code."""

    def __init__(self) -> None:
        self.exit_code: int | None = None

    def dev_read(self, offset: int) -> int:
        return self.exit_code or 0

    def dev_write(self, offset: int, value: int) -> None:
        # Interpret as a signed 32-bit exit code.
        self.exit_code = value - (1 << 32) if value & 0x8000_0000 else value


class ConsoleDevice:
    """Byte-oriented debug console (putchar via MMIO store)."""

    def __init__(self, sink: Callable[[str], None] | None = None):
        self.buffer: list[str] = []
        self._sink = sink

    @property
    def text(self) -> str:
        return "".join(self.buffer)

    def dev_read(self, offset: int) -> int:
        return 0

    def dev_write(self, offset: int, value: int) -> None:
        ch = chr(value & 0xFF)
        self.buffer.append(ch)
        if self._sink is not None:
            self._sink(ch)


class AddressSpace:
    """Address decoder: BRAM at 0, MMIO devices at ``0xFFFF_xxxx``.

    A write hook can be installed to invalidate the CPU decode cache
    when code memory is written (self-modifying code support).
    """

    DEVICE_BASE = 0xFFFF_0000

    def __init__(self, bram: BRAM):
        self.bram = bram
        self.exit_device = ExitDevice()
        self.console = ConsoleDevice()
        self._devices: dict[int, Device] = {
            EXIT_ADDR: self.exit_device,
            CONSOLE_ADDR: self.console,
        }
        self.write_hook: Callable[[int], None] | None = None
        # optional OPB window (memory-mapped peripherals)
        self._opb = None
        self._opb_base = 0
        self._opb_end = 0
        #: extra bus cycles incurred by the most recent access (OPB
        #: transactions take longer than LMB); consumed by the CPU.
        self.extra_latency = 0

    def map_opb(self, bus, base: int, size: int) -> None:
        """Route word accesses in ``[base, base+size)`` to an OPB bus."""
        if base % 4 or size % 4 or size <= 0:
            raise ValueError("OPB window must be word-aligned and non-empty")
        if base < self.bram.size:
            raise ValueError("OPB window overlaps BRAM")
        self._opb = bus
        self._opb_base = base
        self._opb_end = base + size

    def _in_opb(self, addr: int) -> bool:
        return self._opb is not None and self._opb_base <= addr < self._opb_end

    def reset_devices(self) -> None:
        """Clear device state (exit code, console buffer) for a re-run."""
        self.exit_device.exit_code = None
        self.console.buffer.clear()

    def state_dict(self) -> dict:
        """BRAM contents plus debug-device state (checkpointing).

        The OPB window mapping and write hook are wiring, not state —
        a restored simulation re-creates them at construction time.
        """
        return {
            "bram": self.bram.state_dict(),
            "exit_code": self.exit_device.exit_code,
            "console": list(self.console.buffer),
            "extra_latency": self.extra_latency,
        }

    def load_state(self, state: dict) -> None:
        self.bram.load_state(state["bram"])
        self.exit_device.exit_code = state["exit_code"]
        self.console.buffer[:] = state["console"]
        self.extra_latency = state["extra_latency"]

    def add_device(self, addr: int, device: Device) -> None:
        if addr < self.DEVICE_BASE:
            raise ValueError("device addresses must be >= 0xFFFF0000")
        if addr in self._devices:
            raise ValueError(f"device already mapped at {addr:#010x}")
        self._devices[addr] = device

    # -- reads -----------------------------------------------------------
    def read_u8(self, addr: int) -> int:
        if addr >= self.DEVICE_BASE:
            return self._dev(addr).dev_read(0) & 0xFF
        return self.bram.read_u8(addr)

    def read_u16(self, addr: int) -> int:
        if addr >= self.DEVICE_BASE:
            return self._dev(addr).dev_read(0) & 0xFFFF
        return self.bram.read_u16(addr)

    def read_u32(self, addr: int) -> int:
        if addr >= self.DEVICE_BASE:
            return self._dev(addr).dev_read(0) & 0xFFFFFFFF
        if self._in_opb(addr):
            value, latency = self._opb.read_u32(addr)
            self.extra_latency += latency - 1
            return value
        return self.bram.read_u32(addr)

    # -- writes ----------------------------------------------------------
    def write_u8(self, addr: int, value: int) -> None:
        if addr >= self.DEVICE_BASE:
            self._dev(addr).dev_write(0, value & 0xFF)
            return
        self.bram.write_u8(addr, value)
        if self.write_hook is not None:
            self.write_hook(addr)

    def write_u16(self, addr: int, value: int) -> None:
        if addr >= self.DEVICE_BASE:
            self._dev(addr).dev_write(0, value & 0xFFFF)
            return
        self.bram.write_u16(addr, value)
        if self.write_hook is not None:
            self.write_hook(addr)

    def write_u32(self, addr: int, value: int) -> None:
        if addr >= self.DEVICE_BASE:
            self._dev(addr).dev_write(0, value)
            return
        if self._in_opb(addr):
            self.extra_latency += self._opb.write_u32(addr, value) - 1
            return
        self.bram.write_u32(addr, value)
        if self.write_hook is not None:
            self.write_hook(addr)

    def _dev(self, addr: int) -> Device:
        dev = self._devices.get(addr)
        if dev is None:
            raise BusFault(f"no device at {addr:#010x}")
        return dev
