"""CPU-side FSL port unit.

MicroBlaze has up to eight *input* FSLs (peripheral → processor, read
with ``get``-family instructions) and eight *output* FSLs (processor →
peripheral, written with ``put``-family instructions).  This unit owns
the mapping from FSL channel numbers to :class:`~repro.bus.fsl.FSLChannel`
objects and implements the get/put semantics, including the control-bit
mismatch flag and non-blocking failure reporting.
"""

from __future__ import annotations

from repro.bus.fsl import FSLChannel

NUM_FSL = 8


class FSLConfigError(ValueError):
    """Raised for invalid channel configuration or access."""


class FSLPorts:
    """The processor's FSL interface: 8 input + 8 output channels."""

    def __init__(self) -> None:
        self.inputs: list[FSLChannel | None] = [None] * NUM_FSL
        self.outputs: list[FSLChannel | None] = [None] * NUM_FSL
        #: set when a get/cget saw a control-bit mismatch (MSR[FSL]).
        self.error = False

    def state_dict(self) -> dict:
        """Only the sticky error flag is port-unit state; the channels
        themselves are owned (and checkpointed) by the hardware side."""
        return {"error": self.error}

    def load_state(self, state: dict) -> None:
        self.error = state["error"]

    def connect_input(self, channel_id: int, channel: FSLChannel) -> None:
        """Attach ``channel`` as input FSL ``channel_id`` (read side)."""
        self._check_id(channel_id)
        self.inputs[channel_id] = channel

    def connect_output(self, channel_id: int, channel: FSLChannel) -> None:
        """Attach ``channel`` as output FSL ``channel_id`` (write side)."""
        self._check_id(channel_id)
        self.outputs[channel_id] = channel

    @staticmethod
    def _check_id(channel_id: int) -> None:
        if not 0 <= channel_id < NUM_FSL:
            raise FSLConfigError(f"FSL channel id out of range: {channel_id}")

    def _input(self, channel_id: int) -> FSLChannel:
        self._check_id(channel_id)
        ch = self.inputs[channel_id]
        if ch is None:
            raise FSLConfigError(f"input FSL {channel_id} not connected")
        return ch

    def _output(self, channel_id: int) -> FSLChannel:
        self._check_id(channel_id)
        ch = self.outputs[channel_id]
        if ch is None:
            raise FSLConfigError(f"output FSL {channel_id} not connected")
        return ch

    # ------------------------------------------------------------------
    # Instruction semantics.  Each returns (completed, value_or_None).
    # For blocking accesses the CPU retries every cycle until completed.
    # ------------------------------------------------------------------
    def get(self, channel_id: int, control: bool) -> tuple[bool, int | None]:
        """``get``/``cget`` semantics: pop one word if available."""
        ch = self._input(channel_id)
        word = ch.pop()
        if word is None:
            return False, None
        if word.control != control:
            self.error = True
        return True, word.data

    def put(self, channel_id: int, value: int, control: bool) -> bool:
        """``put``/``cput`` semantics: push one word if space."""
        ch = self._output(channel_id)
        return ch.push(value, control)

    def input_exists(self, channel_id: int) -> bool:
        return self._input(channel_id).exists

    def output_full(self, channel_id: int) -> bool:
        return self._output(channel_id).full
