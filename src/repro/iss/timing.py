"""MB32 instruction timing model.

Latencies follow the 3-stage-pipeline MicroBlaze documented behaviour
the paper relies on (e.g. "the multiplication instruction requires
three clock cycles to complete"):

==================  ======  =====================================
Instruction class   Cycles  Notes
==================  ======  =====================================
ALU / logic / IMM   1
barrel shift        1       optional barrel shifter present
single-bit shift    1
multiply            3       embedded 18×18 multipliers
divide              34      optional hardware divider
load                2       1-cycle LMB latency included
store               2
branch not taken    1
branch taken        3       no delay slot
branch taken (D)    2       total: 1 for the branch + the delay-slot
                            instruction's own cost (typically 1)
rtsd                2       always delayed, same split as above
FSL get/put         2       plus stall cycles while blocked
==================  ======  =====================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.isa.decoder import DecodedInstr


@dataclass(frozen=True)
class TimingModel:
    """Per-class cycle counts; immutable so configs can share it."""

    alu: int = 1
    barrel_shift: int = 1
    multiply: int = 3
    divide: int = 34
    load: int = 2
    store: int = 2
    branch_not_taken: int = 1
    branch_taken: int = 3
    #: charged to the branch itself; the delay-slot instruction adds
    #: its own cost, giving the documented 2-cycle total.
    branch_taken_delayed: int = 1
    fsl: int = 2

    def base_cost(self, instr: DecodedInstr) -> int:
        """Cost in cycles assuming no stalls and branches not taken.

        Branch-taken costs are applied by the CPU when the branch
        resolves; FSL stall cycles accrue while the FIFO blocks.
        """
        kind = instr.spec.kind
        if kind in ("add", "rsub", "cmp", "logic", "shift1", "sext", "imm"):
            return self.alu
        if kind == "bs":
            return self.barrel_shift
        if kind == "mul":
            return self.multiply
        if kind == "idiv":
            return self.divide
        if kind == "load":
            return self.load
        if kind == "store":
            return self.store
        if kind in ("br", "bcc", "rtsd"):
            return self.branch_not_taken
        if kind == "fsl":
            return self.fsl
        raise ValueError(f"no timing for instruction kind {kind!r}")

    def taken_cost(self, delayed: bool) -> int:
        """Total cycles charged to a taken control transfer (the
        delay-slot instruction's own cost is charged separately)."""
        return self.branch_taken_delayed if delayed else self.branch_taken
