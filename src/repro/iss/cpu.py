"""MB32 cycle-accurate CPU core.

The CPU advances one clock cycle per :meth:`CPU.tick`.  A multi-cycle
instruction occupies the pipeline for its full latency; blocking FSL
accesses stall the processor cycle-by-cycle until the FIFO can serve
them, exactly as Section III-B of the paper describes ("blocking read
or write will stall the MicroBlaze processor until the read or write
can occur").

Architectural notes
-------------------
* ``r0`` reads as zero; writes to it are discarded.
* The carry flag models MSR[C]; ``addk``-style instructions keep it.
* The ``imm`` prefix latches the upper 16 immediate bits for exactly
  the next instruction.
* Delay-slot branches execute the following instruction before the
  transfer; putting a branch or ``imm``-consumer hazard in a delay slot
  is rejected (undefined on real hardware).
* Register writebacks are applied on the first cycle of an instruction
  while the cost is charged over its full latency.  Only FSL and MMIO
  effects are externally observable, and FSL transfers are applied on
  their architecturally correct cycle (the instruction's second cycle),
  so co-simulation interleaving remains cycle-accurate at the interface
  level — the abstraction the paper defines as "high-level
  cycle-accurate".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.isa.decoder import DecodedInstr, decode
from repro.iss.fsl import FSLPorts
from repro.iss.memory import AddressSpace, BRAM
from repro.iss.statistics import CPUStats
from repro.iss.timing import TimingModel
from repro.telemetry.events import (
    CPU_TRACK,
    RETIRE,
    STALL_BEGIN,
    STALL_END,
    TelemetryEvent,
)

_M32 = 0xFFFFFFFF
_SIGN = 0x80000000

#: Sentinel returned by :meth:`CPU.advance_horizon` when the processor
#: is blocked on an FSL access that cannot complete until the other
#: endpoint acts — it can be bulk-advanced for as long as the FIFOs
#: stay frozen.
ADVANCE_FOREVER = 1 << 62


def _s32(v: int) -> int:
    """Interpret a u32 as signed."""
    return v - 0x100000000 if v & _SIGN else v


class CPUError(RuntimeError):
    """Raised on architectural violations (bad delay slot, missing
    optional hardware, decode failures)."""


class HaltReason(enum.Enum):
    EXIT = "exit"  # program stored to the exit device
    BREAKPOINT = "breakpoint"
    MAX_CYCLES = "max_cycles"


@dataclass(frozen=True)
class CPUConfig:
    """Soft-processor configuration knobs.

    These model the MicroBlaze configurability the paper's design-space
    exploration ranges over: optional hardware multiplier, divider and
    barrel shifter, and the FSL link count.
    """

    use_hw_multiplier: bool = True
    use_hw_divider: bool = False
    use_barrel_shifter: bool = True
    decode_cache: bool = True
    timing: TimingModel = field(default_factory=TimingModel)
    frequency_hz: float = 50e6  # the paper's 50 MHz configuration


@dataclass
class _PendingFSL:
    put: bool
    channel: int
    control: bool
    blocking: bool
    rd: int
    value: int  # value to put (put side)


class CPU:
    """The MB32 processor model."""

    def __init__(
        self,
        memory: AddressSpace | BRAM,
        config: CPUConfig | None = None,
        fsl: FSLPorts | None = None,
    ):
        if isinstance(memory, BRAM):
            memory = AddressSpace(memory)
        self.mem = memory
        self.config = config or CPUConfig()
        self.fsl = fsl or FSLPorts()
        self.regs = [0] * 32
        self.pc = 0
        self.carry = 0
        self.imm_latch: int | None = None
        self.cycle = 0
        self.halted = False
        self.halt_reason: HaltReason | None = None
        self.exit_code: int | None = None
        self.stats = CPUStats()
        self.breakpoints: set[int] = set()
        self._busy = 0
        self._pending: _PendingFSL | None = None
        self._pending_next_pc = 0
        self._delay_target: int | None = None
        self._in_delay_slot = False
        self._decode_cache: dict[int, DecodedInstr] = {}
        #: optional callback (pc, instruction word) on every issue
        self.trace_hook = None
        #: optional :class:`~repro.telemetry.events.EventBus`; when set,
        #: the CPU emits retire and stall begin/end events
        self.events = None
        #: telemetry track retire events land on — multi-CPU simulations
        #: rename this per processor (``cpu0``, ``cpu1``, …) so exported
        #: traces keep one timeline per core
        self.track = CPU_TRACK
        self._stall_since: int | None = None
        if self.config.decode_cache:
            self.mem.write_hook = self._invalidate

    # ------------------------------------------------------------------
    # Public control
    # ------------------------------------------------------------------
    def reset(self, pc: int = 0) -> None:
        self.regs = [0] * 32
        self.pc = pc
        self.carry = 0
        self.imm_latch = None
        self.cycle = 0
        self.halted = False
        self.halt_reason = None
        self.exit_code = None
        self._busy = 0
        self._pending = None
        self._pending_next_pc = 0
        self._delay_target = None
        self._in_delay_slot = False
        self._stall_since = None
        self._decode_cache.clear()
        self.stats.reset()
        self.fsl.error = False  # MSR[FSL] from a previous run must not leak
        self.mem.reset_devices()

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Full architectural + microarchitectural state, JSON-safe.

        Wiring (breakpoints, hooks, event bus) and caches (the decode
        cache) are excluded: they are re-created by construction or
        rebuilt on demand and do not affect observable behaviour.
        """
        pend = self._pending
        return {
            "regs": list(self.regs),
            "pc": self.pc,
            "carry": self.carry,
            "imm_latch": self.imm_latch,
            "cycle": self.cycle,
            "halted": self.halted,
            "halt_reason": self.halt_reason.value if self.halt_reason else None,
            "exit_code": self.exit_code,
            "busy": self._busy,
            "pending": None if pend is None else {
                "put": pend.put,
                "channel": pend.channel,
                "control": pend.control,
                "blocking": pend.blocking,
                "rd": pend.rd,
                "value": pend.value,
            },
            "pending_next_pc": self._pending_next_pc,
            "delay_target": self._delay_target,
            "in_delay_slot": self._in_delay_slot,
            "stall_since": self._stall_since,
            "stats": self.stats.state_dict(),
            "fsl": self.fsl.state_dict(),
            "mem": self.mem.state_dict(),
        }

    def load_state(self, state: dict) -> None:
        self.regs[:] = state["regs"]
        self.pc = state["pc"]
        self.carry = state["carry"]
        self.imm_latch = state["imm_latch"]
        self.cycle = state["cycle"]
        self.halted = state["halted"]
        self.halt_reason = (
            HaltReason(state["halt_reason"]) if state["halt_reason"] else None
        )
        self.exit_code = state["exit_code"]
        self._busy = state["busy"]
        pend = state["pending"]
        self._pending = None if pend is None else _PendingFSL(**pend)
        self._pending_next_pc = state["pending_next_pc"]
        self._delay_target = state["delay_target"]
        self._in_delay_slot = state["in_delay_slot"]
        self._stall_since = state["stall_since"]
        self.stats.load_state(state["stats"])
        self.fsl.load_state(state["fsl"])
        self.mem.load_state(state["mem"])
        self._decode_cache.clear()

    def tick(self) -> None:
        """Advance the processor by exactly one clock cycle."""
        if self.halted:
            return
        self.cycle += 1
        self.stats.cycles += 1
        if self._busy > 0:
            self._busy -= 1
            return
        if self._pending is not None:
            self._complete_fsl()
            return
        if self.breakpoints and self.pc in self.breakpoints and not self._in_delay_slot:
            self.cycle -= 1
            self.stats.cycles -= 1
            self.halted = True
            self.halt_reason = HaltReason.BREAKPOINT
            return
        self._issue()

    def run(self, max_cycles: int = 10_000_000) -> HaltReason:
        """Run until halt (or ``max_cycles``).  This is the fast path
        used for software-only simulation (Table II)."""
        tick = self.tick
        for _ in range(max_cycles):
            if self.halted:
                break
            tick()
        if not self.halted:
            self.halted = True
            self.halt_reason = HaltReason.MAX_CYCLES
        assert self.halt_reason is not None
        return self.halt_reason

    def resume(self) -> None:
        """Clear a breakpoint/max-cycles halt so execution can continue."""
        if self.halt_reason in (HaltReason.BREAKPOINT, HaltReason.MAX_CYCLES):
            self.halted = False
            self.halt_reason = None

    # ------------------------------------------------------------------
    # Fast-forward (bulk cycle retirement)
    # ------------------------------------------------------------------
    def advance_horizon(self) -> int:
        """Cycles :meth:`advance` may retire in bulk right now, assuming
        the FSL FIFOs do not change in the meantime.

        Positive while the pipeline is occupied by a multi-cycle
        instruction (the remaining latency) or blocked on an FSL access
        that cannot currently complete (:data:`ADVANCE_FOREVER`).  Zero
        whenever the next cycle would issue an instruction — issuing has
        externally visible effects, so it must go through :meth:`tick`.
        """
        if self.halted:
            return 0
        if self._busy > 0:
            return self._busy
        pend = self._pending
        if pend is not None and pend.blocking:
            if pend.put:
                if self.fsl.output_full(pend.channel):
                    return ADVANCE_FOREVER
            elif not self.fsl.input_exists(pend.channel):
                return ADVANCE_FOREVER
        return 0

    def advance(self, n: int) -> None:
        """Retire ``n`` stall/busy cycles in one step.

        Equivalent to ``n`` consecutive :meth:`tick` calls under the
        caller-guaranteed precondition ``n <= advance_horizon()`` (and
        unchanged FIFOs): ``cycle``, ``stats.cycles``,
        ``stats.stall_cycles`` and the per-channel reject counters all
        end up exactly as a per-cycle run would leave them.
        """
        if n <= 0 or self.halted:
            return
        if self._busy > 0:
            if n > self._busy:
                raise CPUError(
                    f"advance({n}) exceeds remaining instruction latency "
                    f"({self._busy})"
                )
            self._busy -= n
            self.cycle += n
            self.stats.cycles += n
            return
        pend = self._pending
        if pend is not None and pend.blocking:
            # Mirror per-cycle retries: each skipped cycle would have
            # attempted the transfer and been rejected by the FIFO.
            if pend.put:
                channel = self.fsl._output(pend.channel)
                if channel.can_push():
                    raise CPUError(
                        "advance() while the blocked FSL put could complete"
                    )
                channel.push_rejects += n
            else:
                channel = self.fsl._input(pend.channel)
                if channel.can_pop():
                    raise CPUError(
                        "advance() while the blocked FSL get could complete"
                    )
                channel.pop_rejects += n
            if self.events is not None and self._stall_since is None:
                # First skipped cycle = the cycle the first per-cycle
                # retry would have run at, so event timelines match
                # across execution modes.
                self._emit_stall_begin(pend, self.cycle + 1)
            self.cycle += n
            self.stats.cycles += n
            self.stats.stall_cycles += n
            return
        raise CPUError("advance() called while the CPU is ready to issue")

    @property
    def busy(self) -> bool:
        """True while the current instruction still occupies the pipe."""
        return self._busy > 0 or self._pending is not None

    def simulated_time_s(self) -> float:
        """Simulated wall time at the configured clock frequency."""
        return self.cycle / self.config.frequency_hz

    # ------------------------------------------------------------------
    # Fetch / decode
    # ------------------------------------------------------------------
    def _invalidate(self, addr: int) -> None:
        self._decode_cache.pop(addr & ~3, None)

    def _fetch(self, pc: int) -> DecodedInstr:
        if self.config.decode_cache:
            cached = self._decode_cache.get(pc)
            if cached is not None:
                return cached
        try:
            word = self.mem.read_u32(pc)
            instr = decode(word)
        except Exception as exc:
            raise CPUError(f"fetch/decode failed at pc={pc:#010x}: {exc}") from exc
        if self.config.decode_cache:
            self._decode_cache[pc] = instr
        return instr

    # ------------------------------------------------------------------
    # Execute
    # ------------------------------------------------------------------
    def _issue(self) -> None:
        instr = self._fetch(self.pc)
        spec = instr.spec
        kind = spec.kind
        self.stats.instructions += 1
        self.stats.last_retire_cycle = self.cycle
        self.stats.by_mnemonic[spec.mnemonic] += 1
        if self.trace_hook is not None:
            self.trace_hook(self.pc, instr.word)
        if self.events is not None:
            self.events.emit(TelemetryEvent(
                RETIRE, self.cycle, self.track, self.pc, instr.word,
                spec.mnemonic,
            ))

        # Effective immediate (imm prefix aware).
        if spec.fmt == "B":
            if self.imm_latch is not None:
                imm = (self.imm_latch << 16) | (instr.imm & 0xFFFF)
                imm = _s32(imm & _M32)
            else:
                imm = instr.imm
        else:
            imm = 0
        if kind != "imm":
            self.imm_latch = None

        cost = self.config.timing.base_cost(instr)
        next_pc = (self.pc + 4) & _M32
        regs = self.regs
        p = spec.props

        if kind == "add" or kind == "rsub":
            a = regs[instr.ra]
            b = (imm & _M32) if p.get("imm") else regs[instr.rb]
            if kind == "add":
                total = a + b + (self.carry if p.get("carry_in") else 0)
            else:
                total = b + ((~a) & _M32) + (
                    self.carry if p.get("carry_in") else 1
                )
            if instr.rd:
                regs[instr.rd] = total & _M32
            if not p.get("keep_carry"):
                self.carry = 1 if total > _M32 else 0

        elif kind == "logic":
            a = regs[instr.ra]
            b = (imm & _M32) if p.get("imm") else regs[instr.rb]
            op = p["op"]
            if op == "or":
                res = a | b
            elif op == "and":
                res = a & b
            elif op == "xor":
                res = a ^ b
            else:  # andn
                res = a & (~b & _M32)
            if instr.rd:
                regs[instr.rd] = res

        elif kind == "load":
            base = regs[instr.ra]
            off = imm if p.get("imm") else regs[instr.rb]
            addr = (base + off) & _M32
            size = p["size"]
            if size == 1:
                val = self.mem.read_u8(addr)
            elif size == 2:
                val = self.mem.read_u16(addr)
            else:
                val = self.mem.read_u32(addr)
            if instr.rd:
                regs[instr.rd] = val
            self.stats.loads += 1
            if self.mem.extra_latency:
                cost += self.mem.extra_latency  # OPB transaction cycles
                self.mem.extra_latency = 0

        elif kind == "store":
            base = regs[instr.ra]
            off = imm if p.get("imm") else regs[instr.rb]
            addr = (base + off) & _M32
            size = p["size"]
            val = regs[instr.rd]
            if size == 1:
                self.mem.write_u8(addr, val)
            elif size == 2:
                self.mem.write_u16(addr, val)
            else:
                self.mem.write_u32(addr, val)
            self.stats.stores += 1
            if self.mem.extra_latency:
                cost += self.mem.extra_latency  # OPB transaction cycles
                self.mem.extra_latency = 0
            if self.mem.exit_device.exit_code is not None:
                self.exit_code = self.mem.exit_device.exit_code
                self.halted = True
                self.halt_reason = HaltReason.EXIT

        elif kind == "bcc":
            a = _s32(regs[instr.ra])
            cond = p["cond"]
            taken = (
                (cond == "eq" and a == 0)
                or (cond == "ne" and a != 0)
                or (cond == "lt" and a < 0)
                or (cond == "le" and a <= 0)
                or (cond == "gt" and a > 0)
                or (cond == "ge" and a >= 0)
            )
            if taken:
                off = imm if p.get("imm") else _s32(regs[instr.rb])
                target = (self.pc + off) & _M32
                self._take_branch(target, bool(p.get("delayed")))
                self.stats.branches_taken += 1
                cost = self.config.timing.taken_cost(bool(p.get("delayed")))
                self._busy = cost - 1
                return
            self.stats.branches_not_taken += 1

        elif kind == "br":
            off = imm if p.get("imm") else _s32(regs[instr.rb])
            target = (off & _M32) if p.get("absolute") else (self.pc + off) & _M32
            if p.get("link") and instr.rd:
                regs[instr.rd] = self.pc
            self._take_branch(target, bool(p.get("delayed")))
            self.stats.branches_taken += 1
            cost = self.config.timing.taken_cost(bool(p.get("delayed")))
            self._busy = cost - 1
            return

        elif kind == "rtsd":
            target = (regs[instr.ra] + imm) & _M32
            self._take_branch(target, delayed=True)
            self.stats.branches_taken += 1
            cost = self.config.timing.taken_cost(True)
            self._busy = cost - 1
            return

        elif kind == "mul":
            if not self.config.use_hw_multiplier:
                raise CPUError(
                    "mul executed but the processor is configured without "
                    "a hardware multiplier"
                )
            a = regs[instr.ra]
            b = (imm & _M32) if p.get("imm") else regs[instr.rb]
            if instr.rd:
                regs[instr.rd] = (a * b) & _M32

        elif kind == "bs":
            if not self.config.use_barrel_shifter:
                raise CPUError(
                    "barrel shift executed but the processor is configured "
                    "without a barrel shifter"
                )
            a = regs[instr.ra]
            amount = (imm if p.get("imm") else regs[instr.rb]) & 31
            if p["dir"] == "left":
                res = (a << amount) & _M32
            elif p["arith"]:
                res = (_s32(a) >> amount) & _M32
            else:
                res = a >> amount
            if instr.rd:
                regs[instr.rd] = res

        elif kind == "shift1":
            a = regs[instr.ra]
            op = p["op"]
            out_carry = a & 1
            if op == "sra":
                res = (a >> 1) | (a & _SIGN)
            elif op == "src":
                res = (a >> 1) | (self.carry << 31)
            else:  # srl
                res = a >> 1
            if instr.rd:
                regs[instr.rd] = res
            self.carry = out_carry

        elif kind == "sext":
            a = regs[instr.ra]
            if p["bits"] == 8:
                res = (a & 0xFF) | (_M32 & ~0xFF if a & 0x80 else 0)
            else:
                res = (a & 0xFFFF) | (_M32 & ~0xFFFF if a & 0x8000 else 0)
            if instr.rd:
                regs[instr.rd] = res & _M32

        elif kind == "cmp":
            a = regs[instr.ra]
            b = regs[instr.rb]
            res = (b + ((~a) & _M32) + 1) & _M32
            gt = _s32(a) > _s32(b) if p["signed"] else a > b
            res = (res | _SIGN) if gt else (res & ~_SIGN)
            if instr.rd:
                regs[instr.rd] = res

        elif kind == "imm":
            self.imm_latch = instr.imm & 0xFFFF

        elif kind == "idiv":
            if not self.config.use_hw_divider:
                raise CPUError(
                    "idiv executed but the processor is configured without "
                    "a hardware divider"
                )
            den = _s32(regs[instr.ra]) if p["signed"] else regs[instr.ra]
            num = _s32(regs[instr.rb]) if p["signed"] else regs[instr.rb]
            if den == 0:
                res = 0
            else:
                q = abs(num) // abs(den)
                if (num < 0) != (den < 0):
                    q = -q
                res = q & _M32
            if instr.rd:
                regs[instr.rd] = res

        elif kind == "fsl":
            # Issue cycle now; the transfer happens on the next cycle.
            self._pending = _PendingFSL(
                put=bool(p["put"]),
                channel=instr.fsl_id,
                control=bool(p["control"]),
                blocking=bool(p["blocking"]),
                rd=instr.rd,
                value=regs[instr.ra],
            )
            self._pending_next_pc = next_pc
            return  # pc advances when the transfer completes

        else:  # pragma: no cover - all kinds handled
            raise CPUError(f"unimplemented instruction kind {kind!r}")

        self._busy = cost - 1
        self._commit_pc(next_pc)

    # ------------------------------------------------------------------
    def _take_branch(self, target: int, delayed: bool) -> None:
        if self._in_delay_slot:
            raise CPUError(
                f"branch at pc={self.pc:#010x} inside a delay slot"
            )
        if delayed:
            self._delay_target = target
            self._in_delay_slot = True
            self.pc = (self.pc + 4) & _M32  # execute the slot next
        else:
            self.pc = target

    def _commit_pc(self, next_pc: int) -> None:
        if self._in_delay_slot and self._delay_target is not None:
            # The just-committed instruction was the delay slot.
            self.pc = self._delay_target
            self._delay_target = None
            self._in_delay_slot = False
        else:
            self.pc = next_pc

    def _complete_fsl(self) -> None:
        pend = self._pending
        assert pend is not None
        if pend.put:
            pushed = self.fsl.put(pend.channel, pend.value, pend.control)
            if pushed:
                self.stats.fsl_puts += 1
                if not pend.blocking:
                    self.carry = 0
            elif pend.blocking:
                self.stats.stall_cycles += 1
                if self.events is not None and self._stall_since is None:
                    self._emit_stall_begin(pend, self.cycle)
                return  # keep stalling; retry next cycle
            else:
                self.carry = 1  # non-blocking put failed: data dropped
        else:
            ok, value = self.fsl.get(pend.channel, pend.control)
            if ok:
                if pend.rd:
                    self.regs[pend.rd] = value  # type: ignore[assignment]
                if not pend.blocking:
                    self.carry = 0
                self.stats.fsl_gets += 1
            elif pend.blocking:
                self.stats.stall_cycles += 1
                if self.events is not None and self._stall_since is None:
                    self._emit_stall_begin(pend, self.cycle)
                return  # keep stalling; retry next cycle
            else:
                self.carry = 1  # non-blocking read failed
        if self._stall_since is not None:
            self._emit_stall_end(pend)
        self._pending = None
        self._commit_pc(self._pending_next_pc)

    # -- stall event helpers (only reached with a bus attached) --------
    def _stall_channel_name(self, pend: _PendingFSL) -> str:
        channel = (
            self.fsl._output(pend.channel) if pend.put
            else self.fsl._input(pend.channel)
        )
        return channel.name

    def _emit_stall_begin(self, pend: _PendingFSL, first_cycle: int) -> None:
        self._stall_since = first_cycle
        self.events.emit(TelemetryEvent(
            STALL_BEGIN, first_cycle, self._stall_channel_name(pend),
            text=self.track,
        ))

    def _emit_stall_end(self, pend: _PendingFSL) -> None:
        if self.events is not None:
            self.events.emit(TelemetryEvent(
                STALL_END, self.cycle, self._stall_channel_name(pend),
                aux=self.cycle - self._stall_since, text=self.track,
            ))
        self._stall_since = None
