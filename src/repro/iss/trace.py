"""Instruction-level execution tracing.

Attach an :class:`InstructionTracer` to a CPU to record the retired
instruction stream (pc, disassembly, cycle) — the equivalent of
``mb-gdb``'s instruction trace, used for debugging compiler output and
for the execution profiles in the examples.

The tracer is a thin adapter over the telemetry event bus
(:mod:`repro.telemetry.events`): it subscribes to retire events on the
CPU's bus, creating a private bus when the CPU has none.  When a
:class:`~repro.telemetry.Telemetry` instance will also be attached,
attach it *before* installing tracers so both share one bus.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.asm.disassembler import disassemble
from repro.iss.cpu import CPU
from repro.telemetry.events import RETIRE, EventBus, TelemetryEvent


@dataclass
class TraceEntry:
    cycle: int
    pc: int
    word: int
    text: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.cycle:8d}] {self.pc:08x}:  {self.text}"


@dataclass
class InstructionTracer:
    """Records retired instructions; optionally bounded."""

    cpu: CPU
    limit: int | None = None
    entries: list[TraceEntry] = field(default_factory=list)
    pc_histogram: Counter = field(default_factory=Counter)
    _installed: bool = False

    def install(self) -> "InstructionTracer":
        if self._installed:
            return self
        if getattr(self.cpu, "_instruction_tracer", None) is not None:
            raise RuntimeError("CPU already has a trace hook")
        if self.cpu.events is None:
            self.cpu.events = EventBus()
        self.cpu.events.subscribe(self._on_retire, kinds=(RETIRE,))
        self.cpu._instruction_tracer = self
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            if self.cpu.events is not None:
                self.cpu.events.unsubscribe(self._on_retire)
            self.cpu._instruction_tracer = None
            self._installed = False

    def _on_retire(self, event: TelemetryEvent) -> None:
        self.pc_histogram[event.value] += 1
        if self.limit is not None and len(self.entries) >= self.limit:
            return
        self.entries.append(
            TraceEntry(event.cycle, event.value, event.aux,
                       disassemble(event.aux))
        )

    # ------------------------------------------------------------------
    def text(self, last: int | None = None) -> str:
        entries = self.entries if last is None else self.entries[-last:]
        return "\n".join(str(e) for e in entries)

    def hottest(self, n: int = 10) -> list[tuple[int, int]]:
        """(pc, count) of the most frequently executed addresses —
        a poor man's profiler for finding the inner loop."""
        return self.pc_histogram.most_common(n)
