"""Convenience helpers to load and run linked programs on the ISS."""

from __future__ import annotations

from repro.asm.linker import Program
from repro.iss.cpu import CPU, CPUConfig, HaltReason
from repro.iss.fsl import FSLPorts
from repro.iss.memory import AddressSpace, BRAM


def make_cpu(
    program: Program,
    config: CPUConfig | None = None,
    fsl: FSLPorts | None = None,
    memory_size: int | None = None,
) -> CPU:
    """Build a CPU with ``program`` loaded and the PC at its entry."""
    if memory_size is None:
        memory_size = program.memory_size or max(program.memory_required, 4096)
    memory_size = (memory_size + 3) & ~3
    bram = BRAM(memory_size)
    program.load_into(bram)
    cpu = CPU(AddressSpace(bram), config=config, fsl=fsl)
    cpu.pc = program.entry
    return cpu


def run_to_completion(
    program: Program,
    config: CPUConfig | None = None,
    fsl: FSLPorts | None = None,
    max_cycles: int = 10_000_000,
    memory_size: int | None = None,
) -> tuple[int | None, CPU]:
    """Run ``program`` until it exits; returns ``(exit_code, cpu)``.

    ``exit_code`` is None when the run hit ``max_cycles`` instead of
    exiting — callers that expect termination should assert on it.
    """
    cpu = make_cpu(program, config=config, fsl=fsl, memory_size=memory_size)
    reason = cpu.run(max_cycles=max_cycles)
    if reason is HaltReason.EXIT:
        return cpu.exit_code, cpu
    return None, cpu
