"""Cycle-accurate instruction-set simulator for MB32.

This is the analogue of the Xilinx MicroBlaze cycle-accurate simulator
that the paper drives through ``mb-gdb``.  The CPU advances one clock
cycle per :meth:`~repro.iss.cpu.CPU.tick` call so it can be interleaved
with the hardware-peripheral model by the co-simulation engine; a
faster :meth:`~repro.iss.cpu.CPU.run` loop serves software-only
simulation (the paper's Table II "instruction simulator" row).
"""

from repro.iss.cpu import CPU, CPUConfig, CPUError, HaltReason
from repro.iss.memory import (
    AddressSpace,
    BRAM,
    BusFault,
    ConsoleDevice,
    ExitDevice,
    CONSOLE_ADDR,
    EXIT_ADDR,
)
from repro.iss.timing import TimingModel
from repro.iss.fsl import FSLPorts
from repro.iss.statistics import CPUStats

__all__ = [
    "CPU",
    "CPUConfig",
    "CPUError",
    "HaltReason",
    "AddressSpace",
    "BRAM",
    "BusFault",
    "ConsoleDevice",
    "ExitDevice",
    "CONSOLE_ADDR",
    "EXIT_ADDR",
    "TimingModel",
    "FSLPorts",
    "CPUStats",
]
