"""MB32 runtime library: startup code and arithmetic helpers.

``crt0`` initializes the stack pointer, calls ``main`` and reports its
return value to the debug exit device (the board-less substitute for
halting a JTAG session).  The library provides software multiply,
divide and modulo for processor configurations without the optional
hardware units — the same lowering ``mb-gcc`` applies via libgcc's
``__mulsi3``/``__divsi3`` on a MicroBlaze built without those units.
"""

from __future__ import annotations

from repro.iss.memory import CONSOLE_ADDR, EXIT_ADDR


def crt0_source(stack_top: int) -> str:
    """Startup code with the stack pointer set to ``stack_top``."""
    return f"""
    .text
    .global _start
_start:
    li      r1, {stack_top}         # stack grows down from the top of BRAM
    brlid   r15, main
    nop                             # delay slot
    # r3 = main's return value; report it to the exit device.
    li      r12, {EXIT_ADDR}
    swi     r3, r12, 0
_exit_spin:
    bri     0                       # not reached (exit device halts)
"""


#: putchar via the debug console MMIO register.
_PUTCHAR_ASM = f"""
    .text
    .global __putchar
__putchar:
    li      r12, {CONSOLE_ADDR}
    swi     r5, r12, 0
    rtsd    r15, 8
    nop
"""

#: exit(code) — store to the exit device; never returns.
_EXIT_ASM = f"""
    .text
    .global __exit
__exit:
    li      r12, {EXIT_ADDR}
    swi     r5, r12, 0
__exit_hang:
    bri     0
"""

#: variable shifts for configurations without the barrel shifter:
#: loop over single-bit shift instructions.  r3 = r5 shifted by r6&31.
_SOFT_SHIFT_ASM = """
    .text
    .global __ashlsi3
__ashlsi3:
    andi    r6, r6, 31
    addk    r3, r5, r0
    beqi    r6, __ashl_done
__ashl_loop:
    addk    r3, r3, r3              # 1-bit left shift
    addik   r6, r6, -1
    bnei    r6, __ashl_loop
__ashl_done:
    rtsd    r15, 8
    nop

    .global __ashrsi3
__ashrsi3:
    andi    r6, r6, 31
    addk    r3, r5, r0
    beqi    r6, __ashr_done
__ashr_loop:
    sra     r3, r3
    addik   r6, r6, -1
    bnei    r6, __ashr_loop
__ashr_done:
    rtsd    r15, 8
    nop

    .global __lshrsi3
__lshrsi3:
    andi    r6, r6, 31
    addk    r3, r5, r0
    beqi    r6, __lshr_done
__lshr_loop:
    srl     r3, r3
    addik   r6, r6, -1
    bnei    r6, __lshr_loop
__lshr_done:
    rtsd    r15, 8
    nop
"""

#: unsigned 32x32 multiply (shift-add), for no-multiplier configs.
#: r3 = r5 * r6.  Clobbers r11, r12.
_MULSI3_ASM = """
    .text
    .global __mulsi3
__mulsi3:
    addik   r3, r0, 0
__mul_loop:
    andi    r11, r6, 1
    beqi    r11, __mul_skip
    addk    r3, r3, r5
__mul_skip:
    addk    r5, r5, r5              # multiplicand <<= 1
    srl     r6, r6                  # multiplier  >>= 1
    bnei    r6, __mul_loop
    rtsd    r15, 8
    nop
"""

#: unsigned divide core: r3 = r5 / r6, r4 = r5 % r6.
#: Classic 32-step restoring division.  Clobbers r11, r12.
_UDIV_CORE_ASM = """
    .text
    .global __udivmodsi4
__udivmodsi4:
    addik   r3, r0, 0               # quotient
    addik   r4, r0, 0               # remainder
    beqi    r6, __udiv_done         # divide by zero -> q=0, r=0
    addik   r11, r0, 32             # bit counter
__udiv_loop:
    add     r4, r4, r4              # remainder <<= 1 (carry discarded)
    add     r5, r5, r5              # dividend <<= 1, carry = old MSB
    addc    r4, r4, r0              # remainder |= carry
    add     r3, r3, r3              # quotient <<= 1
    cmpu    r12, r6, r4             # MSB(r12) = (r6 > r4) unsigned
    blti    r12, __udiv_next        # divisor greater -> no subtract
    rsubk   r4, r6, r4              # remainder -= divisor
    ori     r3, r3, 1               # quotient |= 1
__udiv_next:
    addik   r11, r11, -1
    bnei    r11, __udiv_loop
__udiv_done:
    rtsd    r15, 8
    nop

    .global __udivsi3
__udivsi3:
    brid    __udivmodsi4            # tail call; result already in r3
    nop

    .global __umodsi3
__umodsi3:
    addik   r1, r1, -8
    swi     r15, r1, 0
    brlid   r15, __udivmodsi4
    nop
    addk    r3, r4, r0              # return the remainder
    lwi     r15, r1, 0
    rtsd    r15, 8
    addik   r1, r1, 8               # delay slot
"""

#: signed divide/modulo wrappers over the unsigned core.
#: C semantics: quotient truncates toward zero; remainder takes the
#: sign of the dividend.
_SDIV_ASM = """
    .text
    .global __divsi3
__divsi3:
    addik   r1, r1, -12
    swi     r15, r1, 0
    xor     r11, r5, r6             # sign of the quotient
    swi     r11, r1, 4
    bgei    r5, __div_absn
    rsubk   r5, r5, r0              # r5 = -r5
__div_absn:
    bgei    r6, __div_absd
    rsubk   r6, r6, r0
__div_absd:
    brlid   r15, __udivmodsi4
    nop
    lwi     r11, r1, 4
    bgei    r11, __div_pos
    rsubk   r3, r3, r0              # negate quotient
__div_pos:
    lwi     r15, r1, 0
    rtsd    r15, 8
    addik   r1, r1, 12              # delay slot

    .global __modsi3
__modsi3:
    addik   r1, r1, -12
    swi     r15, r1, 0
    swi     r5, r1, 4               # sign of remainder = sign of dividend
    bgei    r5, __mod_absn
    rsubk   r5, r5, r0
__mod_absn:
    bgei    r6, __mod_absd
    rsubk   r6, r6, r0
__mod_absd:
    brlid   r15, __udivmodsi4
    nop
    addk    r3, r4, r0              # remainder
    lwi     r11, r1, 4
    bgei    r11, __mod_pos
    rsubk   r3, r3, r0
__mod_pos:
    lwi     r15, r1, 0
    rtsd    r15, 8
    addik   r1, r1, 12              # delay slot
"""


def runtime_library_source(include_soft_multiply: bool = False,
                           include_soft_shift: bool = False) -> str:
    """Assembly text of the support library.

    ``include_soft_multiply`` adds ``__mulsi3`` for processor
    configurations without the embedded-multiplier option;
    ``include_soft_shift`` adds the variable-shift helpers for
    configurations without the barrel shifter.
    """
    parts = [_PUTCHAR_ASM, _EXIT_ASM, _UDIV_CORE_ASM, _SDIV_ASM]
    if include_soft_multiply:
        parts.append(_MULSI3_ASM)
    if include_soft_shift:
        parts.append(_SOFT_SHIFT_ASM)
    return "\n".join(parts)
