"""Compiler driver: mini-C source → MB32 assembly → linked Program."""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm import assemble, link, Program
from repro.mcc.codegen import CodegenOptions, generate
from repro.mcc.parser import parse
from repro.mcc.sema import analyze


@dataclass
class CompileOptions:
    """End-to-end compilation options.

    ``hw_multiplier``/``hw_divider`` must match the CPU configuration
    the program will run on (:class:`repro.iss.cpu.CPUConfig`) — they
    select between hardware instructions and the soft runtime, the same
    way ``mb-gcc`` selects based on the MicroBlaze build options.

    ``memory_size=None`` (the default) sizes the BRAM automatically:
    program image + .bss + stack, rounded up to whole 2 KB BRAMs —
    matching how EDK sizes the LMB memory for a linked executable.
    """

    hw_multiplier: bool = True
    hw_divider: bool = False
    hw_barrel_shifter: bool = True
    register_locals: bool = True
    memory_size: int | None = None
    stack_size: int = 4096

    def codegen(self) -> CodegenOptions:
        return CodegenOptions(
            hw_multiplier=self.hw_multiplier,
            hw_divider=self.hw_divider,
            hw_barrel_shifter=self.hw_barrel_shifter,
            register_locals=self.register_locals,
        )


def compile_c(source: str, options: CompileOptions | None = None) -> str:
    """Compile mini-C ``source`` to MB32 assembly text."""
    options = options or CompileOptions()
    unit = parse(source)
    info = analyze(unit)
    return generate(info, options.codegen())


def build_executable(
    source: str,
    options: CompileOptions | None = None,
    extra_asm: list[str] | None = None,
) -> Program:
    """Compile, assemble and link ``source`` with the runtime.

    ``extra_asm`` allows linking additional hand-written assembly
    modules (e.g. cycle-tuned kernels).  Returns a loadable
    :class:`~repro.asm.linker.Program`.
    """
    from repro.mcc.runtime import crt0_source, runtime_library_source

    options = options or CompileOptions()
    asm_text = compile_c(source, options)

    def link_with(stack_top: int):
        modules = [
            assemble(crt0_source(stack_top), name="crt0"),
            assemble(asm_text, name="user"),
            assemble(
                runtime_library_source(
                    include_soft_multiply=not options.hw_multiplier,
                    include_soft_shift=not options.hw_barrel_shifter,
                ),
                name="runtime",
            ),
        ]
        for i, text in enumerate(extra_asm or []):
            modules.append(assemble(text, name=f"extra{i}"))
        return link(modules, entry_symbol="_start", stack_size=options.stack_size)

    if options.memory_size is None:
        # Auto-size: link once to learn the footprint, round image +
        # bss + stack up to whole BRAMs, then relink with the real
        # stack top.  The image size does not depend on the stack-top
        # constant (the imm prefix is always reserved for `li`).
        probe = link_with(0x10000)
        needed = probe.footprint + options.stack_size
        memory_size = -(-needed // 2048) * 2048
    else:
        memory_size = options.memory_size

    program = link_with(memory_size & ~7)
    program.memory_size = memory_size
    if program.footprint + options.stack_size > memory_size:
        raise ValueError(
            f"program footprint {program.footprint} + stack does not fit "
            f"in {memory_size} bytes of BRAM"
        )
    return program
