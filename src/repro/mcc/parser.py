"""Recursive-descent parser for mini-C."""

from __future__ import annotations

from repro.mcc.errors import ParseError
from repro.mcc.lexer import Token, tokenize
from repro.mcc.tree import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Cast,
    Cond,
    Continue,
    CType,
    DoWhile,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    If,
    Index,
    Num,
    Param,
    Return,
    SizeofType,
    Stmt,
    StrLit,
    TranslationUnit,
    Unary,
    Var,
    VarDecl,
    While,
)

_TYPE_KEYWORDS = {"int", "unsigned", "char", "void", "const", "static"}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

# Binary precedence levels, loosest first.
_BINARY_LEVELS = [
    ("||",),
    ("&&",),
    ("|",),
    ("^",),
    ("&",),
    ("==", "!="),
    ("<", "<=", ">", ">="),
    ("<<", ">>"),
    ("+", "-"),
    ("*", "/", "%"),
]


class Parser:
    def __init__(self, source: str):
        self.toks = tokenize(source)
        self.pos = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        idx = min(self.pos + ahead, len(self.toks) - 1)
        return self.toks[idx]

    def next(self) -> Token:
        tok = self.toks[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def at(self, kind: str, text: str | None = None) -> bool:
        tok = self.peek()
        return tok.kind == kind and (text is None or tok.text == text)

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        if self.at(kind, text):
            return self.next()
        return None

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.peek()
        if not self.at(kind, text):
            expected = text or kind
            raise ParseError(
                f"expected {expected!r}, got {tok.text or tok.kind!r}",
                tok.line,
                tok.col,
            )
        return self.next()

    def _at_type(self) -> bool:
        tok = self.peek()
        return tok.kind == "kw" and tok.text in _TYPE_KEYWORDS

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def parse(self) -> TranslationUnit:
        unit = TranslationUnit()
        while not self.at("eof"):
            unit.decls.extend(self._external_decl())
        return unit

    def _external_decl(self) -> list:
        line = self.peek().line
        is_static, is_const, base = self._type_spec()
        ptr = self._pointer_suffix()
        name_tok = self.expect("ident")
        if self.at("op", "("):
            func = self._function_rest(base, ptr, name_tok.text, line)
            return [func] if func else []
        decls = self._var_declarators(base, ptr, name_tok.text, line,
                                      is_global=True, is_static=is_static,
                                      is_const=is_const)
        self.expect("op", ";")
        return decls

    def _type_spec(self) -> tuple[bool, bool, str]:
        is_static = bool(self.accept("kw", "static"))
        is_const = bool(self.accept("kw", "const"))
        if not is_static:
            is_static = bool(self.accept("kw", "static"))
        tok = self.peek()
        if tok.kind != "kw" or tok.text not in ("int", "unsigned", "char", "void"):
            raise ParseError(f"expected a type, got {tok.text!r}", tok.line, tok.col)
        self.next()
        base = tok.text
        if base == "unsigned":
            self.accept("kw", "int")  # 'unsigned int' == 'unsigned'
        if self.accept("kw", "const"):
            is_const = True
        return is_static, is_const, base

    def _pointer_suffix(self) -> int:
        ptr = 0
        while self.accept("op", "*"):
            ptr += 1
        return ptr

    def _array_dims(self) -> tuple[int, ...]:
        dims: list[int] = []
        while self.accept("op", "["):
            tok = self.expect("num")
            if tok.value <= 0:
                raise ParseError("array dimension must be positive", tok.line, tok.col)
            dims.append(tok.value)
            self.expect("op", "]")
        return tuple(dims)

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    def _function_rest(self, base: str, ptr: int, name: str, line: int):
        self.expect("op", "(")
        params: list[Param] = []
        if self.accept("kw", "void") and self.at("op", ")"):
            pass
        elif not self.at("op", ")"):
            while True:
                pline = self.peek().line
                _, _, pbase = self._type_spec()
                pptr = self._pointer_suffix()
                pname = self.expect("ident").text
                if self.accept("op", "["):
                    # array parameter decays to pointer
                    self.accept("num")
                    self.expect("op", "]")
                    pptr += 1
                params.append(Param(pname, CType(pbase, pptr), pline))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        ret = CType(base, ptr)
        if self.accept("op", ";"):
            return FuncDef(name, ret, params, body=None, line=line)
        body = self._block()
        return FuncDef(name, ret, params, body=body, line=line)

    # ------------------------------------------------------------------
    # Variable declarations
    # ------------------------------------------------------------------
    def _var_declarators(
        self, base, ptr, first_name, line, *, is_global, is_static, is_const
    ) -> list[VarDecl]:
        decls: list[VarDecl] = []
        name = first_name
        while True:
            dims = self._array_dims()
            ctype = CType(base, ptr, dims)
            init = None
            if self.accept("op", "="):
                init = self._initializer()
            decls.append(
                VarDecl(
                    line=line,
                    name=name,
                    ctype=ctype,
                    init=init,
                    is_global=is_global,
                    is_static=is_static,
                    is_const=is_const,
                )
            )
            if not self.accept("op", ","):
                break
            ptr = self._pointer_suffix()
            name = self.expect("ident").text
        return decls

    def _initializer(self):
        if self.accept("op", "{"):
            items = []
            if not self.at("op", "}"):
                while True:
                    items.append(self._initializer())
                    if not self.accept("op", ","):
                        break
                    if self.at("op", "}"):  # trailing comma
                        break
            self.expect("op", "}")
            return items
        return self._assignment()

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def _block(self) -> Block:
        open_tok = self.expect("op", "{")
        block = Block(line=open_tok.line)
        while not self.at("op", "}"):
            if self.at("eof"):
                raise ParseError("unexpected end of file in block",
                                 open_tok.line, open_tok.col)
            block.stmts.extend(self._block_item())
        self.expect("op", "}")
        return block

    def _block_item(self) -> list:
        if self._at_type():
            line = self.peek().line
            is_static, is_const, base = self._type_spec()
            ptr = self._pointer_suffix()
            name = self.expect("ident").text
            decls = self._var_declarators(base, ptr, name, line,
                                          is_global=False, is_static=is_static,
                                          is_const=is_const)
            self.expect("op", ";")
            return decls
        return [self._statement()]

    def _statement(self) -> Stmt:
        tok = self.peek()
        if self.at("op", "{"):
            return self._block()
        if self.at("kw", "if"):
            self.next()
            self.expect("op", "(")
            cond = self._expression()
            self.expect("op", ")")
            then = self._statement()
            els = self._statement() if self.accept("kw", "else") else None
            return If(line=tok.line, cond=cond, then=then, els=els)
        if self.at("kw", "while"):
            self.next()
            self.expect("op", "(")
            cond = self._expression()
            self.expect("op", ")")
            return While(line=tok.line, cond=cond, body=self._statement())
        if self.at("kw", "do"):
            self.next()
            body = self._statement()
            self.expect("kw", "while")
            self.expect("op", "(")
            cond = self._expression()
            self.expect("op", ")")
            self.expect("op", ";")
            return DoWhile(line=tok.line, body=body, cond=cond)
        if self.at("kw", "for"):
            self.next()
            self.expect("op", "(")
            init = None
            if not self.at("op", ";"):
                if self._at_type():
                    items = self._block_item_for_init()
                    init = items
                else:
                    init = ExprStmt(line=tok.line, expr=self._expression())
                    self.expect("op", ";")
            else:
                self.next()
            cond = None if self.at("op", ";") else self._expression()
            self.expect("op", ";")
            step = None if self.at("op", ")") else self._expression()
            self.expect("op", ")")
            return For(line=tok.line, init=init, cond=cond, step=step,
                       body=self._statement())
        if self.at("kw", "return"):
            self.next()
            expr = None if self.at("op", ";") else self._expression()
            self.expect("op", ";")
            return Return(line=tok.line, expr=expr)
        if self.at("kw", "break"):
            self.next()
            self.expect("op", ";")
            return Break(line=tok.line)
        if self.at("kw", "continue"):
            self.next()
            self.expect("op", ";")
            return Continue(line=tok.line)
        if self.accept("op", ";"):
            return Block(line=tok.line)  # empty statement
        expr = self._expression()
        self.expect("op", ";")
        return ExprStmt(line=tok.line, expr=expr)

    def _block_item_for_init(self):
        """Declarations in a for-init clause."""
        line = self.peek().line
        is_static, is_const, base = self._type_spec()
        ptr = self._pointer_suffix()
        name = self.expect("ident").text
        decls = self._var_declarators(base, ptr, name, line,
                                      is_global=False, is_static=is_static,
                                      is_const=is_const)
        self.expect("op", ";")
        return decls

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def _expression(self) -> Expr:
        # comma operator not supported; assignment is the top level
        return self._assignment()

    def _assignment(self) -> Expr:
        left = self._ternary()
        tok = self.peek()
        if tok.kind == "op" and tok.text in _ASSIGN_OPS:
            self.next()
            value = self._assignment()
            return Assign(line=tok.line, op=tok.text, target=left, value=value)
        return left

    def _ternary(self) -> Expr:
        cond = self._binary(0)
        if self.at("op", "?"):
            tok = self.next()
            then = self._assignment()
            self.expect("op", ":")
            els = self._ternary()
            return Cond(line=tok.line, cond=cond, then=then, els=els)
        return cond

    def _binary(self, level: int) -> Expr:
        if level >= len(_BINARY_LEVELS):
            return self._unary()
        ops = _BINARY_LEVELS[level]
        left = self._binary(level + 1)
        while self.peek().kind == "op" and self.peek().text in ops:
            tok = self.next()
            right = self._binary(level + 1)
            left = Binary(line=tok.line, op=tok.text, left=left, right=right)
        return left

    def _unary(self) -> Expr:
        tok = self.peek()
        if tok.kind == "op" and tok.text in ("-", "~", "!", "*", "&"):
            self.next()
            return Unary(line=tok.line, op=tok.text, operand=self._unary())
        if tok.kind == "op" and tok.text in ("++", "--"):
            self.next()
            return Unary(line=tok.line, op=tok.text + "pre", operand=self._unary())
        if tok.kind == "kw" and tok.text == "sizeof":
            self.next()
            if self.at("op", "(") and self.peek(1).kind == "kw" and \
                    self.peek(1).text in ("int", "unsigned", "char", "void"):
                self.expect("op", "(")
                _, _, base = self._type_spec()
                ptr = self._pointer_suffix()
                self.expect("op", ")")
                return SizeofType(line=tok.line, of=CType(base, ptr))
            operand = self._unary()
            return Unary(line=tok.line, op="sizeof", operand=operand)
        # cast: '(' type ')' unary
        if tok.kind == "op" and tok.text == "(" and self.peek(1).kind == "kw" and \
                self.peek(1).text in ("int", "unsigned", "char", "void"):
            self.next()
            _, _, base = self._type_spec()
            ptr = self._pointer_suffix()
            self.expect("op", ")")
            return Cast(line=tok.line, to=CType(base, ptr), operand=self._unary())
        return self._postfix()

    def _postfix(self) -> Expr:
        expr = self._primary()
        while True:
            tok = self.peek()
            if self.at("op", "["):
                self.next()
                index = self._expression()
                self.expect("op", "]")
                expr = Index(line=tok.line, base=expr, index=index)
            elif self.at("op", "(") and isinstance(expr, Var):
                self.next()
                args: list[Expr] = []
                if not self.at("op", ")"):
                    while True:
                        args.append(self._assignment())
                        if not self.accept("op", ","):
                            break
                self.expect("op", ")")
                expr = Call(line=tok.line, name=expr.name, args=args)
            elif self.at("op", "++") or self.at("op", "--"):
                self.next()
                expr = Unary(line=tok.line, op=tok.text + "post", operand=expr)
            else:
                return expr

    def _primary(self) -> Expr:
        tok = self.next()
        if tok.kind == "num" or tok.kind == "char":
            return Num(line=tok.line, value=tok.value)
        if tok.kind == "string":
            return StrLit(line=tok.line, value=tok.text)
        if tok.kind == "ident":
            return Var(line=tok.line, name=tok.text)
        if tok.kind == "op" and tok.text == "(":
            expr = self._expression()
            self.expect("op", ")")
            return expr
        raise ParseError(f"unexpected token {tok.text or tok.kind!r}",
                         tok.line, tok.col)


def parse(source: str) -> TranslationUnit:
    """Parse mini-C ``source`` into a :class:`TranslationUnit`."""
    return Parser(source).parse()
