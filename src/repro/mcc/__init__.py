"""mcc — the mini-C compiler for MB32 (the ``mb-gcc`` analogue).

The paper's software portions are C programs compiled with ``mb-gcc``
and run on the MicroBlaze cycle-accurate simulator.  ``mcc`` compiles a
practical C subset to MB32 assembly:

* types: ``int``, ``unsigned``, ``char``, pointers, 1-D/2-D arrays
* functions with the MicroBlaze ABI (args in ``r5``–``r10``, result in
  ``r3``, link register ``r15``, stack pointer ``r1``)
* full expression/statement set: arithmetic, logical, bitwise,
  comparisons, assignment (including compound), ``if``/``while``/
  ``for``/``do``, ``break``/``continue``/``return``
* the Xilinx FSL intrinsics: ``putfsl``, ``nputfsl``, ``cputfsl``,
  ``ncputfsl``, ``getfsl``, ``ngetfsl``, ``cgetfsl``, ``ncgetfsl``
  plus ``fsl_isinvalid()`` (carry flag after a non-blocking access)
* ``__builtin_exit`` / ``__builtin_putchar`` mapped to the debug MMIO

``/`` and ``%`` lower to the software-divide runtime unless the target
CPU is configured with a hardware divider; ``*`` lowers to ``mul``
(3-cycle embedded multiplier) or the software multiply when the
multiplier is disabled — exactly the configuration trade-offs the
paper's design space contains.

High-level entry points:

>>> from repro.mcc import compile_c, build_executable
>>> asm_text = compile_c("int main(void) { return 42; }")
>>> program = build_executable("int main(void) { return 2 + 2; }")
"""

from repro.mcc.compiler import CompileOptions, compile_c, build_executable
from repro.mcc.errors import MccError, LexError, ParseError, SemaError
from repro.mcc.runtime import crt0_source, runtime_library_source

__all__ = [
    "compile_c",
    "build_executable",
    "CompileOptions",
    "MccError",
    "LexError",
    "ParseError",
    "SemaError",
    "crt0_source",
    "runtime_library_source",
]
