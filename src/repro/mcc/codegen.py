"""MB32 code generation for mini-C.

Code model
----------
* ``r3`` is the expression accumulator; binary operators evaluate the
  left operand, push it on the stack, evaluate the right operand and
  pop the left into ``r11``.
* Scalar locals/parameters whose address is never taken are allocated
  to callee-saved registers ``r19``–``r28`` (saved in the prologue);
  the rest live in the stack frame addressed through the frame pointer
  ``r31``.
* Frame layout (offsets from ``r31`` == post-prologue ``r1``)::

      fp+0              saved r15 (link)
      fp+4              saved r31 (caller frame pointer)
      fp+8 .. +8+4k     saved callee registers (k used)
      fp+8+4k ..        stack-resident locals / arrays

* Calls follow the MicroBlaze ABI: arguments in ``r5``–``r10``, result
  in ``r3``, ``brlid r15`` with a ``nop`` delay slot.
* ``/`` and ``%`` call the soft-divide runtime unless the target has a
  hardware divider; ``*`` uses the 3-cycle ``mul`` unless the embedded
  multiplier is disabled, in which case ``__mulsi3`` is called.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mcc.errors import CodegenError, SemaError
from repro.mcc.sema import BUILTINS, FunctionInfo, Sym, UnitInfo
from repro.mcc.tree import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Cast,
    Cond,
    Continue,
    CType,
    DoWhile,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    If,
    Index,
    Num,
    Return,
    StrLit,
    Unary,
    Var,
    VarDecl,
    While,
)

_REG_POOL = tuple(range(19, 31))  # r19..r30 for register locals (r31 = fp)
_FP = "r31"
_ACC = "r3"
_LHS = "r11"
_ADR = "r12"


@dataclass
class CodegenOptions:
    """Target configuration knobs, mirroring :class:`repro.iss.cpu.CPUConfig`."""

    hw_multiplier: bool = True
    hw_divider: bool = False
    hw_barrel_shifter: bool = True
    #: allocate scalar locals to callee-saved registers (off = pure
    #: stack machine, useful for ablations)
    register_locals: bool = True


@dataclass
class _Home:
    """Where a local lives: a register or a frame offset."""

    reg: int | None = None
    offset: int | None = None


@dataclass
class _LoopLabels:
    brk: str
    cont: str


class FunctionEmitter:
    def __init__(self, unit: UnitInfo, info: FunctionInfo, opts: CodegenOptions,
                 out: list[str], string_labels: dict[int, str]):
        self.unit = unit
        self.info = info
        self.opts = opts
        self.out = out
        self.string_labels = string_labels
        self.func = info.func
        self.homes: dict[int, _Home] = {}  # id(Sym) -> home
        self.used_callee: list[int] = []
        self.frame_size = 0
        self.label_counter = 0
        self.loops: list[_LoopLabels] = []
        self.epilogue_label = f".L{self.func.name}__epilogue"

    # ------------------------------------------------------------------
    def emit(self, line: str) -> None:
        self.out.append(line)

    def op(self, text: str) -> None:
        self.out.append("    " + text)

    def label(self) -> str:
        self.label_counter += 1
        return f".L{self.func.name}__{self.label_counter}"

    def place_label(self, name: str) -> None:
        self.out.append(f"{name}:")

    # ------------------------------------------------------------------
    # Frame construction
    # ------------------------------------------------------------------
    def assign_homes(self) -> None:
        pool = list(_REG_POOL) if self.opts.register_locals else []
        stack_offset = 0  # relative to the locals area; fixed up later
        stack_syms: list[tuple[Sym, int]] = []
        for sym in self.info.locals:
            scalar = sym.ctype.is_scalar and not sym.ctype.is_array
            if scalar and not sym.addr_taken and pool:
                reg = pool.pop(0)
                self.homes[id(sym)] = _Home(reg=reg)
                self.used_callee.append(reg)
            else:
                size = (sym.ctype.sizeof() + 3) & ~3
                stack_syms.append((sym, stack_offset))
                stack_offset += size
        saved = 8 + 4 * len(self.used_callee)
        for sym, off in stack_syms:
            self.homes[id(sym)] = _Home(offset=saved + off)
        self.frame_size = (saved + stack_offset + 7) & ~7

    def home(self, sym: Sym) -> _Home:
        try:
            return self.homes[id(sym)]
        except KeyError:  # pragma: no cover - sema guarantees
            raise CodegenError(f"no home for symbol {sym.name}", 0)

    # ------------------------------------------------------------------
    def emit_function(self) -> None:
        self.assign_homes()
        f = self.func
        self.emit("")
        self.emit(f"    .global {f.name}")
        self.place_label(f.name)
        # Prologue.
        self.op(f"addik r1, r1, -{self.frame_size}")
        self.op("swi   r15, r1, 0")
        self.op(f"swi   {_FP}, r1, 4")
        for i, reg in enumerate(self.used_callee):
            self.op(f"swi   r{reg}, r1, {8 + 4 * i}")
        self.op(f"addk  {_FP}, r1, r0")
        # Park incoming arguments in their homes.
        param_syms = self.info.locals[: len(f.params)]
        for i, sym in enumerate(param_syms):
            src = f"r{5 + i}"
            home = self.home(sym)
            if home.reg is not None:
                self.op(f"addk  r{home.reg}, {src}, r0")
            else:
                self.op(f"swi   {src}, {_FP}, {home.offset}")
        # Body.
        assert f.body is not None
        self.gen_block(f.body)
        # Epilogue.
        self.place_label(self.epilogue_label)
        self.op(f"addk  r1, {_FP}, r0")
        self.op("lwi   r15, r1, 0")
        for i, reg in enumerate(self.used_callee):
            self.op(f"lwi   r{reg}, r1, {8 + 4 * i}")
        self.op(f"lwi   {_FP}, r1, 4")
        self.op("rtsd  r15, 8")
        self.op(f"addik r1, r1, {self.frame_size}")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def gen_block(self, block: Block) -> None:
        for stmt in block.stmts:
            self.gen_stmt(stmt)

    def gen_stmt(self, stmt) -> None:
        if isinstance(stmt, VarDecl):
            self.gen_local_decl(stmt)
        elif isinstance(stmt, Block):
            self.gen_block(stmt)
        elif isinstance(stmt, ExprStmt):
            self.gen_discard(stmt.expr)
        elif isinstance(stmt, If):
            els = self.label()
            end = self.label() if stmt.els is not None else els
            self.gen_expr(stmt.cond)
            self.op(f"beqi  {_ACC}, {els}")
            self.gen_stmt(stmt.then)
            if stmt.els is not None:
                self.op(f"bri   {end}")
                self.place_label(els)
                self.gen_stmt(stmt.els)
            self.place_label(end)
        elif isinstance(stmt, While):
            top = self.label()
            end = self.label()
            self.loops.append(_LoopLabels(brk=end, cont=top))
            self.place_label(top)
            self.gen_expr(stmt.cond)
            self.op(f"beqi  {_ACC}, {end}")
            self.gen_stmt(stmt.body)
            self.op(f"bri   {top}")
            self.place_label(end)
            self.loops.pop()
        elif isinstance(stmt, DoWhile):
            top = self.label()
            cont = self.label()
            end = self.label()
            self.loops.append(_LoopLabels(brk=end, cont=cont))
            self.place_label(top)
            self.gen_stmt(stmt.body)
            self.place_label(cont)
            self.gen_expr(stmt.cond)
            self.op(f"bnei  {_ACC}, {top}")
            self.place_label(end)
            self.loops.pop()
        elif isinstance(stmt, For):
            top = self.label()
            cont = self.label()
            end = self.label()
            if stmt.init is not None:
                if isinstance(stmt.init, list):
                    for d in stmt.init:
                        self.gen_stmt(d)
                else:
                    self.gen_stmt(stmt.init)
            self.loops.append(_LoopLabels(brk=end, cont=cont))
            self.place_label(top)
            if stmt.cond is not None:
                self.gen_expr(stmt.cond)
                self.op(f"beqi  {_ACC}, {end}")
            self.gen_stmt(stmt.body)
            self.place_label(cont)
            if stmt.step is not None:
                self.gen_discard(stmt.step)
            self.op(f"bri   {top}")
            self.place_label(end)
            self.loops.pop()
        elif isinstance(stmt, Return):
            if stmt.expr is not None:
                self.gen_expr(stmt.expr)
            self.op(f"bri   {self.epilogue_label}")
        elif isinstance(stmt, Break):
            if not self.loops:  # pragma: no cover - sema guarantees
                raise CodegenError("break outside loop", stmt.line)
            self.op(f"bri   {self.loops[-1].brk}")
        elif isinstance(stmt, Continue):
            if not self.loops:  # pragma: no cover
                raise CodegenError("continue outside loop", stmt.line)
            self.op(f"bri   {self.loops[-1].cont}")
        else:  # pragma: no cover
            raise CodegenError(f"unknown statement {type(stmt).__name__}",
                               getattr(stmt, "line", 0))

    def gen_local_decl(self, decl: VarDecl) -> None:
        sym = self._find_local_sym(decl)
        home = self.home(sym)
        if decl.init is None:
            return
        if isinstance(decl.init, list):
            # Array initializer: elementwise stores into the frame slot.
            assert home.offset is not None
            elem = decl.ctype.decay().elem_size()
            store = "sbi" if elem == 1 else "swi"
            for i, item in enumerate(decl.init):
                self.gen_expr(item)
                self.op(f"{store}   {_ACC}, {_FP}, {home.offset + i * elem}")
            return
        self.gen_expr(decl.init)
        self.store_to_home(sym, home)

    def _find_local_sym(self, decl: VarDecl) -> Sym:
        for sym in self.info.locals:
            if sym.decl is decl:
                return sym
        raise CodegenError(f"local {decl.name!r} not registered", decl.line)

    def store_to_home(self, sym: Sym, home: _Home) -> None:
        """Store r3 into a scalar local's home."""
        if home.reg is not None:
            if sym.ctype.base == "char" and sym.ctype.is_arith:
                self.op(f"andi  {_ACC}, {_ACC}, 0xff")
            self.op(f"addk  r{home.reg}, {_ACC}, r0")
        else:
            op = "sbi" if sym.ctype.sizeof() == 1 and sym.ctype.is_arith else "swi"
            self.op(f"{op}   {_ACC}, {_FP}, {home.offset}")

    # ------------------------------------------------------------------
    # Expression helpers
    # ------------------------------------------------------------------
    def push(self) -> None:
        self.op("addik r1, r1, -4")
        self.op(f"swi   {_ACC}, r1, 0")

    def pop(self, reg: str = _LHS) -> None:
        self.op(f"lwi   {reg}, r1, 0")
        self.op("addik r1, r1, 4")

    def load_imm(self, reg: str, value: int) -> None:
        value &= 0xFFFFFFFF
        if value & 0x80000000:
            value -= 1 << 32
        self.op(f"addik {reg}, r0, {value}" if -0x8000 <= value <= 0x7FFF
                else f"li    {reg}, {value & 0xFFFFFFFF}")

    # ------------------------------------------------------------------
    # Shift lowering: the barrel shifter is an optional MicroBlaze unit.
    # Without it, constant shifts expand to 1-bit shift sequences and
    # variable shifts call the soft-shift runtime.
    # ------------------------------------------------------------------
    _SHIFT_MNEM = {"sll": "bslli", "sra": "bsrai", "srl": "bsrli"}
    _SHIFT_HELPER = {"sll": "__ashlsi3", "sra": "__ashrsi3",
                     "srl": "__lshrsi3"}

    def emit_shift_imm(self, dst: str, src: str, n: int, kind: str) -> None:
        """dst = src shifted by constant n (kind: sll/sra/srl)."""
        n &= 31
        if self.opts.hw_barrel_shifter:
            self.op(f"{self._SHIFT_MNEM[kind]} {dst}, {src}, {n}")
            return
        if n == 0:
            if dst != src:
                self.op(f"addk  {dst}, {src}, r0")
            return
        if kind == "sll":
            self.op(f"addk  {dst}, {src}, {src}")
            for _ in range(n - 1):
                self.op(f"addk  {dst}, {dst}, {dst}")
        else:
            op1 = "sra" if kind == "sra" else "srl"
            self.op(f"{op1}   {dst}, {src}")
            for _ in range(n - 1):
                self.op(f"{op1}   {dst}, {dst}")

    def emit_shift_reg_call(self, value_reg: str, amount_reg: str,
                            kind: str) -> None:
        """r3 = value_reg shifted by amount_reg via the soft helper."""
        self.op(f"addk  r5, {value_reg}, r0")
        if amount_reg != "r6":
            self.op(f"addk  r6, {amount_reg}, r0")
        self.op(f"brlid r15, {self._SHIFT_HELPER[kind]}")
        self.op("nop")

    def emit_msb_to_acc(self) -> None:
        """r3 = bit 31 of r3 (the comparison-result idiom)."""
        if self.opts.hw_barrel_shifter:
            self.op(f"bsrli {_ACC}, {_ACC}, 31")
        else:
            self.op(f"add   {_ACC}, {_ACC}, {_ACC}")  # carry = MSB
            self.op(f"addc  {_ACC}, r0, r0")

    # ------------------------------------------------------------------
    # Leaf-operand analysis (the -O1-style niceties mb-gcc performs:
    # operate directly on register-homed variables and immediates
    # instead of spilling through the expression stack).
    # ------------------------------------------------------------------
    def leaf_reg(self, expr: Expr) -> str | None:
        """Register already holding ``expr``'s value, or None."""
        if isinstance(expr, Num) and expr.value == 0:
            return "r0"
        if isinstance(expr, Var):
            sym = self.unit.sym_for(expr)
            if sym.kind in ("local", "param") and not sym.ctype.is_array:
                home = self.homes.get(id(sym))
                if home is not None and home.reg is not None:
                    return f"r{home.reg}"
        return None

    def leaf_imm(self, expr: Expr) -> int | None:
        """16-bit immediate value of ``expr``, or None."""
        if isinstance(expr, Num) and -0x8000 <= expr.value <= 0x7FFF:
            return expr.value
        return None

    def addr_operand(self, expr: Expr) -> tuple[str, str] | None:
        """``(base_reg, offset_expr)`` addressing ``expr``'s storage
        with zero setup code, or None.  Covers stack/global scalars,
        ``*p`` through a register pointer and constant-indexed arrays."""
        if isinstance(expr, Var):
            sym = self.unit.sym_for(expr)
            if sym.ctype.is_array:
                return None
            if sym.kind in ("local", "param"):
                home = self.home(sym)
                if home.reg is not None:
                    return None
                return (_FP, str(home.offset))
            return ("r0", sym.label)
        if isinstance(expr, Unary) and expr.op == "*":
            reg = self.leaf_reg(expr.operand)
            return (reg, "0") if reg is not None else None
        if isinstance(expr, Index) and isinstance(expr.index, Num):
            base = expr.base
            base_t = base.ctype
            assert base_t is not None
            elem = base_t.deref().sizeof() if base_t.is_array else \
                base_t.decay().elem_size()
            off = expr.index.value * elem
            if off < 0:
                return None
            if isinstance(base, Var):
                sym = self.unit.sym_for(base)
                if base_t.is_array:
                    if sym.kind in ("local", "param"):
                        home = self.home(sym)
                        if home.offset is None:
                            return None
                        return (_FP, str(home.offset + off))
                    return ("r0", f"{sym.label}+{off}" if off else sym.label)
                reg = self.leaf_reg(base)
                if reg is not None and off <= 0x7FFF:
                    return (reg, str(off))
        return None

    @staticmethod
    def _is_byte(ctype: CType | None) -> bool:
        return ctype is not None and ctype.sizeof() == 1 and ctype.is_arith

    def load_via(self, base: str, off: str, ctype: CType | None,
                 dst: str = _ACC) -> None:
        op = "lbui" if self._is_byte(ctype) else "lwi"
        self.op(f"{op}  {dst}, {base}, {off}")

    def store_via(self, base: str, off: str, ctype: CType | None,
                  src: str = _ACC) -> None:
        op = "sbi" if self._is_byte(ctype) else "swi"
        self.op(f"{op}   {src}, {base}, {off}")

    # ------------------------------------------------------------------
    # Expressions (result in r3)
    # ------------------------------------------------------------------
    def gen_discard(self, expr: Expr) -> None:
        """Evaluate ``expr`` for its side effects only — assignments
        and increments skip materializing their value in r3."""
        if isinstance(expr, Assign):
            self.gen_assign(expr, need_value=False)
            return
        if isinstance(expr, Unary) and expr.op in (
            "++pre", "--pre", "++post", "--post"
        ):
            self.gen_incdec(expr, need_value=False)
            return
        self.gen_expr(expr)

    def gen_expr(self, expr: Expr) -> None:
        if isinstance(expr, Num):
            self.load_imm(_ACC, expr.value)
        elif isinstance(expr, StrLit):
            self.op(f"li    {_ACC}, {self.string_labels[id(expr)]}")
        elif isinstance(expr, Var):
            self.gen_var_load(expr)
        elif isinstance(expr, Cast):
            self.gen_cast(expr)
        elif isinstance(expr, Unary):
            self.gen_unary(expr)
        elif isinstance(expr, Binary):
            self.gen_binary(expr)
        elif isinstance(expr, Assign):
            self.gen_assign(expr)
        elif isinstance(expr, Cond):
            els = self.label()
            end = self.label()
            self.gen_expr(expr.cond)
            self.op(f"beqi  {_ACC}, {els}")
            self.gen_expr(expr.then)
            self.op(f"bri   {end}")
            self.place_label(els)
            self.gen_expr(expr.els)
            self.place_label(end)
        elif isinstance(expr, Index):
            ao = self.addr_operand(expr)
            if ao is not None and not expr.ctype.is_array:  # type: ignore[union-attr]
                self.load_via(ao[0], ao[1], expr.ctype)
            else:
                self.gen_addr(expr)
                self.load_from_addr(expr.ctype)
        elif isinstance(expr, Call):
            self.gen_call(expr)
        else:  # pragma: no cover
            raise CodegenError(f"unknown expression {type(expr).__name__}",
                               expr.line)

    def gen_var_load(self, expr: Var) -> None:
        sym = self.unit.sym_for(expr)
        if sym.kind in ("local", "param"):
            home = self.home(sym)
            if home.reg is not None:
                self.op(f"addk  {_ACC}, r{home.reg}, r0")
                return
            if sym.ctype.is_array:
                self.op(f"addik {_ACC}, {_FP}, {home.offset}")
                return
            op = "lbui" if sym.ctype.sizeof() == 1 and sym.ctype.is_arith else "lwi"
            self.op(f"{op}  {_ACC}, {_FP}, {home.offset}")
            return
        # global
        if sym.ctype.is_array:
            self.op(f"li    {_ACC}, {sym.label}")
            return
        op = "lbui" if sym.ctype.sizeof() == 1 and sym.ctype.is_arith else "lwi"
        self.op(f"{op}  {_ACC}, r0, {sym.label}")

    def load_from_addr(self, ctype: CType | None) -> None:
        """Load the value at address r3 (unless it is an array, which
        decays to the address itself)."""
        assert ctype is not None
        if ctype.is_array:
            return
        op = "lbui" if ctype.sizeof() == 1 and ctype.is_arith else "lwi"
        self.op(f"{op}  {_ACC}, {_ACC}, 0")

    # ------------------------------------------------------------------
    def gen_addr(self, expr: Expr) -> None:
        """Leave the address of an lvalue in r3."""
        if isinstance(expr, Var):
            sym = self.unit.sym_for(expr)
            if sym.kind in ("local", "param"):
                home = self.home(sym)
                if home.reg is not None:
                    raise CodegenError(
                        f"address of register variable {sym.name!r}", expr.line
                    )
                self.op(f"addik {_ACC}, {_FP}, {home.offset}")
            else:
                self.op(f"li    {_ACC}, {sym.label}")
            return
        if isinstance(expr, Unary) and expr.op == "*":
            self.gen_expr(expr.operand)
            return
        if isinstance(expr, Index):
            base_t = expr.base.ctype
            assert base_t is not None
            elem = base_t.deref().sizeof() if base_t.is_array else \
                base_t.decay().elem_size()

            def gen_base() -> None:
                if base_t.is_array:
                    self.gen_addr(expr.base)
                else:  # pointer value
                    self.gen_expr(expr.base)

            # Constant index: fold into an addik displacement.
            if isinstance(expr.index, Num):
                off = expr.index.value * elem
                gen_base()
                if off:
                    if -0x8000 <= off <= 0x7FFF:
                        self.op(f"addik {_ACC}, {_ACC}, {off}")
                    else:
                        self.load_imm(_LHS, off)
                        self.op(f"addk  {_ACC}, {_ACC}, {_LHS}")
                return
            # Register-homed index: scale into r11, no stack traffic.
            idx_reg = self.leaf_reg(expr.index)
            if idx_reg is not None:
                gen_base()
                if elem == 1:
                    self.op(f"addk  {_ACC}, {_ACC}, {idx_reg}")
                elif elem & (elem - 1) == 0:
                    self.emit_shift_imm(_LHS, idx_reg,
                                        elem.bit_length() - 1, "sll")
                    self.op(f"addk  {_ACC}, {_ACC}, {_LHS}")
                elif self.opts.hw_multiplier:
                    self.op(f"muli  {_LHS}, {idx_reg}, {elem}")
                    self.op(f"addk  {_ACC}, {_ACC}, {_LHS}")
                else:
                    idx_reg = None  # fall through to the general path
                if idx_reg is not None:
                    return
            gen_base()
            self.push()
            self.gen_expr(expr.index)
            self.scale_acc(elem)
            self.pop(_LHS)
            self.op(f"addk  {_ACC}, {_LHS}, {_ACC}")
            return
        raise CodegenError(f"not an addressable lvalue: {type(expr).__name__}",
                           expr.line)

    def scale_acc(self, factor: int) -> None:
        """Multiply r3 by a constant element size."""
        if factor == 1:
            return
        if factor & (factor - 1) == 0:
            self.emit_shift_imm(_ACC, _ACC, factor.bit_length() - 1, "sll")
        elif self.opts.hw_multiplier:
            self.op(f"muli  {_ACC}, {_ACC}, {factor}")
        else:
            self.op(f"addk  r5, {_ACC}, r0")
            self.load_imm("r6", factor)
            self.op("brlid r15, __mulsi3")
            self.op("nop")

    # ------------------------------------------------------------------
    def gen_cast(self, expr: Cast) -> None:
        self.gen_expr(expr.operand)
        to = expr.to
        if to.base == "char" and to.ptr == 0:
            self.op(f"andi  {_ACC}, {_ACC}, 0xff")
        # int/unsigned/pointer casts are bit-identical

    def gen_unary(self, expr: Unary) -> None:
        op = expr.op
        if op == "&":
            self.gen_addr(expr.operand)
            return
        if op == "*":
            reg = self.leaf_reg(expr.operand)
            if reg is not None and not (expr.ctype and expr.ctype.is_array):
                self.load_via(reg, "0", expr.ctype)
                return
            self.gen_expr(expr.operand)
            self.load_from_addr(expr.ctype)
            return
        if op in ("++pre", "--pre", "++post", "--post"):
            self.gen_incdec(expr)
            return
        if op == "sizeof":
            assert expr.operand.ctype is not None
            self.load_imm(_ACC, expr.operand.ctype.sizeof())
            return
        self.gen_expr(expr.operand)
        if op == "-":
            self.op(f"rsubk {_ACC}, {_ACC}, r0")
        elif op == "~":
            self.op(f"xori  {_ACC}, {_ACC}, -1")
        elif op == "!":
            self.op(f"cmpu  {_ACC}, {_ACC}, r0")  # MSB = (r3 > 0)u = r3 != 0
            self.emit_msb_to_acc()
            self.op(f"xori  {_ACC}, {_ACC}, 1")
        else:  # pragma: no cover
            raise CodegenError(f"unknown unary {op!r}", expr.line)

    def gen_incdec(self, expr: Unary, need_value: bool = True) -> None:
        target = expr.operand
        assert target.ctype is not None
        step = target.ctype.decay().elem_size() if \
            target.ctype.decay().is_pointer else 1
        delta = step if expr.op.startswith("++") else -step
        post = expr.op.endswith("post")
        if isinstance(target, Var):
            sym = self.unit.sym_for(target)
            if sym.kind in ("local", "param"):
                home = self.home(sym)
                if home.reg is not None:
                    if not need_value:
                        self.op(f"addik r{home.reg}, r{home.reg}, {delta}")
                    elif post:
                        self.op(f"addk  {_ACC}, r{home.reg}, r0")
                        self.op(f"addik r{home.reg}, r{home.reg}, {delta}")
                    else:
                        self.op(f"addik r{home.reg}, r{home.reg}, {delta}")
                        self.op(f"addk  {_ACC}, r{home.reg}, r0")
                    return
        # Memory lvalue: load, adjust, store.
        self.gen_addr(target)
        self.op(f"addk  {_ADR}, {_ACC}, r0")
        is_byte = target.ctype.sizeof() == 1 and target.ctype.is_arith
        load = "lbui" if is_byte else "lwi"
        store = "sbi" if is_byte else "swi"
        self.op(f"{load}  {_ACC}, {_ADR}, 0")
        if post:
            self.op(f"addik {_LHS}, {_ACC}, {delta}")
            self.op(f"{store}   {_LHS}, {_ADR}, 0")
        else:
            self.op(f"addik {_ACC}, {_ACC}, {delta}")
            self.op(f"{store}   {_ACC}, {_ADR}, 0")

    # ------------------------------------------------------------------
    def gen_binary(self, expr: Binary) -> None:
        op = expr.op
        if op in ("&&", "||"):
            self.gen_logical(expr)
            return
        lt = expr.left.ctype.decay()  # type: ignore[union-attr]
        rt = expr.right.ctype.decay()  # type: ignore[union-attr]
        unsigned = lt.is_unsigned or rt.is_unsigned or lt.is_pointer or rt.is_pointer

        if self._try_leaf_binary(expr, op, lt, rt, unsigned):
            return

        self.gen_expr(expr.left)
        # Pointer arithmetic scaling for "ptr + int" / "int + ptr".
        if op in ("+", "-") and lt.is_pointer and rt.is_arith:
            self.push()
            self.gen_expr(expr.right)
            self.scale_acc(lt.elem_size())
            self.pop(_LHS)
        elif op == "+" and rt.is_pointer and lt.is_arith:
            self.scale_acc(rt.elem_size())
            self.push()
            self.gen_expr(expr.right)
            self.pop(_LHS)
        else:
            self.push()
            self.gen_expr(expr.right)
            self.pop(_LHS)
        # left in r11, right in r3
        if op == "+":
            self.op(f"addk  {_ACC}, {_LHS}, {_ACC}")
        elif op == "-":
            self.op(f"rsubk {_ACC}, {_ACC}, {_LHS}")  # r11 - r3
            if lt.is_pointer and rt.is_pointer:
                elem = lt.elem_size()
                if elem > 1:
                    self._divide_acc_by_const(elem)
        elif op == "*":
            self.gen_multiply()
        elif op in ("/", "%"):
            self.gen_divide(op, unsigned)
        elif op == "&":
            self.op(f"and   {_ACC}, {_LHS}, {_ACC}")
        elif op == "|":
            self.op(f"or    {_ACC}, {_LHS}, {_ACC}")
        elif op == "^":
            self.op(f"xor   {_ACC}, {_LHS}, {_ACC}")
        elif op in ("<<", ">>"):
            kind = "sll" if op == "<<" else ("srl" if unsigned else "sra")
            if self.opts.hw_barrel_shifter:
                mnem = {"sll": "bsll", "sra": "bsra", "srl": "bsrl"}[kind]
                self.op(f"{mnem}  {_ACC}, {_LHS}, {_ACC}")
            else:
                self.emit_shift_reg_call(_LHS, _ACC, kind)
        elif op in ("==", "!="):
            self.op(f"xor   {_ACC}, {_LHS}, {_ACC}")
            self.op(f"cmpu  {_ACC}, {_ACC}, r0")
            self.emit_msb_to_acc()
            if op == "==":
                self.op(f"xori  {_ACC}, {_ACC}, 1")
        elif op in ("<", "<=", ">", ">="):
            cmp = "cmpu " if unsigned else "cmp  "
            if op in ("<", ">="):
                # MSB = right > left  == (left < right)
                self.op(f"{cmp} {_ACC}, {_ACC}, {_LHS}")
            else:
                # MSB = left > right
                self.op(f"{cmp} {_ACC}, {_LHS}, {_ACC}")
            self.emit_msb_to_acc()
            if op in ("<=", ">="):
                self.op(f"xori  {_ACC}, {_ACC}, 1")
        else:  # pragma: no cover
            raise CodegenError(f"unknown binary {op!r}", expr.line)

    def _try_leaf_binary(self, expr: Binary, op: str, lt: CType, rt: CType,
                         unsigned: bool) -> bool:
        """Emit ``left <op> leaf-right`` without expression-stack
        traffic when the right operand is a small immediate or a
        register-homed variable.  Returns True on success."""
        imm = self.leaf_imm(expr.right)
        reg = self.leaf_reg(expr.right)
        if imm is None and reg is None:
            return False
        # Pointer arithmetic: only constant offsets are folded here.
        if (lt.is_pointer or rt.is_pointer) and op in ("+", "-"):
            if not (lt.is_pointer and rt.is_arith and imm is not None):
                return False
            scaled = imm * lt.elem_size()
            if op == "-":
                scaled = -scaled
            if not -0x8000 <= scaled <= 0x7FFF:
                return False
            self.gen_expr(expr.left)
            if scaled:
                self.op(f"addik {_ACC}, {_ACC}, {scaled}")
            return True
        if lt.is_pointer or rt.is_pointer:
            if op not in ("==", "!=", "<", "<=", ">", ">="):
                return False
        if op == "-" and imm == -0x8000:
            return False  # negation would overflow the 16-bit field

        self.gen_expr(expr.left)  # left value in r3

        def right_in_reg() -> str:
            if reg is not None:
                return reg
            self.op(f"addik {_LHS}, r0, {imm}")
            return _LHS

        if op == "+":
            self.op(f"addk  {_ACC}, {_ACC}, {reg}" if reg is not None
                    else f"addik {_ACC}, {_ACC}, {imm}")
        elif op == "-":
            if reg is not None:
                self.op(f"rsubk {_ACC}, {reg}, {_ACC}")  # r3 - reg
            else:
                self.op(f"addik {_ACC}, {_ACC}, {-imm}")
        elif op == "*":
            if self.opts.hw_multiplier:
                self.op(f"mul   {_ACC}, {_ACC}, {reg}" if reg is not None
                        else f"muli  {_ACC}, {_ACC}, {imm}")
            else:
                self.op(f"addk  r5, {_ACC}, r0")
                if reg is not None:
                    self.op(f"addk  r6, {reg}, r0")
                else:
                    self.load_imm("r6", imm)  # type: ignore[arg-type]
                self.op("brlid r15, __mulsi3")
                self.op("nop")
        elif op in ("/", "%"):
            if self.opts.hw_divider and op == "/":
                divisor = right_in_reg()
                mnem = "idivu" if unsigned else "idiv"
                self.op(f"{mnem} {_ACC}, {divisor}, {_ACC}")
            else:
                helper = {
                    ("/", False): "__divsi3",
                    ("/", True): "__udivsi3",
                    ("%", False): "__modsi3",
                    ("%", True): "__umodsi3",
                }[(op, unsigned)]
                self.op(f"addk  r5, {_ACC}, r0")
                if reg is not None:
                    self.op(f"addk  r6, {reg}, r0")
                else:
                    self.load_imm("r6", imm)  # type: ignore[arg-type]
                self.op(f"brlid r15, {helper}")
                self.op("nop")
        elif op in ("&", "|", "^"):
            mnem_r = {"&": "and", "|": "or", "^": "xor"}[op]
            mnem_i = {"&": "andi", "|": "ori", "^": "xori"}[op]
            self.op(f"{mnem_r}   {_ACC}, {_ACC}, {reg}" if reg is not None
                    else f"{mnem_i}  {_ACC}, {_ACC}, {imm}")
        elif op in ("<<", ">>"):
            kind = "sll" if op == "<<" else ("srl" if unsigned else "sra")
            if reg is None:
                self.emit_shift_imm(_ACC, _ACC, imm & 31, kind)
            elif self.opts.hw_barrel_shifter:
                mnem = {"sll": "bsll", "sra": "bsra", "srl": "bsrl"}[kind]
                self.op(f"{mnem}  {_ACC}, {_ACC}, {reg}")
            else:
                self.emit_shift_reg_call(_ACC, reg, kind)
        elif op in ("==", "!="):
            self.op(f"xor   {_ACC}, {_ACC}, {reg}" if reg is not None
                    else f"xori  {_ACC}, {_ACC}, {imm}")
            self.op(f"cmpu  {_ACC}, {_ACC}, r0")
            self.emit_msb_to_acc()
            if op == "==":
                self.op(f"xori  {_ACC}, {_ACC}, 1")
        elif op in ("<", "<=", ">", ">="):
            rreg = right_in_reg()
            cmp = "cmpu " if unsigned else "cmp  "
            if op in ("<", ">="):
                self.op(f"{cmp} {_ACC}, {rreg}, {_ACC}")  # MSB = right > left
            else:
                self.op(f"{cmp} {_ACC}, {_ACC}, {rreg}")  # MSB = left > right
            self.emit_msb_to_acc()
            if op in ("<=", ">="):
                self.op(f"xori  {_ACC}, {_ACC}, 1")
        else:
            raise CodegenError(f"unknown binary {op!r}", expr.line)
        return True

    def gen_logical(self, expr: Binary) -> None:
        false_l = self.label()
        true_l = self.label()
        end = self.label()
        self.gen_expr(expr.left)
        if expr.op == "&&":
            self.op(f"beqi  {_ACC}, {false_l}")
            self.gen_expr(expr.right)
            self.op(f"beqi  {_ACC}, {false_l}")
            self.place_label(true_l)
            self.load_imm(_ACC, 1)
            self.op(f"bri   {end}")
            self.place_label(false_l)
            self.load_imm(_ACC, 0)
        else:
            self.op(f"bnei  {_ACC}, {true_l}")
            self.gen_expr(expr.right)
            self.op(f"bnei  {_ACC}, {true_l}")
            self.load_imm(_ACC, 0)
            self.op(f"bri   {end}")
            self.place_label(true_l)
            self.load_imm(_ACC, 1)
        self.place_label(end)

    def gen_multiply(self) -> None:
        if self.opts.hw_multiplier:
            self.op(f"mul   {_ACC}, {_LHS}, {_ACC}")
        else:
            self.op(f"addk  r5, {_LHS}, r0")
            self.op(f"addk  r6, {_ACC}, r0")
            self.op("brlid r15, __mulsi3")
            self.op("nop")

    def gen_divide(self, op: str, unsigned: bool) -> None:
        if self.opts.hw_divider and op == "/":
            # idiv rd, ra, rb computes rb / ra (divisor in ra).
            mnem = "idivu" if unsigned else "idiv"
            self.op(f"{mnem} {_ACC}, {_ACC}, {_LHS}")
            return
        helper = {
            ("/", False): "__divsi3",
            ("/", True): "__udivsi3",
            ("%", False): "__modsi3",
            ("%", True): "__umodsi3",
        }[(op, unsigned)]
        self.op(f"addk  r5, {_LHS}, r0")
        self.op(f"addk  r6, {_ACC}, r0")
        self.op(f"brlid r15, {helper}")
        self.op("nop")

    def _divide_acc_by_const(self, value: int) -> None:
        if value & (value - 1) == 0:
            self.emit_shift_imm(_ACC, _ACC, value.bit_length() - 1, "sra")
        else:
            self.op(f"addk  r5, {_ACC}, r0")
            self.load_imm("r6", value)
            self.op("brlid r15, __divsi3")
            self.op("nop")

    # ------------------------------------------------------------------
    def _try_direct_compound(self, expr: Assign, home: str,
                             need_value: bool) -> bool:
        """``reg <op>= leaf`` in a single instruction on the home
        register (plus a move when the value is needed)."""
        tt = expr.target.ctype.decay()  # type: ignore[union-attr]
        vt = expr.value.ctype.decay()  # type: ignore[union-attr]
        if tt.base == "char" or (tt.is_pointer and expr.op in ("+=", "-=")):
            # char needs masking; pointer steps need scaling — general path.
            if not (tt.is_pointer and expr.op in ("+=", "-=")
                    and isinstance(expr.value, Num)):
                return False
        unsigned = tt.is_unsigned or vt.is_unsigned
        imm = self.leaf_imm(expr.value)
        reg = self.leaf_reg(expr.value)
        if imm is None and reg is None:
            return False
        op = expr.op[:-1]
        if tt.is_pointer and op in ("+", "-") and imm is not None:
            imm = imm * tt.elem_size()
            if not -0x8000 <= imm <= 0x7FFF:
                return False
        if op == "+":
            self.op(f"addk  {home}, {home}, {reg}" if imm is None
                    else f"addik {home}, {home}, {imm}")
        elif op == "-":
            if imm is not None:
                if imm == -0x8000:
                    return False
                self.op(f"addik {home}, {home}, {-imm}")
            else:
                self.op(f"rsubk {home}, {reg}, {home}")
        elif op == "*" and self.opts.hw_multiplier:
            self.op(f"mul   {home}, {home}, {reg}" if imm is None
                    else f"muli  {home}, {home}, {imm}")
        elif op in ("&", "|", "^"):
            mnem_r = {"&": "and", "|": "or", "^": "xor"}[op]
            mnem_i = {"&": "andi", "|": "ori", "^": "xori"}[op]
            self.op(f"{mnem_r}   {home}, {home}, {reg}" if imm is None
                    else f"{mnem_i}  {home}, {home}, {imm}")
        elif op in ("<<", ">>"):
            kind = "sll" if op == "<<" else ("srl" if unsigned else "sra")
            if imm is not None:
                self.emit_shift_imm(home, home, imm & 31, kind)
            elif self.opts.hw_barrel_shifter:
                mnem = {"sll": "bsll", "sra": "bsra", "srl": "bsrl"}[kind]
                self.op(f"{mnem}  {home}, {home}, {reg}")
            else:
                return False
        else:
            return False
        if need_value:
            self.op(f"addk  {_ACC}, {home}, r0")
        return True

    def gen_assign(self, expr: Assign, need_value: bool = True) -> None:
        target = expr.target
        assert target.ctype is not None
        # Register-homed scalar var: operate on the register directly.
        if isinstance(target, Var):
            sym = self.unit.sym_for(target)
            if sym.kind in ("local", "param"):
                home = self.home(sym)
                if home.reg is not None:
                    if expr.op != "=" and self._try_direct_compound(
                        expr, f"r{home.reg}", need_value
                    ):
                        return
                    self.gen_expr(expr.value)
                    if expr.op != "=":
                        self._apply_compound(expr, f"r{home.reg}")
                    self.store_to_home(sym, home)
                    # r3 already holds the assigned value.
                    return
        # Memory lvalue addressable without setup code: value straight
        # into a base+offset store, no expression-stack traffic.
        ao = self.addr_operand(target)
        if ao is not None:
            base, off = ao
            self.gen_expr(expr.value)
            if expr.op != "=":
                self.load_via(base, off, target.ctype, dst=_LHS)
                self._apply_compound(expr, _LHS)
            self.store_via(base, off, target.ctype)
            return
        # General memory lvalue.
        self.gen_addr(target)
        self.push()
        self.gen_expr(expr.value)
        if expr.op != "=":
            # load old value from the saved address
            self.op(f"lwi   {_ADR}, r1, 0")
            is_byte = target.ctype.sizeof() == 1 and target.ctype.is_arith
            self.op(("lbui" if is_byte else "lwi") + f"  {_LHS}, {_ADR}, 0")
            self._apply_compound(expr, _LHS)
        self.pop(_ADR)
        is_byte = target.ctype.sizeof() == 1 and target.ctype.is_arith
        self.op(("sbi" if is_byte else "swi") + f"   {_ACC}, {_ADR}, 0")

    def _apply_compound(self, expr: Assign, old_reg: str) -> None:
        """r3 = old_reg <op> r3 for compound assignments."""
        op = expr.op[:-1]
        tt = expr.target.ctype.decay()  # type: ignore[union-attr]
        vt = expr.value.ctype.decay()  # type: ignore[union-attr]
        unsigned = tt.is_unsigned or vt.is_unsigned or tt.is_pointer
        if tt.is_pointer and op in ("+", "-"):
            self.scale_acc(tt.elem_size())
        if op == "+":
            self.op(f"addk  {_ACC}, {old_reg}, {_ACC}")
        elif op == "-":
            self.op(f"rsubk {_ACC}, {_ACC}, {old_reg}")
        elif op == "*":
            if old_reg != _LHS:
                self.op(f"addk  {_LHS}, {old_reg}, r0")
            self.gen_multiply()
        elif op in ("/", "%"):
            if old_reg != _LHS:
                self.op(f"addk  {_LHS}, {old_reg}, r0")
            self.gen_divide(op, unsigned)
        elif op == "&":
            self.op(f"and   {_ACC}, {old_reg}, {_ACC}")
        elif op == "|":
            self.op(f"or    {_ACC}, {old_reg}, {_ACC}")
        elif op == "^":
            self.op(f"xor   {_ACC}, {old_reg}, {_ACC}")
        elif op in ("<<", ">>"):
            kind = "sll" if op == "<<" else ("srl" if unsigned else "sra")
            if self.opts.hw_barrel_shifter:
                mnem = {"sll": "bsll", "sra": "bsra", "srl": "bsrl"}[kind]
                self.op(f"{mnem}  {_ACC}, {old_reg}, {_ACC}")
            else:
                self.emit_shift_reg_call(old_reg, _ACC, kind)
        else:  # pragma: no cover
            raise CodegenError(f"unknown compound op {expr.op!r}", expr.line)

    # ------------------------------------------------------------------
    def gen_call(self, expr: Call) -> None:
        builtin = BUILTINS.get(expr.name)
        if builtin is not None:
            self.gen_builtin(expr)
            return
        if len(expr.args) > 6:  # pragma: no cover - sema guarantees
            raise CodegenError("too many arguments", expr.line)
        for arg in expr.args:
            self.gen_expr(arg)
            self.push()
        for i in reversed(range(len(expr.args))):
            self.pop(f"r{5 + i}")
        self.op(f"brlid r15, {expr.name}")
        self.op("nop")

    def gen_builtin(self, expr: Call) -> None:
        name = expr.name
        if name in ("putfsl", "nputfsl", "cputfsl", "ncputfsl"):
            channel = expr.args[1]
            assert isinstance(channel, Num)
            self.gen_expr(expr.args[0])
            mnem = {"putfsl": "put", "nputfsl": "nput",
                    "cputfsl": "cput", "ncputfsl": "ncput"}[name]
            self.op(f"{mnem}   {_ACC}, rfsl{channel.value}")
            return
        if name in ("getfsl", "ngetfsl", "cgetfsl", "ncgetfsl"):
            channel = expr.args[0]
            assert isinstance(channel, Num)
            mnem = {"getfsl": "get", "ngetfsl": "nget",
                    "cgetfsl": "cget", "ncgetfsl": "ncget"}[name]
            self.op(f"{mnem}   {_ACC}, rfsl{channel.value}")
            return
        if name == "fsl_isinvalid":
            self.op(f"addc  {_ACC}, r0, r0")  # r3 = carry flag
            return
        if name == "__builtin_putchar":
            self.gen_expr(expr.args[0])
            self.op(f"addk  r5, {_ACC}, r0")
            self.op("brlid r15, __putchar")
            self.op("nop")
            return
        if name == "__builtin_exit":
            self.gen_expr(expr.args[0])
            self.op(f"addk  r5, {_ACC}, r0")
            self.op("brlid r15, __exit")
            self.op("nop")
            return
        raise CodegenError(f"unknown builtin {name!r}", expr.line)  # pragma: no cover


# ----------------------------------------------------------------------
# Unit-level generation
# ----------------------------------------------------------------------
def generate(unit_info: UnitInfo, opts: CodegenOptions | None = None) -> str:
    """Generate MB32 assembly text for an analyzed translation unit."""
    opts = opts or CodegenOptions()
    out: list[str] = ["    .text"]

    # String literal labels.
    string_labels: dict[int, str] = {}
    for i, lit in enumerate(unit_info.strings):
        string_labels[id(lit)] = f"__str{i}"

    for info in unit_info.functions.values():
        FunctionEmitter(unit_info, info, opts, out, string_labels).emit_function()

    # Globals.
    data_lines: list[str] = []
    bss_lines: list[str] = []
    for sym in unit_info.globals:
        decl = sym.decl
        assert decl is not None
        if decl.init is None:
            size = (sym.ctype.sizeof() + 3) & ~3
            bss_lines.append(f"{sym.label}:")
            bss_lines.append(f"    .space {size}")
            continue
        data_lines.append(f"    .align 4")
        data_lines.append(f"{sym.label}:")
        data_lines.extend(_emit_init(sym.ctype, decl.init, string_labels))
    for i, lit in enumerate(unit_info.strings):
        data_lines.append(f"__str{i}:")
        data_lines.append(f'    .asciz "{_escape(lit.value)}"')

    if data_lines:
        out.append("")
        out.append("    .data")
        out.extend(data_lines)
    if bss_lines:
        out.append("")
        out.append("    .bss")
        out.extend(bss_lines)
    out.append("")
    return "\n".join(out)


def _emit_init(ctype: CType, init, string_labels: dict[int, str]) -> list[str]:
    lines: list[str] = []
    if isinstance(init, list):
        flat: list = []
        _flatten(init, flat)
        elem = ctype.decay().elem_size()
        word = ".byte" if elem == 1 else ".word"
        for item in flat:
            lines.extend(_emit_scalar_init(word, item, string_labels))
        total = ctype.sizeof() // elem
        missing = total - len(flat)
        if missing > 0:
            lines.append(f"    .space {missing * elem}")
        return lines
    word = ".byte" if (ctype.sizeof() == 1 and ctype.is_arith) else ".word"
    lines.extend(_emit_scalar_init(word, init, string_labels))
    return lines


def _emit_scalar_init(word: str, item, string_labels: dict[int, str]) -> list[str]:
    if isinstance(item, Num):
        return [f"    {word} {item.value}"]
    if isinstance(item, StrLit):
        return [f"    {word} {string_labels[id(item)]}"]
    raise CodegenError("non-constant global initializer", getattr(item, "line", 0))


def _flatten(init: list, out: list) -> None:
    for item in init:
        if isinstance(item, list):
            _flatten(item, out)
        else:
            out.append(item)


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\t", "\\t")
        .replace("\r", "\\r")
        .replace("\0", "\\0")
    )
