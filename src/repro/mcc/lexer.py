"""Tokenizer for the mini-C language."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.mcc.errors import LexError

KEYWORDS = {
    "int",
    "unsigned",
    "char",
    "void",
    "if",
    "else",
    "while",
    "for",
    "do",
    "return",
    "break",
    "continue",
    "const",
    "static",
    "sizeof",
}

# Longest-match-first operator list.
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", "?", ":",
]

_TOKEN_SPEC = [
    ("comment", r"//[^\n]*|/\*.*?\*/"),
    ("ws", r"[ \t\r\n]+"),
    ("num", r"0[xX][0-9a-fA-F]+|0[bB][01]+|\d+"),
    ("char", r"'(?:\\.|[^'\\])'"),
    ("string", r'"(?:\\.|[^"\\])*"'),
    ("ident", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("op", "|".join(re.escape(op) for op in OPERATORS)),
]
_MASTER_RE = re.compile(
    "|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC),
    re.DOTALL,
)

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0",
    "'": "'", '"': '"', "\\": "\\",
}


@dataclass(frozen=True)
class Token:
    kind: str  # 'num', 'char', 'string', 'ident', 'kw', 'op', 'eof'
    text: str
    line: int
    col: int
    value: int = 0  # numeric value for 'num'/'char'

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def _unescape(body: str, line: int, col: int) -> str:
    out: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            esc = _ESCAPES.get(body[i]) if i < len(body) else None
            if esc is None:
                raise LexError(f"unknown escape sequence in literal", line, col)
            out.append(esc)
        else:
            out.append(ch)
        i += 1
    return "".join(out)


def tokenize(source: str) -> list[Token]:
    """Tokenize ``source``; returns tokens ending with an ``eof`` token."""
    tokens: list[Token] = []
    line = 1
    line_start = 0
    pos = 0
    n = len(source)
    while pos < n:
        m = _MASTER_RE.match(source, pos)
        if m is None:
            col = pos - line_start + 1
            raise LexError(f"unexpected character {source[pos]!r}", line, col)
        kind = m.lastgroup
        text = m.group()
        col = pos - line_start + 1
        if kind in ("ws", "comment"):
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = pos + text.rindex("\n") + 1
        elif kind == "num":
            tokens.append(Token("num", text, line, col, value=int(text, 0)))
        elif kind == "char":
            body = _unescape(text[1:-1], line, col)
            if len(body) != 1:
                raise LexError("character literal must be one character", line, col)
            tokens.append(Token("char", text, line, col, value=ord(body)))
        elif kind == "string":
            tokens.append(Token("string", _unescape(text[1:-1], line, col), line, col))
        elif kind == "ident":
            tok_kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(tok_kind, text, line, col))
        else:  # op
            tokens.append(Token("op", text, line, col))
        pos = m.end()
    tokens.append(Token("eof", "", line, pos - line_start + 1))
    return tokens
