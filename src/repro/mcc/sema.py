"""Semantic analysis for mini-C.

Responsibilities:

* build scoped symbol tables; resolve every :class:`Var` to a symbol,
* type-check and annotate every expression with its :class:`CType`,
* fold constant expressions (so FSL channel ids, array sizes and the
  like become plain numbers),
* mark address-taken locals (they must live in memory, not registers),
* validate control flow (``break``/``continue`` inside loops, returns),
* recognize the builtin/intrinsic functions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.mcc.errors import SemaError
from repro.mcc.tree import (
    Assign,
    Binary,
    Block,
    Break,
    Call,
    Cast,
    Cond,
    Continue,
    CType,
    CHAR_PTR,
    DoWhile,
    Expr,
    ExprStmt,
    For,
    FuncDef,
    If,
    Index,
    INT,
    Num,
    Return,
    SizeofType,
    StrLit,
    TranslationUnit,
    UNSIGNED,
    Unary,
    Var,
    VarDecl,
    VOID,
    While,
)


# ----------------------------------------------------------------------
# Symbols
# ----------------------------------------------------------------------
@dataclass
class Sym:
    name: str
    ctype: CType
    kind: str  # 'global' | 'local' | 'param' | 'func' | 'builtin'
    decl: Optional[VarDecl] = None
    addr_taken: bool = False
    #: unique label for globals/statics; assigned by sema
    label: str = ""
    #: for functions: parameter types and return type
    param_types: tuple[CType, ...] = ()
    ret: CType = VOID


@dataclass
class BuiltinSpec:
    name: str
    ret: CType
    params: tuple[CType, ...]
    #: index of the argument that must be a constant FSL channel (0-7)
    const_channel_arg: int | None = None


# FSL intrinsics mirror the Xilinx C macros (blocking/non-blocking ×
# data/control).  ``fsl_isinvalid`` reads the carry flag set by the
# preceding non-blocking access.
BUILTINS: dict[str, BuiltinSpec] = {
    "putfsl": BuiltinSpec("putfsl", VOID, (INT, INT), const_channel_arg=1),
    "nputfsl": BuiltinSpec("nputfsl", VOID, (INT, INT), const_channel_arg=1),
    "cputfsl": BuiltinSpec("cputfsl", VOID, (INT, INT), const_channel_arg=1),
    "ncputfsl": BuiltinSpec("ncputfsl", VOID, (INT, INT), const_channel_arg=1),
    "getfsl": BuiltinSpec("getfsl", INT, (INT,), const_channel_arg=0),
    "ngetfsl": BuiltinSpec("ngetfsl", INT, (INT,), const_channel_arg=0),
    "cgetfsl": BuiltinSpec("cgetfsl", INT, (INT,), const_channel_arg=0),
    "ncgetfsl": BuiltinSpec("ncgetfsl", INT, (INT,), const_channel_arg=0),
    "fsl_isinvalid": BuiltinSpec("fsl_isinvalid", INT, ()),
    "__builtin_putchar": BuiltinSpec("__builtin_putchar", VOID, (INT,)),
    "__builtin_exit": BuiltinSpec("__builtin_exit", VOID, (INT,)),
}


class Scope:
    def __init__(self, parent: Optional["Scope"] = None):
        self.parent = parent
        self.names: dict[str, Sym] = {}

    def define(self, sym: Sym, line: int) -> None:
        if sym.name in self.names:
            raise SemaError(f"redefinition of {sym.name!r}", line)
        self.names[sym.name] = sym

    def lookup(self, name: str) -> Sym | None:
        scope: Scope | None = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None


@dataclass
class FunctionInfo:
    """Sema results for one function, consumed by the code generator."""

    func: FuncDef
    locals: list[Sym] = field(default_factory=list)
    has_calls: bool = False


@dataclass
class UnitInfo:
    unit: TranslationUnit
    globals: list[Sym] = field(default_factory=list)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    strings: list[StrLit] = field(default_factory=list)
    #: Var -> Sym resolution used by codegen
    resolution: dict[int, Sym] = field(default_factory=dict)

    def sym_for(self, var: Var) -> Sym:
        return self.resolution[id(var)]


def _is_null_ptr_const(expr: Expr) -> bool:
    return isinstance(expr, Num) and expr.value == 0


class Analyzer:
    def __init__(self) -> None:
        self.globals = Scope()
        self.info: UnitInfo | None = None
        self.current: FunctionInfo | None = None
        self.loop_depth = 0
        self._static_counter = 0

    # ------------------------------------------------------------------
    def analyze(self, unit: TranslationUnit) -> UnitInfo:
        self.info = UnitInfo(unit)
        # Pass 1: collect global signatures so forward calls work.
        for decl in unit.decls:
            if isinstance(decl, FuncDef):
                self._declare_function(decl)
            else:
                self._declare_global(decl)
        # Pass 2: bodies.
        for decl in unit.decls:
            if isinstance(decl, FuncDef) and decl.body is not None:
                self._function(decl)
            elif isinstance(decl, VarDecl):
                self._global_init(decl)
        return self.info

    # ------------------------------------------------------------------
    def _declare_function(self, func: FuncDef) -> None:
        if func.name in BUILTINS:
            raise SemaError(f"{func.name!r} is a builtin", func.line)
        existing = self.globals.lookup(func.name)
        sig = tuple(p.ctype for p in func.params)
        if existing is not None:
            if existing.kind != "func":
                raise SemaError(f"{func.name!r} redeclared as function", func.line)
            if existing.param_types != sig or existing.ret != func.ret:
                raise SemaError(
                    f"conflicting declaration of {func.name!r}", func.line
                )
            return
        sym = Sym(func.name, func.ret, "func", param_types=sig, ret=func.ret,
                  label=func.name)
        self.globals.define(sym, func.line)

    def _declare_global(self, decl: VarDecl) -> None:
        if decl.ctype.is_void:
            raise SemaError(f"variable {decl.name!r} has type void", decl.line)
        label = decl.name
        if decl.is_static:
            self._static_counter += 1
            label = f"{decl.name}__static{self._static_counter}"
        sym = Sym(decl.name, decl.ctype, "global", decl=decl, label=label)
        self.globals.define(sym, decl.line)
        assert self.info is not None
        self.info.globals.append(sym)

    def _global_init(self, decl: VarDecl) -> None:
        if decl.init is None:
            return
        decl.init = self._fold_initializer(decl, decl.init)

    def _fold_initializer(self, decl: VarDecl, init):
        """Global initializers must be constant expressions; returns the
        folded initializer (Num/StrLit leaves)."""
        if isinstance(init, list):
            return [self._fold_initializer(decl, item) for item in init]
        folded = self._expr(init, Scope(self.globals))
        if not isinstance(folded, (Num, StrLit)):
            raise SemaError(
                f"initializer of global {decl.name!r} is not constant", decl.line
            )
        return folded

    # ------------------------------------------------------------------
    def _function(self, func: FuncDef) -> None:
        assert self.info is not None
        if func.name in self.info.functions:
            raise SemaError(f"redefinition of function {func.name!r}", func.line)
        if len(func.params) > 6:
            raise SemaError(
                "more than 6 parameters not supported (registers r5-r10)",
                func.line,
            )
        self.current = FunctionInfo(func)
        self.info.functions[func.name] = self.current
        scope = Scope(self.globals)
        for param in func.params:
            if param.ctype.is_void:
                raise SemaError(f"parameter {param.name!r} has type void", param.line)
            sym = Sym(param.name, param.ctype, "param")
            scope.define(sym, param.line)
            self.current.locals.append(sym)
        assert func.body is not None
        self._block(func.body, scope)
        self.current = None

    def _block(self, block: Block, scope: Scope) -> None:
        inner = Scope(scope)
        for stmt in block.stmts:
            self._stmt(stmt, inner)

    def _stmt(self, stmt, scope: Scope) -> None:
        if isinstance(stmt, VarDecl):
            self._local_decl(stmt, scope)
        elif isinstance(stmt, Block):
            self._block(stmt, scope)
        elif isinstance(stmt, ExprStmt):
            stmt.expr = self._expr(stmt.expr, scope)
        elif isinstance(stmt, If):
            stmt.cond = self._expr_scalar(stmt.cond, scope)
            self._stmt(stmt.then, scope)
            if stmt.els is not None:
                self._stmt(stmt.els, scope)
        elif isinstance(stmt, While):
            stmt.cond = self._expr_scalar(stmt.cond, scope)
            self.loop_depth += 1
            self._stmt(stmt.body, scope)
            self.loop_depth -= 1
        elif isinstance(stmt, DoWhile):
            self.loop_depth += 1
            self._stmt(stmt.body, scope)
            self.loop_depth -= 1
            stmt.cond = self._expr_scalar(stmt.cond, scope)
        elif isinstance(stmt, For):
            inner = Scope(scope)
            if stmt.init is not None:
                if isinstance(stmt.init, list):
                    for d in stmt.init:
                        self._stmt(d, inner)
                else:
                    self._stmt(stmt.init, inner)
            if stmt.cond is not None:
                stmt.cond = self._expr_scalar(stmt.cond, inner)
            if stmt.step is not None:
                stmt.step = self._expr(stmt.step, inner)
            self.loop_depth += 1
            self._stmt(stmt.body, inner)
            self.loop_depth -= 1
        elif isinstance(stmt, Return):
            assert self.current is not None
            ret = self.current.func.ret
            if stmt.expr is None:
                if not ret.is_void:
                    raise SemaError("return without a value in non-void function",
                                    stmt.line)
            else:
                if ret.is_void:
                    raise SemaError("return with a value in void function",
                                    stmt.line)
                stmt.expr = self._expr(stmt.expr, scope)
                self._check_assignable(ret, stmt.expr, stmt.line)
        elif isinstance(stmt, Break):
            if self.loop_depth == 0:
                raise SemaError("break outside a loop", stmt.line)
        elif isinstance(stmt, Continue):
            if self.loop_depth == 0:
                raise SemaError("continue outside a loop", stmt.line)
        else:  # pragma: no cover
            raise SemaError(f"unknown statement {type(stmt).__name__}", stmt.line)

    def _local_decl(self, decl: VarDecl, scope: Scope) -> None:
        assert self.current is not None
        if decl.ctype.is_void:
            raise SemaError(f"variable {decl.name!r} has type void", decl.line)
        if decl.is_static:
            raise SemaError("static locals not supported", decl.line)
        sym = Sym(decl.name, decl.ctype, "local", decl=decl)
        scope.define(sym, decl.line)
        self.current.locals.append(sym)
        if decl.init is not None:
            if isinstance(decl.init, list):
                if not decl.ctype.is_array:
                    raise SemaError("brace initializer on non-array", decl.line)
                flat = _flatten_init(decl.init, decl.line)
                total = decl.ctype.sizeof() // decl.ctype.decay().elem_size()
                if len(flat) > total:
                    raise SemaError("too many initializers", decl.line)
                decl.init = [self._expr(e, scope) for e in flat]
                sym.addr_taken = True  # arrays live in memory
            else:
                decl.init = self._expr(decl.init, scope)
                self._check_assignable(decl.ctype.decay(), decl.init, decl.line)
        if decl.ctype.is_array:
            sym.addr_taken = True

    # ------------------------------------------------------------------
    # Expressions: returns the (possibly folded) expression node
    # ------------------------------------------------------------------
    def _expr_scalar(self, expr: Expr, scope: Scope) -> Expr:
        out = self._expr(expr, scope)
        assert out.ctype is not None
        if not out.ctype.decay().is_scalar:
            raise SemaError(f"scalar value required, got {out.ctype}", expr.line)
        return out

    def _expr(self, expr: Expr, scope: Scope) -> Expr:
        assert self.info is not None
        if isinstance(expr, Num):
            expr.ctype = INT
            return expr
        if isinstance(expr, StrLit):
            expr.ctype = CHAR_PTR
            self.info.strings.append(expr)
            return expr
        if isinstance(expr, SizeofType):
            return Num(line=expr.line, value=expr.of.sizeof(), ctype=UNSIGNED)
        if isinstance(expr, Var):
            sym = scope.lookup(expr.name)
            if sym is None:
                raise SemaError(f"undeclared identifier {expr.name!r}", expr.line)
            if sym.kind == "func":
                raise SemaError(
                    f"function {expr.name!r} used as a value", expr.line
                )
            self.info.resolution[id(expr)] = sym
            expr.ctype = sym.ctype
            return expr
        if isinstance(expr, Cast):
            expr.operand = self._expr(expr.operand, scope)
            if expr.to.is_void:
                expr.ctype = VOID
            else:
                src = expr.operand.ctype.decay()  # type: ignore[union-attr]
                if not (src.is_scalar and CType(expr.to.base, expr.to.ptr).is_scalar):
                    raise SemaError(f"invalid cast to {expr.to}", expr.line)
                expr.ctype = expr.to
            return expr
        if isinstance(expr, Unary):
            return self._unary(expr, scope)
        if isinstance(expr, Binary):
            return self._binary(expr, scope)
        if isinstance(expr, Assign):
            return self._assign(expr, scope)
        if isinstance(expr, Cond):
            expr.cond = self._expr_scalar(expr.cond, scope)
            expr.then = self._expr(expr.then, scope)
            expr.els = self._expr(expr.els, scope)
            t = expr.then.ctype.decay()  # type: ignore[union-attr]
            f = expr.els.ctype.decay()  # type: ignore[union-attr]
            expr.ctype = t if t == f else self._arith_result(t, f, expr.line)
            return expr
        if isinstance(expr, Index):
            return self._index(expr, scope)
        if isinstance(expr, Call):
            return self._call(expr, scope)
        raise SemaError(f"unknown expression {type(expr).__name__}",
                        expr.line)  # pragma: no cover

    def _unary(self, expr: Unary, scope: Scope) -> Expr:
        op = expr.op
        expr.operand = self._expr(expr.operand, scope)
        operand = expr.operand
        assert operand.ctype is not None
        if op == "&":
            if not self._is_lvalue(operand):
                raise SemaError("& requires an lvalue", expr.line)
            self._mark_addr_taken(operand)
            base = operand.ctype
            expr.ctype = CType(base.base, base.ptr + 1, base.dims[1:]) if \
                base.dims else CType(base.base, base.ptr + 1)
            if base.dims:
                # &arr[i] on the innermost level only; &array is the array addr
                expr.ctype = CType(base.base, base.ptr + 1)
            return expr
        if op == "*":
            ct = operand.ctype.decay()
            if not ct.is_pointer:
                raise SemaError(f"cannot dereference {operand.ctype}", expr.line)
            expr.ctype = ct.deref()
            return expr
        if op in ("++pre", "--pre", "++post", "--post"):
            if not self._is_lvalue(operand):
                raise SemaError(f"{op[:2]} requires an lvalue", expr.line)
            ct = operand.ctype.decay()
            if not ct.is_scalar or operand.ctype.is_array:
                raise SemaError(f"{op[:2]} on non-scalar {operand.ctype}", expr.line)
            expr.ctype = ct
            return expr
        if op == "sizeof":
            return Num(line=expr.line, value=operand.ctype.sizeof(), ctype=UNSIGNED)
        # arithmetic unaries
        ct = operand.ctype.decay()
        if op == "!":
            if not ct.is_scalar:
                raise SemaError("! requires a scalar", expr.line)
            if isinstance(operand, Num):
                return Num(line=expr.line, value=int(operand.value == 0), ctype=INT)
            expr.ctype = INT
            return expr
        if not ct.is_arith:
            raise SemaError(f"unary {op} requires arithmetic type", expr.line)
        if isinstance(operand, Num):
            val = -operand.value if op == "-" else ~operand.value
            return Num(line=expr.line, value=val, ctype=INT)
        expr.ctype = UNSIGNED if ct.is_unsigned else INT
        return expr

    def _arith_result(self, lt: CType, rt: CType, line: int) -> CType:
        if not (lt.is_arith and rt.is_arith):
            raise SemaError(f"invalid operand types {lt} and {rt}", line)
        return UNSIGNED if (lt.is_unsigned or rt.is_unsigned) else INT

    def _binary(self, expr: Binary, scope: Scope) -> Expr:
        expr.left = self._expr(expr.left, scope)
        expr.right = self._expr(expr.right, scope)
        lt = expr.left.ctype.decay()  # type: ignore[union-attr]
        rt = expr.right.ctype.decay()  # type: ignore[union-attr]
        op = expr.op

        # Constant folding.
        if isinstance(expr.left, Num) and isinstance(expr.right, Num) and \
                op not in ("&&", "||"):
            value = _fold_binary(op, expr.left.value, expr.right.value, expr.line)
            return Num(line=expr.line, value=value, ctype=INT)

        if op in ("&&", "||"):
            if not (lt.is_scalar and rt.is_scalar):
                raise SemaError(f"{op} requires scalar operands", expr.line)
            expr.ctype = INT
            return expr
        if op in ("==", "!=", "<", "<=", ">", ">="):
            if lt.is_pointer and (rt.is_pointer or _is_null_ptr_const(expr.right)):
                expr.ctype = INT
                return expr
            if rt.is_pointer and _is_null_ptr_const(expr.left):
                expr.ctype = INT
                return expr
            self._arith_result(lt, rt, expr.line)
            expr.ctype = INT
            return expr
        if op == "+":
            if lt.is_pointer and rt.is_arith:
                expr.ctype = lt
                return expr
            if rt.is_pointer and lt.is_arith:
                expr.ctype = rt
                return expr
        if op == "-":
            if lt.is_pointer and rt.is_arith:
                expr.ctype = lt
                return expr
            if lt.is_pointer and rt.is_pointer:
                expr.ctype = INT
                return expr
        expr.ctype = self._arith_result(lt, rt, expr.line)
        return expr

    def _assign(self, expr: Assign, scope: Scope) -> Expr:
        expr.target = self._expr(expr.target, scope)
        expr.value = self._expr(expr.value, scope)
        if not self._is_lvalue(expr.target):
            raise SemaError("assignment target is not an lvalue", expr.line)
        tt = expr.target.ctype
        assert tt is not None
        if tt.is_array:
            raise SemaError("cannot assign to an array", expr.line)
        target_sym = self._lvalue_sym(expr.target)
        if target_sym is not None and target_sym.decl is not None and \
                target_sym.decl.is_const:
            raise SemaError(f"assignment to const {target_sym.name!r}", expr.line)
        if expr.op == "=":
            self._check_assignable(tt, expr.value, expr.line)
        else:
            base_op = expr.op[:-1]
            lt = tt.decay()
            rt = expr.value.ctype.decay()  # type: ignore[union-attr]
            if base_op in ("+", "-") and lt.is_pointer and rt.is_arith:
                pass
            else:
                self._arith_result(lt, rt, expr.line)
        expr.ctype = tt
        return expr

    def _index(self, expr: Index, scope: Scope) -> Expr:
        expr.base = self._expr(expr.base, scope)
        expr.index = self._expr(expr.index, scope)
        bt = expr.base.ctype
        assert bt is not None
        it = expr.index.ctype.decay()  # type: ignore[union-attr]
        if not it.is_arith:
            raise SemaError("array index must be arithmetic", expr.line)
        if bt.is_array or bt.decay().is_pointer:
            expr.ctype = bt.deref() if bt.is_array else bt.decay().deref()
            return expr
        raise SemaError(f"cannot index {bt}", expr.line)

    def _call(self, expr: Call, scope: Scope) -> Expr:
        builtin = BUILTINS.get(expr.name)
        if builtin is not None:
            if len(expr.args) != len(builtin.params):
                raise SemaError(
                    f"{expr.name} expects {len(builtin.params)} arguments",
                    expr.line,
                )
            expr.args = [self._expr(a, scope) for a in expr.args]
            if builtin.const_channel_arg is not None:
                arg = expr.args[builtin.const_channel_arg]
                if not isinstance(arg, Num) or not 0 <= arg.value <= 7:
                    raise SemaError(
                        f"{expr.name}: FSL channel must be a constant 0..7",
                        expr.line,
                    )
            expr.ctype = builtin.ret
            return expr
        sym = self.globals.lookup(expr.name)
        if sym is None or sym.kind != "func":
            raise SemaError(f"call to undeclared function {expr.name!r}",
                            expr.line)
        if len(expr.args) != len(sym.param_types):
            raise SemaError(
                f"{expr.name} expects {len(sym.param_types)} arguments, "
                f"got {len(expr.args)}",
                expr.line,
            )
        expr.args = [self._expr(a, scope) for a in expr.args]
        for i, (arg, pt) in enumerate(zip(expr.args, sym.param_types)):
            self._check_assignable(pt, arg, expr.line)
        if self.current is not None:
            self.current.has_calls = True
        expr.ctype = sym.ret
        return expr

    # ------------------------------------------------------------------
    def _check_assignable(self, target: CType, value: Expr, line: int) -> None:
        vt = value.ctype
        assert vt is not None
        vt = vt.decay()
        tt = target.decay()
        if tt.is_arith and vt.is_arith:
            return
        if tt.is_pointer and vt.is_pointer:
            return  # permissive pointer conversions, like pre-ANSI C
        if tt.is_pointer and _is_null_ptr_const(value):
            return
        if tt.is_pointer and vt.is_arith:
            raise SemaError(f"cannot assign {vt} to pointer {tt} without a cast",
                            line)
        raise SemaError(f"cannot assign {vt} to {tt}", line)

    def _is_lvalue(self, expr: Expr) -> bool:
        if isinstance(expr, Var):
            return True
        if isinstance(expr, Index):
            return True
        if isinstance(expr, Unary) and expr.op == "*":
            return True
        return False

    def _lvalue_sym(self, expr: Expr) -> Sym | None:
        assert self.info is not None
        if isinstance(expr, Var):
            return self.info.resolution.get(id(expr))
        return None

    def _mark_addr_taken(self, expr: Expr) -> None:
        assert self.info is not None
        if isinstance(expr, Var):
            sym = self.info.resolution.get(id(expr))
            if sym is not None:
                sym.addr_taken = True
        elif isinstance(expr, Index):
            self._mark_addr_taken(expr.base)
        elif isinstance(expr, Unary) and expr.op == "*":
            pass  # already in memory


def _flatten_init(init: list, line: int) -> list:
    """Flatten nested brace initializers to a flat element list."""
    out: list = []
    for item in init:
        if isinstance(item, list):
            out.extend(_flatten_init(item, line))
        else:
            out.append(item)
    return out


def _fold_binary(op: str, left: int, right: int, line: int) -> int:
    if op in ("/", "%") and right == 0:
        raise SemaError("constant division by zero", line)
    table = {
        "+": lambda: left + right,
        "-": lambda: left - right,
        "*": lambda: left * right,
        "/": lambda: abs(left) // abs(right) * (1 if (left < 0) == (right < 0) else -1),
        "%": lambda: left - (abs(left) // abs(right) *
                             (1 if (left < 0) == (right < 0) else -1)) * right,
        "<<": lambda: left << (right & 31),
        ">>": lambda: left >> (right & 31),
        "&": lambda: left & right,
        "|": lambda: left | right,
        "^": lambda: left ^ right,
        "==": lambda: int(left == right),
        "!=": lambda: int(left != right),
        "<": lambda: int(left < right),
        "<=": lambda: int(left <= right),
        ">": lambda: int(left > right),
        ">=": lambda: int(left >= right),
    }
    if op not in table:
        raise SemaError(f"cannot fold operator {op!r}", line)  # pragma: no cover
    return table[op]()


def analyze(unit: TranslationUnit) -> UnitInfo:
    """Run semantic analysis over ``unit``."""
    return Analyzer().analyze(unit)
