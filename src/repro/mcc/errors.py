"""Diagnostics for the mini-C compiler."""

from __future__ import annotations


class MccError(Exception):
    """Base class for all compiler diagnostics."""

    def __init__(self, message: str, line: int = 0, col: int = 0):
        location = f"{line}:{col}: " if line else ""
        super().__init__(f"{location}{message}")
        self.line = line
        self.col = col


class LexError(MccError):
    """Invalid character or malformed literal."""


class ParseError(MccError):
    """Syntax error."""


class SemaError(MccError):
    """Type or semantic error."""


class CodegenError(MccError):
    """Internal code-generation failure (compiler bug guard)."""
