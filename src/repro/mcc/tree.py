"""AST node and type definitions for mini-C."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# ----------------------------------------------------------------------
# Types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CType:
    """A mini-C type: base type + pointer depth + array dimensions.

    ``dims`` applies to the *outermost* declarator, e.g.
    ``int a[3][4]`` is ``CType('int', dims=(3, 4))``.
    """

    base: str  # 'int' | 'unsigned' | 'char' | 'void'
    ptr: int = 0
    dims: tuple[int, ...] = ()

    # -- classification -------------------------------------------------
    @property
    def is_void(self) -> bool:
        return self.base == "void" and self.ptr == 0 and not self.dims

    @property
    def is_pointer(self) -> bool:
        return self.ptr > 0 and not self.dims

    @property
    def is_array(self) -> bool:
        return bool(self.dims)

    @property
    def is_arith(self) -> bool:
        return self.base in ("int", "unsigned", "char") and self.ptr == 0 and not self.dims

    @property
    def is_unsigned(self) -> bool:
        return self.base == "unsigned" and self.ptr == 0 and not self.dims

    @property
    def is_scalar(self) -> bool:
        return self.is_arith or self.is_pointer

    # -- layout -----------------------------------------------------------
    def elem_size(self) -> int:
        """Size of the pointed-to / element type."""
        return self.deref().sizeof()

    def sizeof(self) -> int:
        if self.dims:
            n = 1
            for d in self.dims:
                n *= d
            return n * CType(self.base, self.ptr).sizeof()
        if self.ptr:
            return 4
        return {"int": 4, "unsigned": 4, "char": 1, "void": 0}[self.base]

    def deref(self) -> "CType":
        """Type after one ``*`` or one ``[]``."""
        if self.dims:
            return CType(self.base, self.ptr, self.dims[1:])
        if self.ptr:
            return CType(self.base, self.ptr - 1)
        raise ValueError(f"cannot dereference {self}")

    def decay(self) -> "CType":
        """Array-to-pointer decay."""
        if self.dims:
            return CType(self.base, self.ptr + 1, self.dims[1:])
        return self

    def __str__(self) -> str:
        s = self.base + "*" * self.ptr
        for d in self.dims:
            s += f"[{d}]"
        return s


INT = CType("int")
UNSIGNED = CType("unsigned")
CHAR = CType("char")
VOID = CType("void")
CHAR_PTR = CType("char", ptr=1)


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass
class Expr:
    line: int = 0
    #: filled in by semantic analysis
    ctype: Optional[CType] = field(default=None, compare=False)


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class StrLit(Expr):
    value: str = ""
    label: str = ""  # assigned by codegen


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    """op in: '-', '~', '!', '*', '&', '++pre', '--pre', '++post', '--post'"""

    op: str = ""
    operand: Expr = None  # type: ignore[assignment]


@dataclass
class Binary(Expr):
    """op in: arithmetic, bitwise, shifts, comparisons, '&&', '||'"""

    op: str = ""
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass
class Assign(Expr):
    """op: '=' or compound like '+='."""

    op: str = "="
    target: Expr = None  # type: ignore[assignment]
    value: Expr = None  # type: ignore[assignment]


@dataclass
class Cond(Expr):
    """Ternary ``c ? t : f``."""

    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    els: Expr = None  # type: ignore[assignment]


@dataclass
class Index(Expr):
    base: Expr = None  # type: ignore[assignment]
    index: Expr = None  # type: ignore[assignment]


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class SizeofType(Expr):
    of: CType = None  # type: ignore[assignment]


@dataclass
class Cast(Expr):
    to: CType = None  # type: ignore[assignment]
    operand: Expr = None  # type: ignore[assignment]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass
class Stmt:
    line: int = 0


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class Block(Stmt):
    stmts: list[Union[Stmt, "VarDecl"]] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    els: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class DoWhile(Stmt):
    body: Stmt = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]


@dataclass
class For(Stmt):
    init: Optional[Union[Stmt, "VarDecl"]] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    expr: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ----------------------------------------------------------------------
# Declarations
# ----------------------------------------------------------------------
@dataclass
class VarDecl(Stmt):
    name: str = ""
    ctype: CType = None  # type: ignore[assignment]
    init: Optional[Union[Expr, list]] = None  # list for array initializers
    is_global: bool = False
    is_static: bool = False
    is_const: bool = False


@dataclass
class Param:
    name: str
    ctype: CType
    line: int = 0


@dataclass
class FuncDef:
    name: str
    ret: CType
    params: list[Param]
    body: Optional[Block]  # None for a prototype
    line: int = 0


@dataclass
class TranslationUnit:
    decls: list[Union[FuncDef, VarDecl]] = field(default_factory=list)
