"""PyGen-style parameterized design generation.

The paper parameterizes its hardware designs (the number of CORDIC
PEs, the matrix block size) "using the PyGen [tool] developed by us"
[Ou & Prasanna, FCCM 2005].  This package provides the same facility:
declare a parameter space, validate concrete bindings, and generate
both the sysgen hardware model and the matching mini-C software from
one parameter set.
"""

from repro.pygen.params import Parameter, ParameterError, ParameterSpace
from repro.pygen.generator import DesignGenerator, GeneratedDesign

__all__ = [
    "Parameter",
    "ParameterSpace",
    "ParameterError",
    "DesignGenerator",
    "GeneratedDesign",
]
