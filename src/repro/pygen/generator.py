"""Generator base: parameters in, (hardware model + software source) out."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.cosim.mb_block import MicroBlazeBlock
from repro.pygen.params import ParameterSpace
from repro.sysgen.model import Model


@dataclass
class GeneratedDesign:
    """Output of a design generator for one parameter binding."""

    params: dict[str, Any]
    model: Model
    mb_block: MicroBlazeBlock | None
    c_source: str


class DesignGenerator:
    """Subclass and implement :meth:`generate`."""

    space: ParameterSpace

    def generate(self, **params: Any) -> GeneratedDesign:
        raise NotImplementedError

    def bind(self, **params: Any) -> dict[str, Any]:
        return self.space.bind(**params)

    def sweep(self, **axes) -> list[GeneratedDesign]:
        return [self.generate(**binding) for binding in self.space.sweep(**axes)]
