"""Parameter declarations with validation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable


class ParameterError(ValueError):
    """Invalid parameter binding."""


@dataclass(frozen=True)
class Parameter:
    """One generator parameter.

    ``choices`` restricts to an explicit set; ``validate`` is an extra
    predicate (receives the whole binding dict, so cross-parameter
    constraints like "ITERS divisible by P" are expressible).
    """

    name: str
    default: Any = None
    choices: tuple | None = None
    minimum: int | None = None
    maximum: int | None = None
    doc: str = ""

    def check(self, value: Any) -> None:
        if self.choices is not None and value not in self.choices:
            raise ParameterError(
                f"{self.name}={value!r} not in choices {self.choices}"
            )
        if self.minimum is not None and value < self.minimum:
            raise ParameterError(f"{self.name}={value} below minimum {self.minimum}")
        if self.maximum is not None and value > self.maximum:
            raise ParameterError(f"{self.name}={value} above maximum {self.maximum}")


@dataclass
class ParameterSpace:
    """A named set of parameters plus cross-parameter constraints."""

    parameters: list[Parameter]
    constraints: list[Callable[[dict], str | None]] = field(default_factory=list)

    def names(self) -> list[str]:
        return [p.name for p in self.parameters]

    def bind(self, **values: Any) -> dict[str, Any]:
        """Validate and complete a binding with defaults."""
        binding: dict[str, Any] = {}
        by_name = {p.name: p for p in self.parameters}
        unknown = set(values) - set(by_name)
        if unknown:
            raise ParameterError(f"unknown parameters: {sorted(unknown)}")
        for param in self.parameters:
            if param.name in values:
                value = values[param.name]
            elif param.default is not None:
                value = param.default
            else:
                raise ParameterError(f"parameter {param.name!r} is required")
            param.check(value)
            binding[param.name] = value
        for constraint in self.constraints:
            problem = constraint(binding)
            if problem:
                raise ParameterError(problem)
        return binding

    def sweep(self, **axes: Iterable) -> list[dict[str, Any]]:
        """Cartesian sweep over the given axes (others at defaults),
        skipping combinations that violate constraints."""
        names = list(axes)
        bindings: list[dict[str, Any]] = []

        def rec(i: int, acc: dict) -> None:
            if i == len(names):
                try:
                    bindings.append(self.bind(**acc))
                except ParameterError:
                    pass
                return
            for value in axes[names[i]]:
                rec(i + 1, {**acc, names[i]: value})

        rec(0, {})
        return bindings
