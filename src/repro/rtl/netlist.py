"""Structural netlists over the event kernel.

A :class:`Netlist` owns buses (lists of scalar :class:`Signal`), counts
primitive instances (the basis of the place-and-route "actual" resource
numbers) and provides the RTL construction idioms the lowering pass
needs: ripple adder/subtractor chains built from LUT + MUXCY cells,
register banks, mux trees and comparator chains — the way ISE maps
System Generator blocks onto the Virtex-II fabric.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.rtl.kernel import Kernel, Signal
from repro.rtl import primitives as prim

Bus = list


@dataclass
class NetlistStats:
    luts: int = 0
    ffs: int = 0
    muxcy: int = 0
    mult18: int = 0
    brams: int = 0
    #: slices for behavioral macros (FIFOs, ROMs) not built from cells
    macro_slices: int = 0

    @property
    def slices(self) -> int:
        """Packed slice estimate: 2 LUTs and 2 FFs per slice; carry
        muxes ride along with their LUTs."""
        return max((self.luts + 1) // 2, (self.ffs + 1) // 2) + self.macro_slices


class Net(list):
    """A bus: a list of scalar signals, LSB first."""


@dataclass
class Netlist:
    kernel: Kernel
    name: str = "netlist"
    stats: NetlistStats = field(default_factory=NetlistStats)
    _uid: int = 0

    # ------------------------------------------------------------------
    def _n(self, tag: str) -> str:
        self._uid += 1
        return f"{self.name}.{tag}{self._uid}"

    def bus(self, tag: str, width: int, init: int = 0) -> Net:
        return Net(
            self.kernel.signal(self._n(f"{tag}[{b}]"), 1, (init >> b) & 1)
            for b in range(width)
        )

    def const_bus(self, value: int, width: int) -> Net:
        """Constant nets (tied to VCC/GND, no driver processes)."""
        return Net(
            self.kernel.signal(self._n(f"const[{b}]"), 1, (value >> b) & 1)
            for b in range(width)
        )

    # ------------------------------------------------------------------
    # Cells
    # ------------------------------------------------------------------
    def lut(self, inputs: list[Signal], truth: int, out: Signal | None = None
            ) -> Signal:
        if out is None:
            out = self.kernel.signal(self._n("lut_o"))
        prim.lut(self.kernel, self._n("lut"), inputs, out, truth)
        self.stats.luts += 1
        return out

    def muxcy(self, sel: Signal, d0: Signal, d1: Signal,
              out: Signal | None = None) -> Signal:
        if out is None:
            out = self.kernel.signal(self._n("cy"))
        prim.muxcy(self.kernel, self._n("muxcy"), sel, d0, d1, out)
        self.stats.muxcy += 1
        return out

    def dff(self, clk: Signal, d: Signal, q: Signal | None = None,
            ce: Signal | None = None, rst: Signal | None = None,
            init: int = 0) -> Signal:
        if q is None:
            q = self.kernel.signal(self._n("ff_q"), 1, init)
        prim.dff(self.kernel, self._n("ff"), clk, d, q, ce=ce, rst=rst,
                 init=init)
        self.stats.ffs += 1
        return q

    # ------------------------------------------------------------------
    # RTL idioms
    # ------------------------------------------------------------------
    def invert(self, a: Bus) -> Net:
        return Net(self.lut([bit], 0b01) for bit in a)

    def logic2(self, a: Bus, b: Bus, truth: int) -> Net:
        """Bitwise 2-input function (AND=0b1000, OR=0b1110, XOR=0b0110)."""
        return Net(self.lut([x, y], truth) for x, y in zip(a, b))

    def adder(self, a: Bus, b: Bus, *, sub: Signal | None = None,
              carry_in: Signal | None = None) -> Net:
        """Ripple carry adder: a + b (+cin), or a - b when ``sub`` is a
        (possibly dynamic) subtract control, mapped as the fabric does:
        one propagate LUT + MUXCY per bit, sum via a 3-input LUT."""
        width = len(a)
        assert len(b) == width
        if sub is not None:
            b = Net(self.lut([bit, sub], 0b0110) for bit in b)  # b ^ sub
            carry = sub
        elif carry_in is not None:
            carry = carry_in
        else:
            carry = self.kernel.signal(self._n("gnd"), 1, 0)
        out = Net()
        for x, y in zip(a, b):
            # sum = x ^ y ^ carry (XORCY rides free; count one LUT/bit)
            s = self.lut([x, y, carry], 0b10010110)
            # carry out: MUXCY selects carry when propagate (x^y) else x
            p = self.lut([x, y], 0b0110)
            self.stats.luts -= 1  # p is the same physical LUT as above
            carry = self.muxcy(p, x, carry)
            out.append(s)
        return out

    def register_bus(self, clk: Signal, d: Bus, *, ce: Signal | None = None,
                     rst: Signal | None = None, init: int = 0) -> Net:
        return Net(
            self.dff(clk, bit, ce=ce, rst=rst, init=(init >> i) & 1)
            for i, bit in enumerate(d)
        )

    def mux2(self, sel: Signal, d0: Bus, d1: Bus) -> Net:
        # inputs (bit0=sel, bit1=d0, bit2=d1): out = sel ? d1 : d0
        return Net(
            self.lut([sel, a, b], 0b11100100)
            for a, b in zip(d0, d1)
        )

    def mux_tree(self, sel: Bus, inputs: list[Bus]) -> Net:
        """N-way mux from a tree of 2:1 stages."""
        level = list(inputs)
        for bit in sel:
            nxt = []
            for i in range(0, len(level), 2):
                if i + 1 < len(level):
                    nxt.append(self.mux2(bit, level[i], level[i + 1]))
                else:
                    nxt.append(level[i])
            level = nxt
            if len(level) == 1:
                break
        return level[0]

    def reduce_and(self, bits: Bus) -> Signal:
        level = list(bits)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level), 4):
                grp = level[i : i + 4]
                if len(grp) == 1:
                    nxt.append(grp[0])
                else:
                    nxt.append(self.lut(grp, 1 << ((1 << len(grp)) - 1)))
            level = nxt
        return level[0]

    def equals_const(self, a: Bus, value: int) -> Signal:
        bits = Net(
            self.lut([bit], 0b10 if (value >> i) & 1 else 0b01)
            for i, bit in enumerate(a)
        )
        return self.reduce_and(bits)

    def equals(self, a: Bus, b: Bus) -> Signal:
        xnor = self.logic2(a, b, 0b1001)
        return self.reduce_and(xnor)

    def less_than(self, a: Bus, b: Bus, *, signed: bool) -> Signal:
        """a < b via an LSB→MSB comparator chain (1 LUT/bit)."""
        a = Net(a)
        b = Net(b)
        if signed:
            # invert sign bits: signed order == unsigned order with
            # biased MSBs
            a[-1] = self.lut([a[-1]], 0b01)
            b[-1] = self.lut([b[-1]], 0b01)
        lt = self.kernel.signal(self._n("lt0"), 1, 0)
        for x, y in zip(a, b):
            # lt' = (!x & y) | ((x == y) & lt)
            # inputs (bit0=x, bit1=y, bit2=lt)
            truth = 0
            for x_v in (0, 1):
                for y_v in (0, 1):
                    for l_v in (0, 1):
                        res = (not x_v and y_v) or (x_v == y_v and l_v)
                        if res:
                            truth |= 1 << (x_v | (y_v << 1) | (l_v << 2))
            lt = self.lut([x, y, lt], truth)
        return lt

    # ------------------------------------------------------------------
    def mult18(self, a: Bus, b: Bus, out_width: int) -> Net:
        """One embedded multiplier over vector signals."""
        ka = self.kernel.signal(self._n("mult_a"), len(a))
        kb = self.kernel.signal(self._n("mult_b"), len(b))
        kp = self.kernel.signal(self._n("mult_p"), out_width)
        # pack/unpack adapters between bit nets and the vector ports
        self._pack(a, ka)
        self._pack(b, kb)
        out = self.bus("mult_out", out_width)
        self._unpack(kp, out)
        prim.mult18x18(self.kernel, self._n("mult18"), ka, kb, kp)
        self.stats.mult18 += 1
        return out

    def _pack(self, bits: Bus, vec: Signal) -> None:
        def proc(kern: Kernel) -> None:
            value = 0
            for i, bit in enumerate(bits):
                value |= (bit.value & 1) << i
            kern.schedule(vec, value)

        self.kernel.process(proc, sensitive=bits, name=self._n("pack"))
        self.kernel.initial(proc)

    def _unpack(self, vec: Signal, bits: Bus) -> None:
        def proc(kern: Kernel) -> None:
            value = vec.value
            for i, bit in enumerate(bits):
                kern.schedule(bit, (value >> i) & 1)

        self.kernel.process(proc, sensitive=[vec], name=self._n("unpack"))
        self.kernel.initial(proc)
