"""Complete-system RTL simulation — the paper's ModelSim baseline.

The system couples, inside one event kernel:

* a free-running clock,
* a behavioral processor model: the MB32 core ticks once per rising
  edge, with its LMB instruction/data traffic driven onto address/data
  nets each cycle (a pre-synthesis behavioral model, exactly the
  abstraction level of the paper's "ModelSim (Behavioral)" column),
* the customized peripheral lowered to a LUT/FF/MULT netlist,
* FSL FIFOs as behavioral processes bridging the two.

Per simulated clock cycle this generates hundreds-to-thousands of
events (per-bit nets, delta settling, flip-flop wakeups on both
edges) where the high-level co-simulation performs a handful of Python
arithmetic operations — reproducing the cost gap Tables I and II
quantify.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.asm.linker import Program
from repro.cosim.mb_block import MicroBlazeBlock
from repro.iss.cpu import CPU, CPUConfig, HaltReason
from repro.iss.run import make_cpu
from repro.rtl.kernel import Kernel
from repro.rtl.lowering import LoweredModel, lower_model
from repro.sysgen.model import Model

CLOCK_PERIOD = 10  # kernel time units per clock cycle


@dataclass
class RTLResult:
    """Outcome of a complete-system RTL simulation."""

    exit_code: int | None
    cycles: int
    wall_seconds: float
    simulated_seconds: float
    events: int
    process_runs: int
    halt_reason: HaltReason | None

    @property
    def cycles_per_wall_second(self) -> float:
        return self.cycles / self.wall_seconds if self.wall_seconds > 0 else 0.0


class RTLSystem:
    """Low-level simulation of software + peripheral."""

    def __init__(
        self,
        program: Program,
        model: Model | None = None,
        mb_block: MicroBlazeBlock | None = None,
        cpu_config: CPUConfig | None = None,
    ):
        self.program = program
        self.kernel = Kernel()
        self.clk = self.kernel.add_clock("clk", CLOCK_PERIOD)
        fsl = mb_block.fsl_ports if mb_block is not None else None
        self.cpu: CPU = make_cpu(program, config=cpu_config, fsl=fsl)
        self.lowered: LoweredModel | None = None
        if model is not None:
            self.lowered = lower_model(model, self.kernel, self.clk)
        self._install_cpu_process()

    # ------------------------------------------------------------------
    def _install_cpu_process(self) -> None:
        k = self.kernel
        cpu = self.cpu
        # Behavioral LMB buses: the processor model drives its memory
        # traffic onto nets every cycle like a pre-synthesis RTL model.
        ilmb_addr = k.signal("ilmb_addr", 32)
        ilmb_data = k.signal("ilmb_data", 32)
        dlmb_addr = k.signal("dlmb_addr", 32)
        dlmb_strobe = k.signal("dlmb_strobe", 1)
        clk = self.clk

        def cpu_proc(kern: Kernel) -> None:
            if not kern.is_rising(clk) or cpu.halted:
                return
            loads = cpu.stats.loads
            stores = cpu.stats.stores
            cpu.tick()
            kern.schedule(ilmb_addr, cpu.pc)
            try:
                kern.schedule(ilmb_data, cpu.mem.read_u32(cpu.pc))
            except Exception:
                kern.schedule(ilmb_data, 0)
            if cpu.stats.loads != loads or cpu.stats.stores != stores:
                kern.schedule(dlmb_addr, cpu.regs[3] & 0xFFFFFFFF)
                kern.schedule(dlmb_strobe, dlmb_strobe.value ^ 1)

        k.process(cpu_proc, sensitive=[clk], name="microblaze_behavioral")

    # ------------------------------------------------------------------
    def run(self, max_cycles: int = 5_000_000) -> RTLResult:
        cpu = self.cpu
        kernel = self.kernel
        start = time.perf_counter()
        cycles = 0
        batch = 64  # advance the kernel in small slabs, checking halts
        while not cpu.halted and cycles < max_cycles:
            kernel.run(CLOCK_PERIOD * batch)
            cycles += batch
        wall = time.perf_counter() - start
        if not cpu.halted:
            cpu.halted = True
            cpu.halt_reason = HaltReason.MAX_CYCLES
        return RTLResult(
            exit_code=cpu.exit_code,
            cycles=cpu.cycle,
            wall_seconds=wall,
            simulated_seconds=cpu.simulated_time_s(),
            events=kernel.events_processed,
            process_runs=kernel.process_runs,
            halt_reason=cpu.halt_reason,
        )
