"""Lower a sysgen block diagram to an RTL netlist.

This is the analogue of System Generator's netlisting step ("the
low-level implementation can be generated automatically using System
Generator and EDK"): every arithmetic-level block becomes fabric cells
(LUT/MUXCY/FF), an embedded multiplier or a behavioral macro, wired by
per-bit nets.  The resulting simulation computes the same values as the
arithmetic-level model — verified by differential tests — while paying
per-bit event cost, and its cell counts feed the place-and-route
"actual" resource report (:mod:`repro.resources.par`).

FSL interface blocks lower to behavioral bus-functional bridges bound
to the same :class:`~repro.bus.fsl.FSLChannel` objects the processor
model uses, mirroring how a ModelSim testbench hooks the DUT to the
software side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fixedpoint import Rounding, Overflow
from repro.rtl.kernel import Kernel, Signal
from repro.rtl.netlist import Net, Netlist
from repro.sysgen.blocks import (
    FIFO,
    RAM,
    ROM,
    Accumulator,
    Add,
    AddSub,
    Concat,
    Constant,
    Convert,
    Counter,
    Delay,
    FSLRead,
    FSLWrite,
    GatewayIn,
    GatewayOut,
    Inverter,
    Logical,
    Mult,
    Mux,
    Negate,
    Register,
    Relational,
    Shift,
    Slice,
    Sub,
)
from repro.sysgen.model import Model
from repro.sysgen.ports import OutputPort


class LoweringError(NotImplementedError):
    """A block (or option) has no RTL lowering."""


@dataclass
class LoweredModel:
    """The lowered design plus its host-side access points."""

    netlist: Netlist
    clk: Signal
    port_map: dict[int, Net]  # id(OutputPort) -> bus
    inputs: dict[str, Net] = field(default_factory=dict)  # gateway-in buses
    outputs: dict[str, Net] = field(default_factory=dict)  # gateway-out buses

    def bus_of(self, port: OutputPort) -> Net:
        return self.port_map[id(port)]

    def drive_input(self, kernel: Kernel, name: str, value: int) -> None:
        for i, bit in enumerate(self.inputs[name]):
            kernel.schedule(bit, (value >> i) & 1)

    def read_output(self, name: str) -> int:
        value = 0
        for i, bit in enumerate(self.outputs[name]):
            value |= (bit.value & 1) << i
        return value


_GND_VALUE = 0


class _Lowerer:
    def __init__(self, model: Model, kernel: Kernel, clk: Signal,
                 name: str | None = None):
        self.model = model
        self.kernel = kernel
        self.clk = clk
        self.nl = Netlist(kernel, name or model.name)
        self.port_map: dict[int, Net] = {}
        self.lowered = LoweredModel(self.nl, clk, self.port_map)
        self._gnd = kernel.signal(f"{self.nl.name}.GND", 1, 0)
        self._vcc = kernel.signal(f"{self.nl.name}.VCC", 1, 1)

    # ------------------------------------------------------------------
    def in_bus(self, block, port_name: str, width: int | None = None) -> Net:
        """Bus driving ``block.port_name`` (default value when open),
        fitted to ``width`` (zero-extended / truncated)."""
        port = block.inputs[port_name]
        if port.source is None:
            bus = self.nl.const_bus(port.default, width or 32)
        else:
            bus = self.port_map[id(port.source)]
        if width is None:
            return bus
        return self.fit(bus, width)

    def fit(self, bus: Net, width: int) -> Net:
        if len(bus) == width:
            return bus
        if len(bus) > width:
            return Net(bus[:width])
        return Net(list(bus) + [self._gnd] * (width - len(bus)))

    def out(self, block, port_name: str, bus: Net) -> None:
        self.port_map[id(block.outputs[port_name])] = bus

    # ------------------------------------------------------------------
    def lower(self) -> LoweredModel:
        self.model.compile()
        # Phase 1: sequential block outputs become register nets up
        # front so feedback loops resolve; also gateways and constants.
        for block in self.model.blocks:
            fn = getattr(self, f"_pre_{type(block).__name__}", None)
            if fn is not None:
                fn(block)
            elif getattr(block, "latency", 0) > 0:
                # pipelined arithmetic: its registered output bus must
                # exist before downstream combinational construction
                port_name, width = self._arith_out(block)
                self.out(block, port_name,
                         self.nl.bus(f"{block.name}_{port_name}", width))
        # Phase 2: combinational construction in schedule order, then
        # sequential block internals.
        for block in self.model._schedule or []:
            self._dispatch(block)
        for block in self.model.blocks:
            if block.sequential:
                self._dispatch(block)
        return self.lowered

    def _dispatch(self, block) -> None:
        fn = getattr(self, f"_lower_{type(block).__name__}", None)
        if fn is None:
            raise LoweringError(
                f"no RTL lowering for block type {type(block).__name__}"
            )
        fn(block)

    # ------------------------------------------------------------------
    # Pre-pass: allocate output nets of state-holding blocks
    # ------------------------------------------------------------------
    def _pre_Register(self, b: Register) -> None:
        self.out(b, "q", self.nl.bus(f"{b.name}_q", b.width, init=b.init))

    def _pre_Delay(self, b: Delay) -> None:
        self.out(b, "q", self.nl.bus(f"{b.name}_q", b.width))

    def _pre_Counter(self, b: Counter) -> None:
        self.out(b, "q", self.nl.bus(f"{b.name}_q", b.width))

    def _pre_Accumulator(self, b: Accumulator) -> None:
        self.out(b, "q", self.nl.bus(f"{b.name}_q", b.width))

    def _pre_FIFO(self, b: FIFO) -> None:
        self.out(b, "dout", self.nl.bus(f"{b.name}_dout", b.width))
        self.out(b, "empty", self.nl.bus(f"{b.name}_empty", 1, init=1))
        self.out(b, "full", self.nl.bus(f"{b.name}_full", 1))
        self.out(b, "count", self.nl.bus(f"{b.name}_count",
                                         b.depth.bit_length()))

    def _pre_RAM(self, b: RAM) -> None:
        self.out(b, "dout", self.nl.bus(f"{b.name}_dout", b.width))

    def _pre_FSLRead(self, b: FSLRead) -> None:
        self.out(b, "data", self.nl.bus(f"{b.name}_data", 32))
        self.out(b, "exists", self.nl.bus(f"{b.name}_exists", 1))
        self.out(b, "control", self.nl.bus(f"{b.name}_control", 1))

    def _pre_FSLWrite(self, b: FSLWrite) -> None:
        self.out(b, "full", self.nl.bus(f"{b.name}_full", 1))

    # ------------------------------------------------------------------
    # Combinational blocks
    # ------------------------------------------------------------------
    def _lower_Constant(self, b: Constant) -> None:
        self.out(b, "out", self.nl.const_bus(b.value, b.width))

    def _lower_GatewayIn(self, b: GatewayIn) -> None:
        bus = self.nl.bus(f"{b.name}_in", b.fmt.word_bits)
        self.lowered.inputs[b.name] = bus
        self.out(b, "out", bus)

    def _lower_GatewayOut(self, b: GatewayOut) -> None:
        bus = self.in_bus(b, "in", b.fmt.word_bits)
        self.lowered.outputs[b.name] = bus
        self.out(b, "out", bus)

    @staticmethod
    def _arith_out(block) -> tuple[str, int]:
        """(output port name, width) for a pipelined arithmetic block."""
        if isinstance(block, (Add, AddSub, Shift)):
            return "s", block.width
        if isinstance(block, Sub):
            return "d", block.width
        if isinstance(block, Negate):
            return "n", block.width
        if isinstance(block, Convert):
            return "out", block.out_fmt.word_bits
        if isinstance(block, Mult):
            return "p", block.out_width
        raise LoweringError(
            f"no pipelined lowering for {type(block).__name__}"
        )

    def _finish(self, b, port_name: str, bus: Net) -> None:
        """Install ``bus`` as the block's output, through ``latency``
        pipeline register stages (the last stage lands on the
        pre-allocated output bus)."""
        lat = getattr(b, "latency", 0)
        if lat == 0:
            self.out(b, port_name, bus)
            return
        for _ in range(lat - 1):
            bus = self.nl.register_bus(self.clk, bus)
        q = self.port_map[id(b.outputs[port_name])]
        for i, bit in enumerate(bus):
            self.nl.dff(self.clk, bit, q=q[i])

    def _lower_Add(self, b: Add) -> None:
        s = self.nl.adder(self.in_bus(b, "a", b.width),
                          self.in_bus(b, "b", b.width))
        self._finish(b, "s", s)

    def _lower_Sub(self, b: Sub) -> None:
        d = self.nl.adder(self.in_bus(b, "a", b.width),
                          self.in_bus(b, "b", b.width), sub=self._vcc)
        self._finish(b, "d", d)

    def _lower_AddSub(self, b: AddSub) -> None:
        sub = self.in_bus(b, "sub", 1)[0]
        s = self.nl.adder(self.in_bus(b, "a", b.width),
                          self.in_bus(b, "b", b.width), sub=sub)
        self._finish(b, "s", s)

    def _lower_Negate(self, b: Negate) -> None:
        inv = self.nl.invert(self.in_bus(b, "a", b.width))
        n = self.nl.adder(inv, self.nl.const_bus(0, b.width),
                          carry_in=self._vcc)
        self._finish(b, "n", n)

    def _lower_Shift(self, b: Shift) -> None:
        a = self.in_bus(b, "a", b.width)
        amt = b.amount
        if b.direction == "left":
            bus = Net([self._gnd] * min(amt, b.width) + list(a))[: b.width]
        else:
            fill = a[-1] if b.arithmetic else self._gnd
            bus = Net(list(a[amt:]) + [fill] * min(amt, b.width))[: b.width]
        self._finish(b, "s", Net(bus))

    def _lower_Mult(self, b: Mult) -> None:
        if b.width_a > 18 or b.width_b > 18:
            raise LoweringError("only single-tile (<=18x18) multipliers lower")
        p = self.nl.mult18(self.in_bus(b, "a", b.width_a),
                           self.in_bus(b, "b", b.width_b), b.out_width)
        self._finish(b, "p", p)

    def _lower_Mux(self, b: Mux) -> None:
        sel = self.in_bus(b, "sel", max(1, (b.n - 1).bit_length()))
        inputs = [self.in_bus(b, f"d{i}", b.width) for i in range(b.n)]
        self.out(b, "out", self.nl.mux_tree(sel, inputs))

    def _lower_Relational(self, b: Relational) -> None:
        a = self.in_bus(b, "a", b.width)
        c = self.in_bus(b, "b", b.width)
        op = b.op
        if op in ("eq", "ne"):
            res = self.nl.equals(a, c)
            if op == "ne":
                res = self.nl.lut([res], 0b01)
        elif op in ("lt", "ge"):
            res = self.nl.less_than(a, c, signed=b.signed)
            if op == "ge":
                res = self.nl.lut([res], 0b01)
        else:  # gt / le
            res = self.nl.less_than(c, a, signed=b.signed)
            if op == "le":
                res = self.nl.lut([res], 0b01)
        self.out(b, "out", Net([res]))

    _TRUTH = {"and": 0b1000, "or": 0b1110, "xor": 0b0110}

    def _lower_Logical(self, b: Logical) -> None:
        base = b.op.removeprefix("n") if b.op in ("nand", "nor") else (
            "xor" if b.op == "xnor" else b.op
        )
        acc = self.in_bus(b, "d0", b.width)
        for i in range(1, b.n):
            acc = self.nl.logic2(acc, self.in_bus(b, f"d{i}", b.width),
                                 self._TRUTH[base])
        if b.op in ("nand", "nor", "xnor"):
            acc = self.nl.invert(acc)
        self.out(b, "out", acc)

    def _lower_Inverter(self, b: Inverter) -> None:
        self.out(b, "out", self.nl.invert(self.in_bus(b, "a", b.width)))

    def _lower_Slice(self, b: Slice) -> None:
        a = self.in_bus(b, "a", b.msb + 1)
        self.out(b, "out", Net(a[b.lsb : b.msb + 1]))

    def _lower_Concat(self, b: Concat) -> None:
        parts = []
        for i, width in reversed(list(enumerate(b.widths))):
            parts.extend(self.in_bus(b, f"d{i}", width))
        self.out(b, "out", Net(parts))

    def _lower_Convert(self, b: Convert) -> None:
        if b.rounding is not Rounding.TRUNCATE or b.overflow is not Overflow.WRAP:
            raise LoweringError(
                "only truncate/wrap Convert blocks lower to wiring"
            )
        a = self.in_bus(b, "in")
        shift = b.in_fmt.frac_bits - b.out_fmt.frac_bits
        src = Net(a)
        if shift > 0:
            fill = src[-1] if b.in_fmt.signed else self._gnd
            src = Net(list(src[shift:]) + [fill] * shift)
        elif shift < 0:
            src = Net([self._gnd] * (-shift) + list(src))
        out_w = b.out_fmt.word_bits
        if len(src) >= out_w:
            out = Net(src[:out_w])
        else:
            fill = src[-1] if b.in_fmt.signed else self._gnd
            out = Net(list(src) + [fill] * (out_w - len(src)))
        self._finish(b, "out", out)

    def _lower_ROM(self, b: ROM) -> None:
        addr = self.in_bus(b, "addr", max(1, (len(b.contents) - 1).bit_length()))
        out = self.nl.bus(f"{b.name}_data", b.width)
        contents = b.contents

        def proc(kern: Kernel) -> None:
            a = 0
            for i, bit in enumerate(addr):
                a |= (bit.value & 1) << i
            value = contents[a % len(contents)]
            for i, bit in enumerate(out):
                kern.schedule(bit, (value >> i) & 1)

        self.kernel.process(proc, sensitive=list(addr), name=f"{b.name}_rom")
        self.kernel.initial(proc)
        self.nl.stats.macro_slices += b.resources().slices
        self.out(b, "data", out)

    # ------------------------------------------------------------------
    # Sequential blocks
    # ------------------------------------------------------------------
    def _lower_Register(self, b: Register) -> None:
        d = self.in_bus(b, "d", b.width)
        ce = self._ctl(b, "en")
        rst = self._ctl(b, "rst")
        q = self.port_map[id(b.outputs["q"])]
        for i, bit in enumerate(d):
            self.nl.dff(self.clk, bit, q=q[i], ce=ce, rst=rst,
                        init=(b.init >> i) & 1)

    def _ctl(self, b, name: str) -> Signal | None:
        port = b.inputs[name]
        if port.source is None:
            return None if port.default else self._gnd_ctl(port.default)
        return self.port_map[id(port.source)][0]

    def _gnd_ctl(self, default: int) -> Signal | None:
        # default-0 control: tie to ground only where semantics differ
        return None

    def _lower_Delay(self, b: Delay) -> None:
        d = self.in_bus(b, "d", b.width)
        q = self.port_map[id(b.outputs["q"])]
        for _ in range(b.n - 1):
            d = self.nl.register_bus(self.clk, d)
        for i, bit in enumerate(d):
            self.nl.dff(self.clk, bit, q=q[i])

    def _lower_Counter(self, b: Counter) -> None:
        q = self.port_map[id(b.outputs["q"])]
        step = self.nl.const_bus(b.step & ((1 << b.width) - 1), b.width)
        nxt = self.nl.adder(q, step)
        ce = self._ctl(b, "en")
        rst = self._ctl(b, "rst")
        for i, bit in enumerate(nxt):
            self.nl.dff(self.clk, bit, q=q[i], ce=ce, rst=rst)

    def _lower_Accumulator(self, b: Accumulator) -> None:
        q = self.port_map[id(b.outputs["q"])]
        d = self.in_bus(b, "d", b.width)
        nxt = self.nl.adder(q, d)
        ce = self._ctl(b, "en")
        rst = self._ctl(b, "rst")
        for i, bit in enumerate(nxt):
            self.nl.dff(self.clk, bit, q=q[i], ce=ce, rst=rst)

    def _lower_FIFO(self, b: FIFO) -> None:
        # Behavioral macro (SRL16/BRAM FIFO in fabric terms).
        din = self.in_bus(b, "din", b.width)
        push = self.in_bus(b, "push", 1)[0]
        pop = self.in_bus(b, "pop", 1)[0]
        dout = self.port_map[id(b.outputs["dout"])]
        empty = self.port_map[id(b.outputs["empty"])][0]
        full = self.port_map[id(b.outputs["full"])][0]
        count = self.port_map[id(b.outputs["count"])]
        state: list[int] = []
        clk = self.clk
        depth = b.depth

        def proc(kern: Kernel) -> None:
            if not kern.is_rising(clk):
                return
            if pop.value & 1 and state:
                state.pop(0)
            if push.value & 1 and len(state) < depth:
                value = 0
                for i, bit in enumerate(din):
                    value |= (bit.value & 1) << i
                state.append(value)
            head = state[0] if state else 0
            for i, bit in enumerate(dout):
                kern.schedule(bit, (head >> i) & 1)
            kern.schedule(empty, int(not state))
            kern.schedule(full, int(len(state) >= depth))
            n = len(state)
            for i, bit in enumerate(count):
                kern.schedule(bit, (n >> i) & 1)

        self.kernel.process(proc, sensitive=[clk], name=f"{b.name}_fifo")
        self.nl.stats.macro_slices += b.resources().slices

    def _lower_RAM(self, b: RAM) -> None:
        addr = self.in_bus(b, "addr", max(1, (b.depth - 1).bit_length()))
        din = self.in_bus(b, "din", b.width)
        dout = self.port_map[id(b.outputs["dout"])]
        we = self.in_bus(b, "we", 1)[0]
        mem = [0] * b.depth
        clk = self.clk
        depth = b.depth

        def proc(kern: Kernel) -> None:
            if not kern.is_rising(clk):
                return
            a = 0
            for i, bit in enumerate(addr):
                a |= (bit.value & 1) << i
            a %= depth
            if we.value & 1:
                value = 0
                for i, bit in enumerate(din):
                    value |= (bit.value & 1) << i
                mem[a] = value
            value = mem[a]
            for i, bit in enumerate(dout):
                kern.schedule(bit, (value >> i) & 1)

        self.kernel.process(proc, sensitive=[clk], name=f"{b.name}_ram")
        self.nl.stats.brams += b.resources().brams
        self.nl.stats.macro_slices += b.resources().slices

    # ------------------------------------------------------------------
    # FSL bus-functional bridges (testbench side, no fabric resources)
    # ------------------------------------------------------------------
    def _lower_FSLRead(self, b: FSLRead) -> None:
        channel = b.channel
        if channel is None:
            raise LoweringError(f"FSLRead {b.name!r} has no bound channel")
        read = self.in_bus(b, "read", 1)[0]
        data = self.port_map[id(b.outputs["data"])]
        exists = self.port_map[id(b.outputs["exists"])][0]
        control = self.port_map[id(b.outputs["control"])][0]
        clk = self.clk

        def proc(kern: Kernel) -> None:
            if not kern.is_rising(clk):
                return
            if read.value & 1 and channel.exists:
                channel.pop()
            head = channel.peek()
            if head is None:
                kern.schedule(exists, 0)
                kern.schedule(control, 0)
                for bit in data:
                    kern.schedule(bit, 0)
            else:
                kern.schedule(exists, 1)
                kern.schedule(control, int(head.control))
                for i, bit in enumerate(data):
                    kern.schedule(bit, (head.data >> i) & 1)

        self.kernel.process(proc, sensitive=[clk], name=f"{b.name}_bfm")

    def _lower_FSLWrite(self, b: FSLWrite) -> None:
        channel = b.channel
        if channel is None:
            raise LoweringError(f"FSLWrite {b.name!r} has no bound channel")
        data = self.in_bus(b, "data", 32)
        write = self.in_bus(b, "write", 1)[0]
        control = self.in_bus(b, "control", 1)[0]
        full = self.port_map[id(b.outputs["full"])][0]
        clk = self.clk

        def proc(kern: Kernel) -> None:
            if not kern.is_rising(clk):
                return
            if write.value & 1:
                value = 0
                for i, bit in enumerate(data):
                    value |= (bit.value & 1) << i
                channel.push(value, bool(control.value & 1))
            kern.schedule(full, int(channel.full))

        self.kernel.process(proc, sensitive=[clk], name=f"{b.name}_bfm")


def lower_model(model: Model, kernel: Kernel, clk: Signal,
                name: str | None = None) -> LoweredModel:
    """Lower ``model`` into ``kernel``, clocked by ``clk``."""
    return _Lowerer(model, kernel, clk, name).lower()
