"""FPGA primitive models for the event kernel.

Each factory wires a primitive instance into a :class:`Kernel` as one
or more processes over scalar/vector signals:

* ``lut`` — a k-input lookup table (combinational, delta delay),
* ``dff`` — D flip-flop with clock-enable and synchronous reset,
* ``carry_chain`` is *not* modeled separately: adders lower to one
  LUT (xor) plus a dedicated ``muxcy`` per bit, like the Virtex fabric,
* ``mult18x18`` — the embedded signed multiplier (combinational core;
  System Generator's pipeline registers lower to DFF banks around it),
* ``bram`` — synchronous-read block RAM.

These deliberately generate *per-bit event traffic*: that is what makes
low-level simulation slow, and reproducing that cost is the point of
the baseline.
"""

from __future__ import annotations

from repro.rtl.kernel import Kernel, Signal


def lut(k: Kernel, name: str, inputs: list[Signal], output: Signal,
        truth: int) -> None:
    """k-input LUT: output = truth[{in_{n-1}..in_0}]."""
    if not 1 <= len(inputs) <= 6:
        raise ValueError("LUT supports 1..6 inputs")

    def proc(kern: Kernel) -> None:
        idx = 0
        for bit, sig in enumerate(inputs):
            idx |= (sig.value & 1) << bit
        kern.schedule(output, (truth >> idx) & 1)

    k.process(proc, sensitive=inputs, name=name)
    # establish the initial output value at time 0
    k.initial(proc, name=f"{name}_init")


def muxcy(k: Kernel, name: str, sel: Signal, data0: Signal, data1: Signal,
          output: Signal) -> None:
    """Carry mux: output = sel ? data1 : data0 (the MUXCY cell)."""

    def proc(kern: Kernel) -> None:
        kern.schedule(output, data1.value & 1 if sel.value & 1
                      else data0.value & 1)

    k.process(proc, sensitive=[sel, data0, data1], name=name)
    k.initial(proc, name=f"{name}_init")


def dff(k: Kernel, name: str, clk: Signal, d: Signal, q: Signal,
        ce: Signal | None = None, rst: Signal | None = None,
        init: int = 0) -> None:
    """Rising-edge D flip-flop with optional CE and sync reset."""
    q.value = init & 1

    def proc(kern: Kernel) -> None:
        if not kern.is_rising(clk):
            return
        if rst is not None and rst.value & 1:
            kern.schedule(q, init & 1)
        elif ce is None or ce.value & 1:
            kern.schedule(q, d.value & 1)

    k.process(proc, sensitive=[clk], name=name)


def mult18x18(k: Kernel, name: str, a: Signal, b: Signal, p: Signal) -> None:
    """Embedded 18×18 signed multiplier (combinational)."""

    def signed(v: int, w: int) -> int:
        v &= (1 << w) - 1
        return v - (1 << w) if v & (1 << (w - 1)) else v

    def proc(kern: Kernel) -> None:
        prod = signed(a.value, a.width) * signed(b.value, b.width)
        kern.schedule(p, prod & ((1 << p.width) - 1))

    k.process(proc, sensitive=[a, b], name=name)
    k.initial(proc, name=f"{name}_init")


def bram(k: Kernel, name: str, clk: Signal, addr: Signal, din: Signal,
         dout: Signal, we: Signal, depth: int,
         contents: list[int] | None = None) -> list[int]:
    """Synchronous-read single-port block RAM; returns the live array."""
    mem = list(contents or [])
    mem.extend([0] * (depth - len(mem)))

    def proc(kern: Kernel) -> None:
        if not kern.is_rising(clk):
            return
        a = addr.value % depth
        if we.value & 1:
            mem[a] = din.value
        kern.schedule(dout, mem[a])

    k.process(proc, sensitive=[clk], name=name)
    return mem
