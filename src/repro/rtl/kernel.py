"""Discrete-event simulation kernel with delta cycles.

The execution model follows VHDL/ModelSim semantics:

* signal assignments take effect in the *next* delta cycle (or at a
  future simulation time for timed assignments),
* processes with static sensitivity lists wake when a watched signal
  changes value,
* simulation time only advances once the delta queue drains; a bounded
  delta count guards against zero-delay oscillation.

Values are two-state integers (a ``width``-bit unsigned pattern), the
model fast Verilog simulators use; the co-simulation comparison needs
the event *mechanics*, not 9-value resolution.
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable


class SimulationError(RuntimeError):
    """Kernel-level failure (delta overflow, bad wiring, ...)."""


class Signal:
    """A simulated net.  Read ``value``; write via ``Kernel.schedule``."""

    __slots__ = ("name", "width", "value", "_mask", "_watchers", "index")

    def __init__(self, name: str, width: int = 1, init: int = 0):
        self.name = name
        self.width = width
        self._mask = (1 << width) - 1
        self.value = init & self._mask
        self._watchers: list[Process] = []
        self.index = -1  # assigned by the kernel, used by VCD dumps

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Signal {self.name}={self.value:#x}>"


class Process:
    """A simulation process: ``fn(kernel)`` runs when triggered."""

    __slots__ = ("fn", "name", "runs")

    def __init__(self, fn: Callable[["Kernel"], None], name: str = "proc"):
        self.fn = fn
        self.name = name
        self.runs = 0


class Kernel:
    """The event scheduler."""

    MAX_DELTAS = 1000

    def __init__(self) -> None:
        self.now = 0
        self.signals: list[Signal] = []
        self.processes: list[Process] = []
        self._delta: list[tuple[Signal, int]] = []
        self._timed: list[tuple[int, int, Signal, int]] = []
        self._seq = 0
        self._rising: set[int] = set()
        self._falling: set[int] = set()
        self.events_processed = 0
        self.process_runs = 0
        self._trace_hook: Callable[[int, Signal], None] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def signal(self, name: str, width: int = 1, init: int = 0) -> Signal:
        sig = Signal(name, width, init)
        sig.index = len(self.signals)
        self.signals.append(sig)
        return sig

    def process(
        self,
        fn: Callable[["Kernel"], None],
        sensitive: Iterable[Signal],
        name: str = "proc",
    ) -> Process:
        """Register a process with a static sensitivity list."""
        proc = Process(fn, name)
        self.processes.append(proc)
        for sig in sensitive:
            sig._watchers.append(proc)
        return proc

    def initial(self, fn: Callable[["Kernel"], None], name: str = "init") -> None:
        """Run ``fn`` once before the first delta of time 0."""
        proc = Process(fn, name)
        self.processes.append(proc)
        self._seq += 1
        heapq.heappush(self._timed, (0, self._seq, None, proc))  # type: ignore[arg-type]

    def add_clock(self, name: str = "clk", period: int = 10) -> Signal:
        """Free-running clock toggling every ``period // 2`` time units."""
        if period < 2 or period % 2:
            raise SimulationError("clock period must be an even number >= 2")
        clk = self.signal(name, 1, 0)
        half = period // 2

        def toggler(k: "Kernel") -> None:
            k.schedule(clk, clk.value ^ 1, delay=half)

        proc = Process(toggler, f"{name}_gen")
        self.processes.append(proc)
        clk._watchers.append(proc)  # re-arm on each edge
        self._seq += 1
        heapq.heappush(self._timed, (half, self._seq, clk, 1))
        return clk

    # ------------------------------------------------------------------
    # Scheduling (called from processes)
    # ------------------------------------------------------------------
    def schedule(self, sig: Signal, value: int, delay: int = 0) -> None:
        value &= sig._mask
        if delay == 0:
            self._delta.append((sig, value))
        else:
            self._seq += 1
            heapq.heappush(self._timed, (self.now + delay, self._seq, sig, value))

    # ------------------------------------------------------------------
    # Edge queries (valid while a process runs)
    # ------------------------------------------------------------------
    def is_rising(self, sig: Signal) -> bool:
        return sig.index in self._rising

    def is_falling(self, sig: Signal) -> bool:
        return sig.index in self._falling

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _apply(self, updates: list[tuple[Signal, int]]) -> list[Process]:
        """Apply signal updates; return the processes to wake."""
        self._rising.clear()
        self._falling.clear()
        woken: list[Process] = []
        seen: set[int] = set()
        for sig, value in updates:
            if sig.value == value:
                continue
            self.events_processed += 1
            old = sig.value
            sig.value = value
            if sig.width == 1:
                if value and not old:
                    self._rising.add(sig.index)
                elif old and not value:
                    self._falling.add(sig.index)
            if self._trace_hook is not None:
                self._trace_hook(self.now, sig)
            for proc in sig._watchers:
                pid = id(proc)
                if pid not in seen:
                    seen.add(pid)
                    woken.append(proc)
        return woken

    def _run_processes(self, procs: list[Process]) -> None:
        for proc in procs:
            proc.runs += 1
            self.process_runs += 1
            proc.fn(self)

    def _settle_deltas(self) -> None:
        deltas = 0
        while self._delta:
            deltas += 1
            if deltas > self.MAX_DELTAS:
                raise SimulationError(
                    f"delta overflow at t={self.now} (combinational "
                    "oscillation?)"
                )
            updates, self._delta = self._delta, []
            self._run_processes(self._apply(updates))

    def run(self, duration: int) -> None:
        """Advance simulation time by ``duration`` units."""
        end = self.now + duration
        # Run any initial processes / time-0 activity.
        self._settle_deltas()
        while self._timed and self._timed[0][0] <= end:
            t = self._timed[0][0]
            self.now = t
            updates: list[tuple[Signal, int]] = []
            initials: list[Process] = []
            while self._timed and self._timed[0][0] == t:
                _, _, sig, value = heapq.heappop(self._timed)
                if sig is None:  # an `initial` process
                    initials.append(value)  # type: ignore[arg-type]
                else:
                    updates.append((sig, value))
            if initials:
                self._run_processes(initials)
            self._run_processes(self._apply(updates))
            self._settle_deltas()
        self.now = end
