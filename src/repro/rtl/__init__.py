"""Event-driven RTL simulation — the low-level baseline.

The paper compares its high-level co-simulation against "low-level
behavioral simulation using ModelSim".  This package reproduces that
baseline's *cost structure*: a discrete-event kernel with delta cycles
(:mod:`repro.rtl.kernel`), FPGA primitives (LUTs, flip-flops, carry
cells, MULT18X18, BRAM — :mod:`repro.rtl.primitives`), structural
netlists (:mod:`repro.rtl.netlist`), and a lowering pass that compiles
any :mod:`repro.sysgen` block diagram to such a netlist
(:mod:`repro.rtl.lowering`).

A complete-system RTL simulation (:mod:`repro.rtl.system`) runs the
compiled software on a behavioral processor model while the customized
peripheral is simulated at netlist level, with FSL FIFOs as behavioral
processes — the same split a pre-PAR ModelSim behavioral simulation
uses.  Per simulated clock cycle this does orders of magnitude more
work than the arithmetic-level co-simulation, which is precisely the
gap Tables I and II of the paper measure.
"""

from repro.rtl.kernel import Kernel, Process, Signal, SimulationError
from repro.rtl.netlist import Net, Netlist
from repro.rtl.lowering import lower_model, LoweringError
from repro.rtl.system import RTLSystem, RTLResult
from repro.rtl.vcd import VCDWriter

__all__ = [
    "Kernel",
    "Signal",
    "Process",
    "SimulationError",
    "Netlist",
    "Net",
    "lower_model",
    "LoweringError",
    "RTLSystem",
    "RTLResult",
    "VCDWriter",
]
