"""One engine selector.

Four ways to pick how a sysgen model executes accreted over six PRs:
``model.compile()``, ``model.force_interpreter = True``,
``REPRO_SYSGEN_INTERP=1`` and assorted per-call knobs.  They collapse
into a single ``engine=`` value:

* ``"auto"`` — honor an enclosing :func:`engine_scope`, else the
  deprecated spellings (which now warn once), else compiled.
* ``"compiled"`` — the PR 6 generated-python schedule, always.
* ``"interpreter"`` — the per-block reference interpreter, always.
* ``"batched"`` — the lockstep vector engine; only meaningful for
  whole-simulation construction (``BatchedCoSimulation`` /
  ``--batch``), a scalar run resolving to it is an :class:`EngineError`.

Harness code (sweep workers, campaign trials, the conformance oracle)
threads an engine choice to every simulation it builds with
:func:`engine_scope`, without every design class having to grow an
``engine=`` parameter.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.runapi.deprecation import deprecated_once

ENGINES = ("auto", "compiled", "interpreter", "batched")

#: engines a single scalar Model can actually execute on
SCALAR_ENGINES = ("compiled", "interpreter")


class EngineError(ValueError):
    """Invalid or unusable engine selection."""


#: stack of ambient engine requests pushed by engine_scope()
_scope_stack: list[str] = []


def _validate(engine: str) -> str:
    if engine not in ENGINES:
        raise EngineError(
            f"unknown engine {engine!r}; expected one of {', '.join(ENGINES)}"
        )
    return engine


def current_engine() -> str | None:
    """The innermost :func:`engine_scope` request, or None."""
    return _scope_stack[-1] if _scope_stack else None


@contextmanager
def engine_scope(engine: str) -> Iterator[str]:
    """Make ``engine`` the ambient choice for every simulation built
    inside the ``with`` block whose own request is ``"auto"``."""
    _validate(engine)
    _scope_stack.append(engine)
    try:
        yield engine
    finally:
        _scope_stack.pop()


def resolve_engine(engine: str = "auto", *, model=None) -> str:
    """Resolve an engine request to a concrete scalar engine.

    ``"auto"`` consults, in order: the ambient :func:`engine_scope`,
    then the deprecated ``model.force_interpreter`` flag and the
    ``REPRO_SYSGEN_INTERP`` environment variable (each warns once),
    and finally defaults to ``"compiled"``.  The result is always one
    of :data:`SCALAR_ENGINES`; resolving to ``"batched"`` here raises,
    because a scalar model cannot run vectorized — build a
    ``BatchedCoSimulation`` (or pass ``--batch``) instead.
    """
    _validate(engine)
    if engine == "auto":
        ambient = current_engine()
        # An ambient "batched" request is aimed at whole-simulation
        # construction; the scalar models a batch harness builds
        # internally still resolve as if unscoped.
        if ambient in SCALAR_ENGINES:
            engine = ambient
    if engine == "auto":
        if model is not None and getattr(model, "force_interpreter", False):
            deprecated_once(
                "model.force_interpreter",
                "Model.force_interpreter is deprecated; use "
                "engine='interpreter' (e.g. CoSimulation(engine=...) or "
                "model.set_engine('interpreter')) instead",
            )
            return "interpreter"
        from repro.sysgen.compiled import interpreter_forced

        if interpreter_forced():
            deprecated_once(
                "env.REPRO_SYSGEN_INTERP",
                "REPRO_SYSGEN_INTERP=1 is deprecated; use "
                "engine='interpreter' instead",
            )
            return "interpreter"
        return "compiled"
    if engine == "batched":
        raise EngineError(
            "engine='batched' selects the lockstep vector engine, which "
            "runs whole simulations, not a single scalar model; construct "
            "a repro.cosim.batch.BatchedCoSimulation (or pass --batch to "
            "mb32-dse / mb32-faultsim) instead"
        )
    return engine
