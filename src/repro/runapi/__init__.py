"""The unified run/result/engine API.

Six PRs accreted three result types and four ways to pick an execution
engine; this package is the one surface that ties them together:

* :class:`RunOutcome` — the shared result protocol.  Every terminal
  record the toolkit produces (a co-simulation result, a sweep point,
  a fault-campaign trial) exposes ``status`` / ``error`` / ``cycles``
  and a ``to_dict()`` whose key core is stable across all three (see
  ``tests/golden/run_outcome_contract.json``).
* :class:`RunPolicy` — per-call execution policy for
  :meth:`repro.cosim.environment.CoSimulation.run`: cycle budget
  default, wall-clock budget, fast-forward mode, watchdog window.
* :func:`resolve_engine` / :func:`engine_scope` — the single engine
  selector (``"auto" | "compiled" | "interpreter" | "batched"``) that
  replaces ``model.force_interpreter``, ``REPRO_SYSGEN_INTERP=1`` and
  per-call knobs.  The old spellings keep working as deprecated shims
  that warn exactly once per process (:mod:`repro.runapi.deprecation`).
* :func:`design_fingerprint` / :func:`fingerprint_json` — the
  stability-tested content fingerprints that key the sweep result
  cache and the farm's content-addressed job cache
  (:mod:`repro.runapi.fingerprint`).
* :func:`retry_backoff_delay` — the shared seeded jittered-retry
  backoff policy used by sweep retries and farm worker retries
  (:mod:`repro.runapi.backoff`).
"""

from repro.runapi.backoff import retry_backoff_delay
from repro.runapi.durable import (
    DurableError,
    decode_envelope,
    durable_write,
    encode_envelope,
    read_verified,
    record_intact,
    scavenge_tmp,
    seal_record,
)
from repro.runapi.deprecation import (
    deprecated_once,
    reset_deprecation_registry,
)
from repro.runapi.fingerprint import (
    FINGERPRINT_VERSION,
    canonical_json,
    design_fingerprint,
    fingerprint_json,
)
from repro.runapi.engine import (
    ENGINES,
    EngineError,
    current_engine,
    engine_scope,
    resolve_engine,
)
from repro.runapi.outcome import OUTCOME_CORE_KEYS, RunOutcome
from repro.runapi.policy import RunPolicy

__all__ = [
    "ENGINES",
    "DurableError",
    "EngineError",
    "FINGERPRINT_VERSION",
    "decode_envelope",
    "durable_write",
    "encode_envelope",
    "read_verified",
    "record_intact",
    "scavenge_tmp",
    "seal_record",
    "OUTCOME_CORE_KEYS",
    "RunOutcome",
    "RunPolicy",
    "canonical_json",
    "current_engine",
    "deprecated_once",
    "design_fingerprint",
    "engine_scope",
    "fingerprint_json",
    "reset_deprecation_registry",
    "resolve_engine",
    "retry_backoff_delay",
]
