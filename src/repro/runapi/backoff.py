"""The one seeded jittered-retry backoff policy.

Both retry loops in the toolkit — the sweep engine re-queueing a
``timeout``/``error`` design point and a farm worker re-attempting a
failed job unit — sleep the same schedule:
``base * 2**(attempt-1) * U[0.5, 1.5)`` with the jitter drawn from a
stream keyed by ``(seed, name, attempt)``.  Keying the jitter by
content (not by wall clock or worker identity) keeps the schedule
reproducible across runs, worker counts and hosts, so a retried
point's recorded ``backoff_s`` trail is part of its deterministic
provenance rather than noise.
"""

from __future__ import annotations

import random


def retry_backoff_delay(
    base_s: float, name: str, attempt: int, seed: int = 0
) -> float:
    """Seeded jittered exponential backoff before retry ``attempt``
    (1-based) of the unit ``name``: ``base * 2**(attempt-1) *
    U[0.5, 1.5)`` with the jitter drawn from a stream keyed by
    (seed, name, attempt), so the schedule is reproducible across runs
    and worker counts."""
    if base_s <= 0.0:
        return 0.0
    rng = random.Random(f"mb32-sweep-backoff/{seed}/{name}/{attempt}")
    return base_s * (2 ** (attempt - 1)) * (0.5 + rng.random())
