"""Public, stability-tested content fingerprints.

Two subsystems key persistent state on a deterministic identity of a
design point: the sweep engine's on-disk result cache
(:class:`repro.cosim.sweep.SweepCache`) and the co-simulation farm's
content-addressed job cache (:mod:`repro.farm.cache`).  A silent drift
of the hash recipe would make every cached result unreachable (and,
worse, could alias distinct designs), so the recipe lives here as a
public API with a **pinned-digest regression test**
(``tests/test_fingerprint.py``) that fails if any byte of the digest
stream changes.

* :func:`canonical_json` / :func:`fingerprint_json` — the canonical
  serialized form of a JSON-able payload and its sha256.  This is the
  farm's job key: two submissions with equal (kind, payload) hash
  identically regardless of dict ordering.
* :func:`design_fingerprint` — the identity of a *built* design point
  (program image + entry, CPU configuration, model parameters), moved
  verbatim from the sweep engine's historical ``point_fingerprint`` so
  existing sweep caches stay valid.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

#: bump ONLY with a migration story: every on-disk cache entry keyed on
#: an old version becomes unreachable.
FINGERPRINT_VERSION = 1


def canonical_json(payload: Any) -> str:
    """The one canonical serialized form used in fingerprint streams:
    sorted keys, no whitespace, non-JSON leaves rendered via ``repr``."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=repr
    )


def fingerprint_json(payload: Any) -> str:
    """sha256 hex digest of :func:`canonical_json` of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def design_fingerprint(point, instance) -> str:
    """Deterministic identity of an evaluated design point.

    Hashes the built program image, the CPU configuration and the
    model parameters, so a re-sweep (or a farm re-submission)
    recognizes work it has already done even across processes and
    sessions.

    ``point`` is a :class:`~repro.cosim.partition.DesignPoint` or
    :class:`~repro.cosim.partition.DesignSpec`; ``instance`` is its
    built design.  The recipe is digest-compatible with the historical
    ``repro.cosim.sweep.point_fingerprint`` — the pinned-digest test
    keeps it that way.
    """
    h = hashlib.sha256()
    h.update(getattr(point, "factory", point.name).encode())
    program = getattr(instance, "program", None)
    if program is not None:
        h.update(program.image)
        h.update(str(program.entry).encode())
    cpu_config = getattr(instance, "cpu_config", None)
    h.update(repr(cpu_config).encode())
    h.update(
        json.dumps(point.params, sort_keys=True, default=repr).encode()
    )
    return h.hexdigest()
