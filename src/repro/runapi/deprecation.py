"""Warn-once deprecation shims.

Every deprecated spelling of the unified run API funnels through
:func:`deprecated_once`, which emits a :class:`DeprecationWarning` the
*first* time each distinct spelling is used in a process and stays
silent afterwards — hot loops that still use an old spelling pay one
warning, not one per call.  Tests reset the registry to assert the
exactly-once contract.
"""

from __future__ import annotations

import warnings

#: spellings that have already warned in this process
_warned: set[str] = set()


def deprecated_once(key: str, message: str) -> bool:
    """Emit ``DeprecationWarning(message)`` the first time ``key`` is
    seen; return True when the warning was actually emitted."""
    if key in _warned:
        return False
    _warned.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=3)
    return True


def reset_deprecation_registry() -> None:
    """Forget which spellings have warned (test hook)."""
    _warned.clear()
