"""Crash-safe durable artifacts: one envelope for everything on disk.

Every persistent artifact the toolkit writes — farm cache entries,
sweep caches, checkpoints, journals — used to be *rename-atomic* but
nothing more: the bytes were never fsync'd (a host crash can lose the
rename, or worse, leave the renamed file with torn contents) and the
read side served whatever bytes it found.  A torn cache entry read
back as a byte-identical "cached result" is the worst possible
failure for a content-addressed store whose whole contract is
*verbatim replay*.

This module is the shared fix, three pieces:

* **the envelope** — payload bytes framed by a one-line ASCII header
  ``mb32-durable <version> <length> <sha256hex>\\n``.  Length catches
  truncation, the digest catches torn/bit-flipped contents, the magic
  catches "this is not even ours".  :func:`decode_envelope` classifies
  failures (:data:`REASON_TRUNCATED` / :data:`REASON_CORRUPT` /
  :data:`REASON_BAD_HEADER`) so callers can count what actually
  happened,
* **durable writes** — :func:`durable_write` stages to a
  ``.tmp.<pid>`` sibling, flushes and ``fsync``\\ s the file, renames
  with ``os.replace`` and then fsyncs the parent directory, so the
  entry either exists complete or not at all, even across power loss,
* **verified reads + quarantine** — :func:`read_verified` returns the
  payload or ``None`` (a *miss*, so the caller re-executes instead of
  serving garbage), moving any damaged file into a ``quarantine/``
  sidecar directory for post-mortem rather than deleting the evidence.
  Files that predate the envelope (legacy raw bytes) read back
  verbatim, so existing caches stay valid.

Append-only journals (the sweep resume journal, the farm gateway's
write-ahead log) cannot use a whole-file envelope; they get the same
integrity property per record: :func:`seal_record` embeds a digest of
the record's canonical JSON and :func:`record_intact` verifies it on
replay, so a line torn by a crash mid-append is detected and replay
stops at the last intact prefix (exactly the semantics of a database
WAL tail).

Chaos hook: :func:`set_write_fault` installs a process-wide mutator
applied to the encoded blob of the *next* durable writes — the
deterministic chaos harness (:mod:`repro.farm.chaos`) uses it to
simulate torn and bit-flipped writes without patching any call site.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Any, Callable

#: bump when the envelope layout changes incompatibly
DURABLE_VERSION = 1

MAGIC = b"mb32-durable"

#: read-side failure classification
REASON_TRUNCATED = "truncated"    # fewer payload bytes than the header
REASON_CORRUPT = "corrupt"        # digest mismatch (torn / bit-flipped)
REASON_BAD_HEADER = "bad-header"  # magic present but header unparsable

#: name of the sidecar directory damaged files are moved into
QUARANTINE_DIR = "quarantine"


class DurableError(RuntimeError):
    """A damaged durable artifact; ``reason`` is one of the
    ``REASON_*`` constants."""

    def __init__(self, message: str, reason: str):
        super().__init__(message)
        self.reason = reason


# ----------------------------------------------------------------------
# chaos hook (torn / bit-flipped writes, injected deterministically)
# ----------------------------------------------------------------------
WriteFault = Callable[[str, bytes], bytes]

_write_fault: WriteFault | None = None


def set_write_fault(fault: WriteFault | None) -> None:
    """Install (or clear, with ``None``) a blob mutator applied to
    every subsequent :func:`durable_write` in this process.  The
    mutator receives ``(path, encoded_blob)`` and returns the bytes
    actually written — truncate them for a torn write, flip a bit for
    silent corruption.  Test/chaos infrastructure only."""
    global _write_fault
    _write_fault = fault


# ----------------------------------------------------------------------
# the envelope
# ----------------------------------------------------------------------
def encode_envelope(payload: bytes) -> bytes:
    """Frame ``payload`` with the length+digest header."""
    digest = hashlib.sha256(payload).hexdigest()
    header = b"%s %d %d %s\n" % (
        MAGIC, DURABLE_VERSION, len(payload), digest.encode()
    )
    return header + payload


def is_envelope(blob: bytes) -> bool:
    """``True`` when ``blob`` starts with the envelope magic (a legacy
    raw-bytes artifact does not)."""
    return blob.startswith(MAGIC + b" ")


def decode_envelope(blob: bytes) -> bytes:
    """Verify and strip the envelope; raises :class:`DurableError`
    with a classified ``reason`` on any damage."""
    newline = blob.find(b"\n")
    if newline < 0:
        raise DurableError("envelope header is truncated",
                           REASON_TRUNCATED)
    parts = blob[:newline].split(b" ")
    if len(parts) != 4 or parts[0] != MAGIC:
        raise DurableError("unparsable envelope header",
                           REASON_BAD_HEADER)
    try:
        version = int(parts[1])
        length = int(parts[2])
    except ValueError:
        raise DurableError("non-numeric envelope header fields",
                           REASON_BAD_HEADER)
    if version != DURABLE_VERSION:
        raise DurableError(
            f"unsupported envelope version {version}", REASON_BAD_HEADER
        )
    payload = blob[newline + 1:]
    if len(payload) < length:
        raise DurableError(
            f"payload truncated: {len(payload)} of {length} bytes",
            REASON_TRUNCATED,
        )
    payload = payload[:length]
    if hashlib.sha256(payload).hexdigest().encode() != parts[3]:
        raise DurableError("payload digest mismatch (torn or corrupt)",
                           REASON_CORRUPT)
    return payload


# ----------------------------------------------------------------------
# durable writes
# ----------------------------------------------------------------------
def _fsync_dir(directory: pathlib.Path) -> None:
    """fsync a directory so a rename inside it survives power loss.
    Platforms that cannot open directories (Windows) skip silently —
    the rename is still atomic there."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def durable_write(
    path: str | os.PathLike, payload: bytes, *, fsync: bool = True
) -> None:
    """Write ``payload`` (enveloped) to ``path`` so that after a crash
    the file is either absent, the complete new version, or the
    complete old version — never torn.

    ``fsync=False`` keeps the tmp+replace atomicity but skips the two
    fsyncs for hot paths where process-crash safety is enough.
    """
    target = pathlib.Path(path)
    blob = encode_envelope(payload)
    if _write_fault is not None:
        blob = _write_fault(str(target), blob)
    tmp = target.parent / f"{target.name}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, target)
        if fsync:
            _fsync_dir(target.parent)
    except OSError:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


# ----------------------------------------------------------------------
# verified reads + quarantine
# ----------------------------------------------------------------------
def quarantine_file(
    path: str | os.PathLike, quarantine_dir: str | os.PathLike
) -> pathlib.Path:
    """Move a damaged artifact into ``quarantine_dir`` (created on
    demand) instead of deleting it; returns the new location.  A name
    collision appends a numeric suffix so repeated damage to the same
    entry keeps every specimen."""
    source = pathlib.Path(path)
    qdir = pathlib.Path(quarantine_dir)
    qdir.mkdir(parents=True, exist_ok=True)
    dest = qdir / source.name
    n = 0
    while dest.exists():
        n += 1
        dest = qdir / f"{source.name}.{n}"
    source.replace(dest)
    return dest


def read_verified(
    path: str | os.PathLike,
    *,
    quarantine_dir: str | os.PathLike | None = None,
    on_damage: Callable[[str], None] | None = None,
) -> bytes | None:
    """Read and verify a durable artifact.

    Returns the payload bytes, the raw bytes verbatim for a legacy
    (pre-envelope) file, or ``None`` — missing *or damaged*; a damaged
    file is moved to ``quarantine_dir`` (when given) and reported to
    ``on_damage(reason)``, and the caller treats the ``None`` exactly
    like a miss: re-execute, never serve garbage.
    """
    target = pathlib.Path(path)
    try:
        blob = target.read_bytes()
    except OSError:
        return None

    def damaged(reason: str) -> None:
        if on_damage is not None:
            on_damage(reason)
        if quarantine_dir is not None:
            try:
                quarantine_file(target, quarantine_dir)
            except OSError:
                pass

    if not is_envelope(blob):
        if blob and (MAGIC + b" ").startswith(blob):
            # torn inside the magic itself: unmistakably ours, damaged
            damaged(REASON_TRUNCATED)
            return None
        return blob  # legacy artifact: transparent read
    try:
        return decode_envelope(blob)
    except DurableError as exc:
        damaged(exc.reason)
        return None


def scavenge_tmp(
    directory: str | os.PathLike, *, older_than_s: float = 0.0
) -> int:
    """Remove orphaned ``*.tmp.<pid>`` staging files left behind by
    crashed writers; returns the number removed.

    ``older_than_s`` skips files younger than that age: a startup
    scavenge of a directory other processes may still be writing into
    should only collect stale orphans, while ``clear()``-style callers
    (which drop the live entries too) sweep everything.
    """
    import time

    removed = 0
    cutoff = time.time() - older_than_s
    for orphan in pathlib.Path(directory).glob("*.tmp.*"):
        try:
            if older_than_s > 0.0 and orphan.stat().st_mtime > cutoff:
                continue
            orphan.unlink()
            removed += 1
        except OSError:
            pass
    return removed


# ----------------------------------------------------------------------
# sealed journal records (append-only logs)
# ----------------------------------------------------------------------
def _record_digest(record: dict[str, Any]) -> str:
    body = json.dumps(
        record, sort_keys=True, separators=(",", ":"), default=repr
    )
    return hashlib.sha256(body.encode()).hexdigest()[:16]


def seal_record(record: dict[str, Any]) -> dict[str, Any]:
    """Return a copy of ``record`` carrying a ``"sha"`` digest of its
    canonical JSON, for append-only journal lines."""
    sealed = {k: v for k, v in record.items() if k != "sha"}
    sealed["sha"] = _record_digest({k: v for k, v in sealed.items()})
    return sealed


def record_intact(record: Any) -> bool:
    """Verify a journal record read back from disk.  Records without a
    ``"sha"`` (legacy journals) are accepted; a present-but-wrong
    digest means the line was damaged."""
    if not isinstance(record, dict):
        return False
    if "sha" not in record:
        return True
    body = {k: v for k, v in record.items() if k != "sha"}
    return record["sha"] == _record_digest(body)
