"""The shared result protocol.

Three result types grew up independently:
:class:`~repro.cosim.environment.CoSimResult` (one co-simulation),
:class:`~repro.cosim.dse.DSEResult` (one sweep point) and the fault
campaign's per-trial records.  :class:`RunOutcome` is the common base:
every outcome answers *how did it end* (``status``), *what went wrong*
(``error``, ``None`` when nothing did) and *how long did it simulate*
(``cycles``, ``None`` when the run never got far enough to know), and
serializes through ``to_dict()`` with those three keys always present.

The contract is checked in ``tests/test_run_outcome_schema.py``
against ``tests/golden/run_outcome_contract.json``.
"""

from __future__ import annotations

from typing import Any

#: keys every RunOutcome.to_dict() must carry, with stable meaning
OUTCOME_CORE_KEYS = ("status", "error", "cycles")


class RunOutcome:
    """Base/mixin for every terminal result record.

    Subclasses provide ``status`` (str), ``error`` (str | None) and
    ``cycles`` (int | None) — as plain attributes, dataclass fields or
    properties — and may extend :meth:`extra_dict` with their own
    payload.  ``to_dict()`` composes the stable core with the extras;
    an extra may override a core key only with an equal value (the
    schema test enforces consistency).
    """

    # status / error / cycles are deliberately NOT declared here even
    # as abstract properties: a getter-only property on the base would
    # shadow same-named dataclass *fields* in subclasses (property
    # descriptors block instance attribute assignment).  The contract
    # is enforced structurally by the schema test instead.

    status: str
    error: str | None
    cycles: int | None

    @property
    def ok(self) -> bool:
        """Uniform success test: status says ok and nothing errored."""
        return self.status == "ok" and self.error is None

    def core_dict(self) -> dict[str, Any]:
        return {
            "status": self.status,
            "error": self.error,
            "cycles": self.cycles,
        }

    def extra_dict(self) -> dict[str, Any]:
        """Subclass payload beyond the core keys."""
        return {}

    def to_dict(self) -> dict[str, Any]:
        out = self.core_dict()
        out.update(self.extra_dict())
        return out
