"""Per-call execution policy for ``CoSimulation.run``.

A :class:`RunPolicy` carries everything about *how* one run should
execute that previously travelled as loose keyword arguments and
constructor knobs: the wall-clock budget, the fast-forward mode and
the deadlock watchdog window.  ``None`` fields inherit the
simulation's configured defaults, so ``RunPolicy()`` is always a
no-op override::

    sim.run(until=200_000, policy=RunPolicy(wall_timeout_s=30.0))
    sim.run(policy=RunPolicy(fast_forward=False))   # reference loop

Policies are frozen (hashable, safe to share across calls and lanes).
"""

from __future__ import annotations

from dataclasses import dataclass

#: historical default cycle budget of ``CoSimulation.run``
DEFAULT_UNTIL = 50_000_000


@dataclass(frozen=True)
class RunPolicy:
    """How one ``run()`` call should execute.

    ``max_cycles`` is the cycle budget used when the call gives no
    explicit ``until``; the other fields override the simulation's
    configured defaults for the duration of the call only.
    """

    max_cycles: int | None = None
    wall_timeout_s: float | None = None
    fast_forward: bool | None = None
    verify_fast_forward: bool | None = None
    deadlock_window: int | None = None

    def budget(self, until: int | None) -> int:
        """The effective cycle budget for a run: the explicit
        ``until`` wins, then the policy default, then the historical
        50M-cycle ceiling."""
        if until is not None:
            return until
        if self.max_cycles is not None:
            return self.max_cycles
        return DEFAULT_UNTIL
