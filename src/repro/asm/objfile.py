"""Relocatable object format for the MB32 toolchain.

An :class:`ObjectModule` is the assembler's output: named sections with
raw bytes, section-relative symbols, and fixups to patch once the
linker assigns section base addresses.  It plays the role of the
``.elf`` files in the paper's flow (minus the container format).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.asm.expr import Expr


class FixupKind(enum.Enum):
    #: 32-bit absolute value stored as a data word.
    ABS32 = "abs32"
    #: 16-bit immediate in a type-B instruction (absolute value,
    #: must fit in [-0x8000, 0xFFFF]).
    SIMM16 = "simm16"
    #: ``imm``-prefix pair: patch the ``imm`` word at ``offset`` with
    #: the high half and the instruction at ``offset+4`` with the low
    #: half of a 32-bit value.
    IMM32 = "imm32"
    #: PC-relative 16-bit branch displacement (target − instruction
    #: address), must fit in signed 16 bits.
    PCREL16 = "pcrel16"


@dataclass
class Fixup:
    section: str
    offset: int
    kind: FixupKind
    expr: Expr
    line: int = 0  # source line, for diagnostics


@dataclass
class Symbol:
    name: str
    section: str  # '.text', '.data', '.bss' or '*abs*'
    offset: int
    is_global: bool = False


@dataclass
class SectionData:
    """One section's contents within a module."""

    name: str
    data: bytearray = field(default_factory=bytearray)
    #: for .bss: size only, data stays empty
    bss_size: int = 0
    align: int = 4

    @property
    def size(self) -> int:
        return self.bss_size if self.name == ".bss" else len(self.data)


@dataclass
class ObjectModule:
    """Assembler output for one translation unit."""

    name: str
    sections: dict[str, SectionData] = field(default_factory=dict)
    symbols: dict[str, Symbol] = field(default_factory=dict)
    fixups: list[Fixup] = field(default_factory=list)

    def section(self, name: str) -> SectionData:
        if name not in self.sections:
            self.sections[name] = SectionData(name)
        return self.sections[name]

    def define(self, name: str, section: str, offset: int, *, line: int = 0) -> None:
        if name in self.symbols:
            raise ValueError(f"duplicate symbol {name!r} (line {line})")
        self.symbols[name] = Symbol(name, section, offset)

    def global_symbols(self) -> list[Symbol]:
        return [s for s in self.symbols.values() if s.is_global]
