"""Two-pass MB32 assembler.

Accepts the conventional assembly dialect emitted by the mini-C
compiler (:mod:`repro.mcc`) and hand-written runtime code::

    # comment
        .text
        .global main
    main:
        addik r1, r1, -8        # prologue
        li    r5, table         # pseudo: load address (auto imm-prefix)
        lwi   r3, r5, 0
        rtsd  r15, 8
        nop                     # delay slot
        .data
    table:
        .word 1, 2, 3, 4

Layout is deterministic: a type-B instruction whose immediate operand
references a symbol (or a constant outside the signed-16-bit range)
assembles to an ``imm``-prefix pair (8 bytes); branch targets are
PC-relative 16-bit and never get a prefix.
"""

from __future__ import annotations

import re

from repro.asm.expr import ExprError, eval_expr, expr_symbols, parse_expr
from repro.asm.objfile import Fixup, FixupKind, ObjectModule, SectionData, Symbol
from repro.isa import BY_MNEMONIC, encode
from repro.isa.instructions import FORMAT_B, InstrSpec
from repro.isa.registers import parse_reg

_LABEL_RE = re.compile(r"^\s*([A-Za-z_.$][A-Za-z0-9_.$]*)\s*:")
_COMMENT_RE = re.compile(r"(#|//|;).*$")
_REG_RE = re.compile(r"^r([0-9]|[12][0-9]|3[01])$")
_FSL_RE = re.compile(r"^rfsl([0-9]|1[0-5])$")

#: instruction kinds whose immediate is a PC-relative branch target.
_BRANCH_KINDS = {"br", "bcc"}
#: kinds whose immediate must be an assemble-time constant (the imm
#: field carries discriminator bits that an imm-prefix would clobber).
_CONST_IMM_KINDS = {"bs"}

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", '"': '"', "\\": "\\"}


class AsmError(ValueError):
    """Assembly failure with source line context."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


class Assembler:
    """Assemble one translation unit into an :class:`ObjectModule`."""

    def __init__(self, name: str = "module"):
        self.module = ObjectModule(name)
        self.section: SectionData = self.module.section(".text")
        self.globals: set[str] = set()
        self.equates: dict[str, int] = {}
        self.lineno = 0

    # ------------------------------------------------------------------
    def assemble(self, source: str) -> ObjectModule:
        for self.lineno, raw in enumerate(source.splitlines(), start=1):
            self._line(raw)
        for name in self.globals:
            if name in self.module.symbols:
                self.module.symbols[name].is_global = True
            else:
                raise AsmError(f".global of undefined symbol {name!r}", self.lineno)
        return self.module

    # ------------------------------------------------------------------
    def _err(self, msg: str) -> AsmError:
        return AsmError(msg, self.lineno)

    def _line(self, raw: str) -> None:
        line = _COMMENT_RE.sub("", raw).rstrip()
        while True:
            m = _LABEL_RE.match(line)
            if not m:
                break
            self._define_label(m.group(1))
            line = line[m.end() :]
        line = line.strip()
        if not line:
            return
        parts = line.split(None, 1)
        head = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if head.startswith("."):
            self._directive(head, rest)
        else:
            self._instruction(head, rest)

    def _define_label(self, name: str) -> None:
        try:
            self.module.define(name, self.section.name, self._offset(), line=self.lineno)
        except ValueError as exc:
            raise self._err(str(exc)) from exc

    def _offset(self) -> int:
        return self.section.size

    # ------------------------------------------------------------------
    # Directives
    # ------------------------------------------------------------------
    def _directive(self, name: str, rest: str) -> None:
        if name in (".text", ".data", ".bss"):
            self.section = self.module.section(name)
            return
        if name in (".global", ".globl"):
            for sym in (s.strip() for s in rest.split(",")):
                if sym:
                    self.globals.add(sym)
            return
        if name == ".equ":
            try:
                sym, expr_text = rest.split(",", 1)
            except ValueError:
                raise self._err(".equ needs 'name, expression'") from None
            value = self._const_expr(expr_text)
            sym = sym.strip()
            try:
                self.module.define(sym, "*abs*", value, line=self.lineno)
            except ValueError as exc:
                raise self._err(str(exc)) from exc
            self.equates[sym] = value
            return
        if name == ".align":
            align = self._const_expr(rest)
            if align <= 0 or align & (align - 1):
                raise self._err(f".align must be a power of two, got {align}")
            pad = (-self._offset()) % align
            self._emit_space(pad)
            return
        if name == ".space":
            args = rest.split(",")
            size = self._const_expr(args[0])
            fill = self._const_expr(args[1]) if len(args) > 1 else 0
            if size < 0:
                raise self._err(".space size must be non-negative")
            self._emit_space(size, fill)
            return
        if name in (".word", ".half", ".byte"):
            width = {".word": 4, ".half": 2, ".byte": 1}[name]
            self._require_data("data emission")
            for text in self._split_operands(rest):
                expr = self._parse_operand_expr(text)
                if expr_symbols(expr):
                    if width != 4:
                        raise self._err(
                            f"symbolic values only allowed in .word, not {name}"
                        )
                    self.module.fixups.append(
                        Fixup(self.section.name, self._offset(), FixupKind.ABS32,
                              expr, self.lineno)
                    )
                    self.section.data += b"\x00\x00\x00\x00"
                else:
                    value = eval_expr(expr, self.equates) & ((1 << (8 * width)) - 1)
                    self.section.data += value.to_bytes(width, "big")
            return
        if name in (".ascii", ".asciz"):
            self._require_data("string emission")
            text = self._parse_string(rest)
            self.section.data += text.encode("latin-1")
            if name == ".asciz":
                self.section.data += b"\x00"
            return
        raise self._err(f"unknown directive {name!r}")

    def _require_data(self, what: str) -> None:
        if self.section.name == ".bss":
            raise self._err(f"{what} not allowed in .bss")

    def _emit_space(self, size: int, fill: int = 0) -> None:
        if self.section.name == ".bss":
            if fill:
                raise self._err(".bss fill must be zero")
            self.section.bss_size += size
        else:
            self.section.data += bytes([fill & 0xFF]) * size

    def _parse_string(self, rest: str) -> str:
        rest = rest.strip()
        if len(rest) < 2 or rest[0] != '"' or rest[-1] != '"':
            raise self._err(f"expected quoted string, got {rest!r}")
        body = rest[1:-1]
        out: list[str] = []
        i = 0
        while i < len(body):
            ch = body[i]
            if ch == "\\":
                i += 1
                if i >= len(body):
                    raise self._err("dangling escape in string")
                esc = _ESCAPES.get(body[i])
                if esc is None:
                    raise self._err(f"unknown escape \\{body[i]}")
                out.append(esc)
            else:
                out.append(ch)
            i += 1
        return "".join(out)

    def _const_expr(self, text: str) -> int:
        expr = self._parse_operand_expr(text)
        syms = expr_symbols(expr)
        unknown = syms - set(self.equates)
        if unknown:
            raise self._err(f"expression must be constant; unknown: {sorted(unknown)}")
        return eval_expr(expr, self.equates)

    def _parse_operand_expr(self, text: str):
        try:
            return parse_expr(text)
        except ExprError as exc:
            raise self._err(str(exc)) from exc

    @staticmethod
    def _split_operands(rest: str) -> list[str]:
        return [t.strip() for t in rest.split(",") if t.strip()] if rest.strip() else []

    # ------------------------------------------------------------------
    # Instructions
    # ------------------------------------------------------------------
    def _instruction(self, mnemonic: str, rest: str) -> None:
        if self.section.name != ".text":
            raise self._err("instructions only allowed in .text")
        if self._offset() % 4:
            raise self._err("instruction at unaligned offset")
        operands = self._split_operands(rest)

        # Pseudo-instructions -----------------------------------------
        if mnemonic == "nop":
            if operands:
                raise self._err("nop takes no operands")
            self._emit_word(encode(BY_MNEMONIC["or"], rd=0, ra=0, rb=0))
            return
        if mnemonic in ("li", "la"):
            if len(operands) != 2:
                raise self._err(f"{mnemonic} needs 'rd, expression'")
            self._encode_spec(BY_MNEMONIC["addik"],
                              [operands[0], "r0", operands[1]])
            return

        spec = BY_MNEMONIC.get(mnemonic)
        if spec is None:
            raise self._err(f"unknown mnemonic {mnemonic!r}")
        if len(operands) != len(spec.operands):
            raise self._err(
                f"{mnemonic} expects {len(spec.operands)} operands "
                f"({', '.join(spec.operands)}), got {len(operands)}"
            )
        self._encode_spec(spec, operands)

    def _encode_spec(self, spec: InstrSpec, operands: list[str]) -> None:
        fields: dict[str, int] = {}
        imm_expr = None
        for kind, text in zip(spec.operands, operands):
            if kind in ("rd", "ra", "rb"):
                if not _REG_RE.match(text.strip().lower()):
                    raise self._err(f"expected register for {kind}, got {text!r}")
                fields[kind] = parse_reg(text)
            elif kind == "fsl":
                m = _FSL_RE.match(text.strip().lower())
                if m:
                    fields["fsl"] = int(m.group(1))
                else:
                    fields["fsl"] = self._const_expr(text)
            elif kind == "imm":
                imm_expr = self._parse_operand_expr(text)
            else:  # pragma: no cover - spec sanity
                raise self._err(f"bad operand kind {kind!r} in spec")

        if spec.fmt == FORMAT_B and imm_expr is not None:
            self._encode_type_b(spec, fields, imm_expr)
        else:
            try:
                self._emit_word(encode(spec, **fields))
            except (ValueError, TypeError) as exc:
                raise self._err(str(exc)) from exc

    def _encode_type_b(self, spec: InstrSpec, fields: dict, imm_expr) -> None:
        syms = expr_symbols(imm_expr) - set(self.equates)
        kind = spec.kind

        if kind in _BRANCH_KINDS and syms:
            # PC-relative 16-bit displacement, patched at link time.
            self.module.fixups.append(
                Fixup(self.section.name, self._offset(), FixupKind.PCREL16,
                      imm_expr, self.lineno)
            )
            self._emit_word(encode(spec, imm=0, **fields))
            return

        if kind in _CONST_IMM_KINDS or not syms:
            value = eval_expr(imm_expr, self.equates, location=self._offset())
            if kind in _CONST_IMM_KINDS:
                if not 0 <= value <= 31:
                    raise self._err(f"shift amount {value} out of range 0..31")
                self._emit_word(encode(spec, imm=value, **fields))
                return
            # The imm prefix itself takes a raw (unsigned) 16-bit field.
            hi = 0xFFFF if kind == "imm" else 0x7FFF
            if -0x8000 <= value <= hi:
                self._emit_word(encode(spec, imm=value, **fields))
            else:
                value &= 0xFFFFFFFF
                self._emit_word(encode(BY_MNEMONIC["imm"], imm=(value >> 16) & 0xFFFF))
                self._emit_word(encode(spec, imm=value & 0xFFFF, **fields))
            return

        # Symbolic non-branch immediate: reserve an imm-prefix pair.
        self.module.fixups.append(
            Fixup(self.section.name, self._offset(), FixupKind.IMM32,
                  imm_expr, self.lineno)
        )
        self._emit_word(encode(BY_MNEMONIC["imm"], imm=0))
        self._emit_word(encode(spec, imm=0, **fields))

    def _emit_word(self, word: int) -> None:
        self.section.data += word.to_bytes(4, "big")


def assemble(source: str, name: str = "module") -> ObjectModule:
    """Assemble ``source`` into a relocatable :class:`ObjectModule`."""
    return Assembler(name).assemble(source)
