"""MB32 assembler toolchain.

The paper compiles C programs with ``mb-gcc`` into ``.elf`` binaries
loaded by ``mb-gdb``.  Our equivalent pipeline is::

    mini-C source --repro.mcc--> assembly text
    assembly text --repro.asm--> ObjectModule
    ObjectModule(s) --link()--> Program (memory image + symbols)

The assembler is a classic two-pass design: pass 1 lays out sections
and records symbols and fixups, pass 2 (performed by the linker once
section bases are known) patches instruction words.  Type-B
instructions whose immediate operand references a symbol automatically
get an ``imm``-prefix word reserved (the MicroBlaze way of forming
32-bit immediates); branch targets are PC-relative 16-bit.
"""

from repro.asm.objfile import Fixup, FixupKind, ObjectModule, SectionData, Symbol
from repro.asm.assembler import AsmError, Assembler, assemble
from repro.asm.linker import LinkError, Program, link
from repro.asm.disassembler import disassemble, disassemble_program

__all__ = [
    "Assembler",
    "AsmError",
    "assemble",
    "ObjectModule",
    "SectionData",
    "Symbol",
    "Fixup",
    "FixupKind",
    "link",
    "LinkError",
    "Program",
    "disassemble",
    "disassemble_program",
]
