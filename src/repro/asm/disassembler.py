"""MB32 disassembler (the ``mb-objdump`` analogue).

Used by the debugger for listing code around the PC and by tests to
round-trip the assembler/encoder.
"""

from __future__ import annotations

from repro.isa.decoder import DecodeError, decode


def disassemble(word: int, addr: int | None = None) -> str:
    """Disassemble a single 32-bit instruction word."""
    try:
        instr = decode(word)
    except DecodeError:
        prefix = f"{addr:08x}:  " if addr is not None else ""
        return f"{prefix}.word 0x{word:08x}"
    text = str(instr)
    if addr is not None:
        return f"{addr:08x}:  {text}"
    return text


def disassemble_program(
    image: bytes,
    start: int = 0,
    end: int | None = None,
    symbols: dict[str, int] | None = None,
) -> str:
    """Disassemble ``image[start:end]`` word by word.

    Known symbol addresses are printed as labels, giving output close
    to ``mb-objdump -d``.
    """
    if end is None:
        end = len(image)
    by_addr: dict[int, list[str]] = {}
    if symbols:
        for name, value in symbols.items():
            by_addr.setdefault(value, []).append(name)
    lines: list[str] = []
    for addr in range(start, end, 4):
        for label in sorted(by_addr.get(addr, ())):
            lines.append(f"{label}:")
        word = int.from_bytes(image[addr : addr + 4], "big")
        lines.append("    " + disassemble(word, addr))
    return "\n".join(lines)
