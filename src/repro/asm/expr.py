"""Operand expressions for the assembler.

Grammar (standard precedence, lowest first)::

    expr    := or
    or      := xor ('|' xor)*
    xor     := and ('^' and)*
    and     := shift ('&' shift)*
    shift   := addsub (('<<' | '>>') addsub)*
    addsub  := muldiv (('+' | '-') muldiv)*
    muldiv  := unary (('*' | '/') unary)*
    unary   := ('-' | '~')? primary
    primary := NUMBER | IDENT | '(' expr ')' | '.'

``.`` evaluates to the current location counter.  Expressions are
parsed eagerly into a small AST of tuples and evaluated lazily once the
symbol table is complete (link time).
"""

from __future__ import annotations

import re
from typing import Mapping

Expr = tuple  # ('num', v) | ('sym', name) | ('bin', op, l, r) | ('un', op, e)

_TOKEN_RE = re.compile(
    r"\s*(?:"
    r"(?P<num>0[xX][0-9a-fA-F]+|0[bB][01]+|\d+|'(?:\\.|[^'\\])')"
    r"|(?P<ident>[A-Za-z_.$][A-Za-z0-9_.$]*)"
    r"|(?P<op><<|>>|[-+*/()&|^~])"
    r")"
)

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", "'": "'"}


class ExprError(ValueError):
    """Raised for malformed or unresolvable expressions."""


def tokenize(text: str) -> list[str]:
    tokens: list[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m or m.end() == pos:
            rest = text[pos:].strip()
            if not rest:
                break
            raise ExprError(f"bad token at {rest!r} in expression {text!r}")
        tokens.append(m.group(m.lastgroup))  # type: ignore[arg-type]
        pos = m.end()
    return tokens


def _parse_number(tok: str) -> int:
    if tok.startswith("'"):
        body = tok[1:-1]
        if body.startswith("\\"):
            ch = _ESCAPES.get(body[1])
            if ch is None:
                raise ExprError(f"unknown escape {body!r}")
            return ord(ch)
        return ord(body)
    return int(tok, 0)


class _Parser:
    def __init__(self, tokens: list[str]):
        self.toks = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.toks[self.pos] if self.pos < len(self.toks) else None

    def next(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ExprError("unexpected end of expression")
        self.pos += 1
        return tok

    def parse(self) -> Expr:
        e = self._or()
        if self.peek() is not None:
            raise ExprError(f"trailing tokens: {self.toks[self.pos:]}")
        return e

    def _binop(self, sub, ops) -> Expr:
        left = sub()
        while self.peek() in ops:
            op = self.next()
            left = ("bin", op, left, sub())
        return left

    def _or(self):
        return self._binop(self._xor, ("|",))

    def _xor(self):
        return self._binop(self._and, ("^",))

    def _and(self):
        return self._binop(self._shift, ("&",))

    def _shift(self):
        return self._binop(self._addsub, ("<<", ">>"))

    def _addsub(self):
        return self._binop(self._muldiv, ("+", "-"))

    def _muldiv(self):
        return self._binop(self._unary, ("*", "/"))

    def _unary(self) -> Expr:
        tok = self.peek()
        if tok in ("-", "~"):
            self.next()
            return ("un", tok, self._unary())
        return self._primary()

    def _primary(self) -> Expr:
        tok = self.next()
        if tok == "(":
            e = self._or()
            if self.next() != ")":
                raise ExprError("missing closing parenthesis")
            return e
        if re.fullmatch(r"0[xX][0-9a-fA-F]+|0[bB][01]+|\d+|'(?:\\.|[^'\\])'", tok):
            return ("num", _parse_number(tok))
        if re.fullmatch(r"[A-Za-z_.$][A-Za-z0-9_.$]*", tok):
            return ("sym", tok)
        raise ExprError(f"unexpected token {tok!r}")


def parse_expr(text: str) -> Expr:
    """Parse ``text`` into an expression AST."""
    return _Parser(tokenize(text)).parse()


def expr_symbols(expr: Expr) -> set[str]:
    """All symbol names referenced by ``expr``."""
    kind = expr[0]
    if kind == "num":
        return set()
    if kind == "sym":
        return {expr[1]}
    if kind == "un":
        return expr_symbols(expr[2])
    return expr_symbols(expr[2]) | expr_symbols(expr[3])


def eval_expr(expr: Expr, symbols: Mapping[str, int], location: int = 0) -> int:
    """Evaluate ``expr`` with ``symbols`` (``.`` maps to ``location``)."""
    kind = expr[0]
    if kind == "num":
        return expr[1]
    if kind == "sym":
        name = expr[1]
        if name == ".":
            return location
        if name not in symbols:
            raise ExprError(f"undefined symbol {name!r}")
        return symbols[name]
    if kind == "un":
        v = eval_expr(expr[2], symbols, location)
        return -v if expr[1] == "-" else ~v
    op = expr[1]
    left = eval_expr(expr[2], symbols, location)
    right = eval_expr(expr[3], symbols, location)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            raise ExprError("division by zero in expression")
        return left // right
    if op == "<<":
        return left << right
    if op == ">>":
        return left >> right
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    raise ExprError(f"unknown operator {op!r}")  # pragma: no cover
