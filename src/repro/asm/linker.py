"""Linker: combine object modules into an executable memory image.

Section placement follows the paper's LMB BRAM layout: ``.text`` at
address 0 (the reset vector), ``.data`` directly after (16-byte
aligned), ``.bss`` after that.  The resulting :class:`Program` carries
everything downstream consumers need:

* the memory image to load into BRAM,
* an absolute symbol table (debugger, tests),
* section sizes — used by the resource estimator to compute the number
  of BRAMs occupied by the software program, exactly as Section III-C
  computes it from ``mb-objdump`` output.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.expr import ExprError, eval_expr
from repro.asm.objfile import FixupKind, ObjectModule


class LinkError(ValueError):
    """Raised for unresolved symbols, range errors or layout problems."""


_SECTION_ORDER = (".text", ".data", ".bss")


@dataclass
class Program:
    """A linked, loadable MB32 program."""

    image: bytes
    symbols: dict[str, int]
    entry: int
    text_size: int
    data_size: int
    bss_size: int
    stack_size: int = 4096
    #: total BRAM size the program was linked for (stack at its top);
    #: set by the compiler driver, None for bare assembly programs.
    memory_size: int | None = None

    @property
    def load_size(self) -> int:
        """Bytes that must be initialized in memory."""
        return len(self.image)

    @property
    def footprint(self) -> int:
        """Total memory footprint including .bss (excluding stack)."""
        return len(self.image) + self.bss_size

    @property
    def memory_required(self) -> int:
        """Minimum BRAM size to run: image + bss + stack, word aligned."""
        total = self.footprint + self.stack_size
        return (total + 3) & ~3

    def load_into(self, memory) -> None:
        """Copy the image into a BRAM-like object (``load`` method)."""
        memory.load(0, self.image)

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise LinkError(f"no such symbol: {name!r}") from None


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)


def link(
    modules: list[ObjectModule] | ObjectModule,
    entry_symbol: str = "_start",
    stack_size: int = 4096,
) -> Program:
    """Link ``modules`` into a :class:`Program`.

    Symbols must be unique across modules (local symbols are kept —
    our compiler name-mangles statics, so collisions indicate bugs).
    """
    if isinstance(modules, ObjectModule):
        modules = [modules]
    if not modules:
        raise LinkError("no modules to link")

    # ---- place sections --------------------------------------------
    # Per-module base offset within each output section.
    placement: dict[tuple[str, str], int] = {}
    section_sizes = {name: 0 for name in _SECTION_ORDER}
    for mod in modules:
        for sect_name in _SECTION_ORDER:
            sect = mod.sections.get(sect_name)
            if sect is None:
                continue
            base = _align(section_sizes[sect_name], sect.align)
            placement[(mod.name, sect_name)] = base
            section_sizes[sect_name] = base + sect.size
        for sect_name in mod.sections:
            if sect_name not in _SECTION_ORDER:
                raise LinkError(f"unknown section {sect_name!r} in {mod.name}")

    text_base = 0
    data_base = _align(text_base + section_sizes[".text"], 16)
    bss_base = _align(data_base + section_sizes[".data"], 16)
    section_bases = {".text": text_base, ".data": data_base, ".bss": bss_base}

    # ---- build the symbol table -------------------------------------
    symbols: dict[str, int] = {}
    for mod in modules:
        for sym in mod.symbols.values():
            if sym.name in symbols:
                raise LinkError(
                    f"duplicate symbol {sym.name!r} (module {mod.name})"
                )
            if sym.section == "*abs*":
                symbols[sym.name] = sym.offset
            else:
                base = section_bases[sym.section] + placement.get(
                    (mod.name, sym.section), 0
                )
                symbols[sym.name] = base + sym.offset

    # ---- assemble the image ------------------------------------------
    image = bytearray(bss_base)  # text + padding + data
    for mod in modules:
        for sect_name in (".text", ".data"):
            sect = mod.sections.get(sect_name)
            if sect is None or not sect.data:
                continue
            start = section_bases[sect_name] + placement[(mod.name, sect_name)]
            image[start : start + len(sect.data)] = sect.data

    # ---- apply fixups --------------------------------------------------
    for mod in modules:
        for fix in mod.fixups:
            addr = section_bases[fix.section] + placement[
                (mod.name, fix.section)
            ] + fix.offset
            try:
                value = eval_expr(fix.expr, symbols, location=addr)
            except ExprError as exc:
                raise LinkError(
                    f"{mod.name}:{fix.line}: {exc}"
                ) from exc
            if fix.kind is FixupKind.ABS32:
                image[addr : addr + 4] = (value & 0xFFFFFFFF).to_bytes(4, "big")
            elif fix.kind is FixupKind.SIMM16:
                _patch_imm16(image, addr, value, mod.name, fix.line)
            elif fix.kind is FixupKind.PCREL16:
                disp = value - addr
                if not -0x8000 <= disp <= 0x7FFF:
                    raise LinkError(
                        f"{mod.name}:{fix.line}: branch displacement {disp} "
                        "out of 16-bit range"
                    )
                _patch_imm16(image, addr, disp, mod.name, fix.line)
            elif fix.kind is FixupKind.IMM32:
                value &= 0xFFFFFFFF
                _patch_imm16(image, addr, (value >> 16) & 0xFFFF, mod.name, fix.line)
                _patch_imm16(image, addr + 4, value & 0xFFFF, mod.name, fix.line)
            else:  # pragma: no cover
                raise LinkError(f"unknown fixup kind {fix.kind}")

    if entry_symbol not in symbols:
        raise LinkError(f"entry symbol {entry_symbol!r} undefined")

    return Program(
        image=bytes(image),
        symbols=symbols,
        entry=symbols[entry_symbol],
        text_size=section_sizes[".text"],
        data_size=section_sizes[".data"],
        bss_size=section_sizes[".bss"],
        stack_size=stack_size,
    )


def _patch_imm16(image: bytearray, addr: int, value: int, mod: str, line: int) -> None:
    if not -0x8000 <= value <= 0xFFFF:
        raise LinkError(f"{mod}:{line}: immediate {value} does not fit in 16 bits")
    word = int.from_bytes(image[addr : addr + 4], "big")
    word = (word & 0xFFFF0000) | (value & 0xFFFF)
    image[addr : addr + 4] = word.to_bytes(4, "big")
