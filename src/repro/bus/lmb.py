"""Local Memory Bus (LMB) controller model.

The MicroBlaze cycle-accurate simulator requires the processor and the
two LMB interface controllers (instruction side and data side) to run
at the same frequency, guaranteeing a fixed one-cycle access latency to
the BRAM-stored instructions and data (paper, Section III-A).  The
controller model therefore only contributes a constant latency and
bookkeeping — the interesting state lives in the BRAM model
(:class:`repro.iss.memory.BRAM`).
"""

from __future__ import annotations


class LMBController:
    """One LMB interface controller (ILMB or DLMB).

    Parameters
    ----------
    memory:
        The backing memory object (must expose ``read_u8/16/32`` and
        ``write_u8/16/32``).
    latency:
        Access latency in cycles; fixed at 1 in the paper's
        configuration.
    """

    def __init__(self, memory, latency: int = 1, name: str = "lmb"):
        if latency < 1:
            raise ValueError("LMB latency must be >= 1 cycle")
        self.memory = memory
        self.latency = latency
        self.name = name
        self.reads = 0
        self.writes = 0

    def read_u8(self, addr: int) -> int:
        self.reads += 1
        return self.memory.read_u8(addr)

    def read_u16(self, addr: int) -> int:
        self.reads += 1
        return self.memory.read_u16(addr)

    def read_u32(self, addr: int) -> int:
        self.reads += 1
        return self.memory.read_u32(addr)

    def write_u8(self, addr: int, value: int) -> None:
        self.writes += 1
        self.memory.write_u8(addr, value)

    def write_u16(self, addr: int, value: int) -> None:
        self.writes += 1
        self.memory.write_u16(addr, value)

    def write_u32(self, addr: int, value: int) -> None:
        self.writes += 1
        self.memory.write_u32(addr, value)

    @property
    def transactions(self) -> int:
        return self.reads + self.writes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LMBController({self.name!r}, latency={self.latency})"
