"""On-chip Peripheral Bus (OPB) model.

The paper's environment supports "various bus protocols, such as the
IBM on-chip peripheral bus (OPB) and the Xilinx fast simplex link".
This module models the OPB at the arithmetic level: an address-decoded
single-master transaction bus with a fixed per-transaction latency
(OPB reads/writes on MicroBlaze take several cycles; we use 3, the
documented minimum for an OPB data-side access).

Slaves register an address range and service word reads/writes.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Protocol


class OPBSlave(Protocol):
    """Interface every OPB slave implements."""

    def opb_read(self, offset: int) -> int:
        """Read the 32-bit word at byte ``offset`` within the slave."""
        ...

    def opb_write(self, offset: int, value: int) -> None:
        """Write the 32-bit word at byte ``offset`` within the slave."""
        ...


@dataclass
class _Mapping:
    base: int
    size: int
    slave: OPBSlave


class OPBBusError(RuntimeError):
    """Raised on accesses that decode to no slave."""


class OPBBus:
    """Single-master OPB with address decoding and latency accounting."""

    READ_LATENCY = 3
    WRITE_LATENCY = 3

    def __init__(self) -> None:
        self._mappings: list[_Mapping] = []
        self.reads = 0
        self.writes = 0

    def attach(self, base: int, size: int, slave: OPBSlave) -> None:
        """Map ``slave`` at ``[base, base+size)``.  Ranges must be
        word-aligned and non-overlapping."""
        if base % 4 or size % 4 or size <= 0:
            raise ValueError("OPB mappings must be word-aligned and non-empty")
        for m in self._mappings:
            if base < m.base + m.size and m.base < base + size:
                raise ValueError(
                    f"OPB mapping [{base:#x},{base + size:#x}) overlaps "
                    f"[{m.base:#x},{m.base + m.size:#x})"
                )
        self._mappings.append(_Mapping(base, size, slave))

    def _decode(self, addr: int) -> _Mapping:
        for m in self._mappings:
            if m.base <= addr < m.base + m.size:
                return m
        raise OPBBusError(f"no OPB slave at address {addr:#010x}")

    def read_u32(self, addr: int) -> tuple[int, int]:
        """Word read.  Returns ``(value, latency_cycles)``."""
        m = self._decode(addr)
        self.reads += 1
        return m.slave.opb_read(addr - m.base) & 0xFFFFFFFF, self.READ_LATENCY

    def write_u32(self, addr: int, value: int) -> int:
        """Word write.  Returns latency in cycles."""
        m = self._decode(addr)
        self.writes += 1
        m.slave.opb_write(addr - m.base, value & 0xFFFFFFFF)
        return self.WRITE_LATENCY


@dataclass
class OPBRegisterSlave:
    """A simple bank of 32-bit registers, handy for tests and MMIO
    peripherals attached over OPB."""

    num_regs: int = 8
    regs: list[int] = dc_field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.regs:
            self.regs = [0] * self.num_regs

    def opb_read(self, offset: int) -> int:
        return self.regs[offset // 4]

    def opb_write(self, offset: int, value: int) -> None:
        self.regs[offset // 4] = value & 0xFFFFFFFF
