"""Fast Simplex Link (FSL) channel model.

An FSL is a unidirectional FIFO carrying 32-bit data words plus one
*control* bit per word (Section III-B of the paper).  MicroBlaze
supports up to 16 FSLs — eight inputs and eight outputs.  Both blocking
and non-blocking access are supported: a blocking read/write stalls the
processor until it can complete; a non-blocking access never stalls and
reports failure through the carry flag.

The channel exposes both endpoints:

* the *master* side pushes words (``push``) — the processor for
  processor→peripheral channels, the peripheral for the reverse,
* the *slave* side pops words (``pop``) and can ``peek`` the head.

Handshake flags match the paper's signal names: ``exists`` (data
available at the slave side, the paper's ``Out#_exists``) and ``full``
(FIFO cannot accept more data, the paper's ``In#_full``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque

from repro.telemetry.events import FSL_POP, FSL_PUSH, TelemetryEvent


@dataclass(frozen=True)
class FSLWord:
    """One FIFO entry: a 32-bit data word plus the control bit."""

    data: int
    control: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.data <= 0xFFFFFFFF:
            raise ValueError(f"FSL data must be a 32-bit word, got {self.data:#x}")


class FSLChannel:
    """A single unidirectional FSL FIFO.

    Parameters
    ----------
    depth:
        FIFO depth in words.  Xilinx's default FSL depth is 16.
    name:
        Optional label used in traces and error messages.
    """

    DEFAULT_DEPTH = 16

    def __init__(self, depth: int = DEFAULT_DEPTH, name: str = "fsl"):
        if depth < 1:
            raise ValueError("FSL depth must be >= 1")
        self.depth = depth
        self.name = name
        self._fifo: Deque[FSLWord] = deque()
        #: optional :class:`~repro.telemetry.events.EventBus`; when set,
        #: successful pushes/pops emit events timestamped via ``clock``
        self.events = None
        #: zero-arg callable giving the current simulation cycle for
        #: telemetry timestamps (set together with ``events``)
        self.clock = None
        # --- statistics -------------------------------------------------
        self.total_pushed = 0
        self.total_popped = 0
        self.push_rejects = 0  # attempts while full
        self.pop_rejects = 0  # attempts while empty
        self.max_occupancy = 0

    # ------------------------------------------------------------------
    # Status flags (the paper's handshake signals)
    # ------------------------------------------------------------------
    @property
    def exists(self) -> bool:
        """True when data is available (``Out#_exists`` high)."""
        return bool(self._fifo)

    @property
    def full(self) -> bool:
        """True when the FIFO cannot accept more data (``In#_full``)."""
        return len(self._fifo) >= self.depth

    @property
    def occupancy(self) -> int:
        return len(self._fifo)

    # ------------------------------------------------------------------
    # Master (writer) side
    # ------------------------------------------------------------------
    def can_push(self) -> bool:
        return not self.full

    def push(self, data: int, control: bool = False) -> bool:
        """Try to append a word.  Returns False (and counts a reject)
        when the FIFO is full — the caller decides whether to stall
        (blocking mode) or continue (non-blocking mode)."""
        if self.full:
            self.push_rejects += 1
            return False
        self._fifo.append(FSLWord(data & 0xFFFFFFFF, bool(control)))
        self.total_pushed += 1
        if len(self._fifo) > self.max_occupancy:
            self.max_occupancy = len(self._fifo)
        if self.events is not None:
            self.events.emit(TelemetryEvent(
                FSL_PUSH, self.clock() if self.clock is not None else 0,
                self.name, data & 0xFFFFFFFF, len(self._fifo),
                "ctrl" if control else "",
            ))
        return True

    # ------------------------------------------------------------------
    # Slave (reader) side
    # ------------------------------------------------------------------
    def can_pop(self) -> bool:
        return bool(self._fifo)

    def peek(self) -> FSLWord | None:
        """Head of the FIFO without consuming it (combinational read
        of the data/control/exists signals)."""
        return self._fifo[0] if self._fifo else None

    def pop(self) -> FSLWord | None:
        """Consume and return the head word, or None when empty."""
        if not self._fifo:
            self.pop_rejects += 1
            return None
        self.total_popped += 1
        word = self._fifo.popleft()
        if self.events is not None:
            self.events.emit(TelemetryEvent(
                FSL_POP, self.clock() if self.clock is not None else 0,
                self.name, word.data, len(self._fifo),
                "ctrl" if word.control else "",
            ))
        return word

    # ------------------------------------------------------------------
    def reset(self, reset_stats: bool = True) -> None:
        """Drop all queued words and, unless ``reset_stats=False``,
        clear the accumulated statistics too — a re-run after
        :meth:`reset` must not report the previous run's FIFO traffic.
        Pass ``reset_stats=False`` to keep counters accumulating across
        runs (e.g. multi-run profiling)."""
        self._fifo.clear()
        if reset_stats:
            self.total_pushed = 0
            self.total_popped = 0
            self.push_rejects = 0
            self.pop_rejects = 0
            self.max_occupancy = 0

    def state_dict(self) -> dict:
        """Queued words plus statistics, JSON-safe (checkpointing)."""
        return {
            "fifo": [[w.data, int(w.control)] for w in self._fifo],
            "total_pushed": self.total_pushed,
            "total_popped": self.total_popped,
            "push_rejects": self.push_rejects,
            "pop_rejects": self.pop_rejects,
            "max_occupancy": self.max_occupancy,
        }

    def load_state(self, state: dict) -> None:
        self._fifo.clear()
        self._fifo.extend(FSLWord(data, bool(control))
                          for data, control in state["fifo"])
        self.total_pushed = state["total_pushed"]
        self.total_popped = state["total_popped"]
        self.push_rejects = state["push_rejects"]
        self.pop_rejects = state["pop_rejects"]
        self.max_occupancy = state["max_occupancy"]

    def __len__(self) -> int:
        return len(self._fifo)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FSLChannel({self.name!r}, depth={self.depth}, "
            f"occupancy={len(self._fifo)})"
        )
