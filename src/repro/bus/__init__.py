"""Communication-interface models.

The paper's co-simulation environment contains "cycle-accurate
arithmetic-level bus models for simulating the communication
interface".  This package provides:

* :mod:`repro.bus.fsl` — Fast Simplex Link unidirectional FIFO
  channels with blocking/non-blocking semantics and the
  ``exists``/``full`` handshake flags described in Section III-B,
* :mod:`repro.bus.lmb` — Local Memory Bus controllers with the fixed
  one-cycle BRAM access latency the MicroBlaze cycle-accurate
  simulator requires,
* :mod:`repro.bus.opb` — an On-chip Peripheral Bus model with
  address-mapped slaves and a fixed transaction latency.
"""

from repro.bus.fsl import FSLChannel, FSLWord
from repro.bus.lmb import LMBController
from repro.bus.opb import OPBBus, OPBSlave, OPBRegisterSlave

__all__ = [
    "FSLChannel",
    "FSLWord",
    "LMBController",
    "OPBBus",
    "OPBSlave",
    "OPBRegisterSlave",
]
