"""mini-C sources for the CORDIC division application.

Two variants, both generated from the same dataset so results are
directly comparable:

* :func:`cordic_sw_source` — the pure-software implementation (the
  paper's ``P = 0`` baseline in Figure 5),
* :func:`cordic_hw_source` — the FSL-driver program for the P-PE
  pipeline: per pass it sends the control word ``C0`` and streams each
  datum as three words (``X >> s0``, ``Y``, ``Z``), reading back
  ``(Y, Z)``; data is processed set by set so a set's results never
  overflow the output FSL FIFO (paper, Section IV-A).
"""

from __future__ import annotations

from repro.apps.cordic.algorithm import generate_dataset


def _format_array(name: str, values: list[int]) -> str:
    body = ",\n    ".join(
        ", ".join(str(v) for v in values[i : i + 8])
        for i in range(0, len(values), 8)
    )
    return f"int {name}[{len(values)}] = {{\n    {body}\n}};"


def _dataset_decls(ndata: int, frac: int, seed: int) -> str:
    pairs = generate_dataset(ndata, frac, seed)
    xa = [a for a, _ in pairs]
    yb = [b for _, b in pairs]
    return "\n".join(
        [
            _format_array("Xa", xa),
            _format_array("Yb", yb),
            f"int Yv[{ndata}];",
            f"int Zv[{ndata}];",
        ]
    )


def cordic_sw_source(
    iters: int = 24,
    ndata: int = 32,
    frac: int = 16,
    seed: int = 2005,
) -> str:
    """Pure-software CORDIC division over the whole dataset."""
    return f"""\
/* CORDIC division, pure software (P = 0).  Generated. */
{_dataset_decls(ndata, frac, seed)}

int main(void) {{
    int *xp = Xa;
    int *bp = Yb;
    int *yp = Yv;
    int *zp = Zv;
    for (int i = 0; i < {ndata}; i++) {{
        int xc = *xp;
        int y = *bp;
        int z = 0;
        int c = {1 << frac};
        for (int j = 0; j < {iters}; j++) {{
            if (y < 0) {{ y += xc; z -= c; }}
            else       {{ y -= xc; z += c; }}
            xc >>= 1;
            c = (int)((unsigned)c >> 1);
        }}
        *yp = y;
        *zp = z;
        xp++;
        bp++;
        yp++;
        zp++;
    }}
    return 0;
}}
"""


def cordic_hw_source(
    p: int = 4,
    iters: int = 24,
    ndata: int = 32,
    frac: int = 16,
    fifo_depth: int = 16,
    seed: int = 2005,
) -> str:
    """FSL driver for the P-PE CORDIC pipeline.

    The set-transfer loops are unrolled by the set size: the set size
    is a *structural* constant fixed by the FSL FIFO depth (unlike the
    adaptive iteration count, which is a run-time quantity and must
    stay a loop), so unrolling is the natural driver-code style — the
    Xilinx FSL macros expand to straight-line ``put``/``get``
    instructions the same way.
    """
    passes = -(-iters // p)  # ceil: the pipeline always runs P steps/pass
    set_size = max(1, fifo_depth // 2)  # 2 result words per datum
    while ndata % set_size:
        set_size -= 1  # largest divisor of ndata that fits the FIFO

    put_body = "\n".join(
        f"""            putfsl(*xp >> s0, 0);           /* XC0 = X * C0 */
            xp++;
            putfsl(*yp, 0);
            yp++;
            putfsl(*zp, 0);
            zp++;"""
        for _ in range(set_size)
    )
    get_body = "\n".join(
        """            *yq = getfsl(0);
            yq++;
            *zq = getfsl(0);
            zq++;"""
        for _ in range(set_size)
    )
    return f"""\
/* CORDIC division driver for the {p}-PE pipeline ({passes} passes of
 * {p} iterations = {passes * p} effective iterations; data moves in
 * sets of {set_size} so results never overflow the output FSL FIFO).
 * Generated. */
{_dataset_decls(ndata, frac, seed)}

int main(void) {{
    int s0 = 0;
    for (int i = 0; i < {ndata}; i++) {{
        Yv[i] = Yb[i];
        Zv[i] = 0;
    }}
    for (int pass = 0; pass < {passes}; pass++) {{
        int *xp = Xa;
        int *yp = Yv;
        int *zp = Zv;
        int *yq = Yv;
        int *zq = Zv;
        cputfsl({1 << frac} >> s0, 0);          /* control word: C0 */
        for (int base = 0; base < {ndata}; base += {set_size}) {{
{put_body}
{get_body}
        }}
        s0 += {p};
    }}
    return 0;
}}
"""
