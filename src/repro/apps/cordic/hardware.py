"""CORDIC division pipeline as a sysgen block diagram (paper Fig. 4).

Structure::

    FSLRead ──► input sequencer ──► PE_0 ─► PE_1 ─► … ─► PE_{P-1} ──► output
    (from CPU)  (3 words/datum +                                     sequencer
                 C0 control word)                                     ──► FSLWrite
                                                                         (to CPU)

Each datum travels as three FSL words (``XC0 = X >> S0``, ``Y``, ``Z``);
the control word carries ``C0 = 2^-S0`` (paper: "C_0 is sent out from
the MicroBlaze processor to the FSL as a control word").  A PE performs
one CORDIC iteration — two AddSub units plus free shift-by-one wiring —
and passes ``XC``, ``C`` halved to its successor.  Results return as
two words (``Y``, ``Z``) per datum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cosim.mb_block import MicroBlazeBlock
from repro.pygen.generator import DesignGenerator, GeneratedDesign
from repro.pygen.params import Parameter, ParameterSpace
from repro.sysgen.blocks import (
    AddSub,
    Constant,
    Counter,
    Inverter,
    Logical,
    Mux,
    Register,
    Relational,
    Shift,
    Slice,
)
from repro.sysgen.model import Model

WIDTH = 32


@dataclass
class _Stage:
    """Signals leaving one pipeline stage (all PortRefs)."""

    xc: object
    y: object
    z: object
    c: object
    v: object


def _build_input_sequencer(model: Model, rd) -> _Stage:
    """Collect 3 FSL words into one pipeline injection; latch C0 from
    control words."""
    notctrl = model.add(Inverter("in_notctrl", width=1))
    model.connect(rd.o("control"), notctrl.i("a"))
    data_consume = model.add(Logical("in_dconsume", width=1, op="and"))
    model.connect(rd.o("exists"), data_consume.i("d0"))
    model.connect(notctrl.o("out"), data_consume.i("d1"))
    ctrl_consume = model.add(Logical("in_cconsume", width=1, op="and"))
    model.connect(rd.o("exists"), ctrl_consume.i("d0"))
    model.connect(rd.o("control"), ctrl_consume.i("d1"))
    # Consume every word as soon as it exists.
    model.connect(rd.o("exists"), rd.i("read"))

    c0 = model.add(Register("in_c0", width=WIDTH))
    model.connect(rd.o("data"), c0.i("d"))
    model.connect(ctrl_consume.o("out"), c0.i("en"))

    cnt = model.add(Counter("in_cnt", width=2))
    model.connect(data_consume.o("out"), cnt.i("en"))
    two = model.add(Constant("in_two", 2, width=2))
    at2 = model.add(Relational("in_at2", width=2, op="eq", signed=False))
    model.connect(cnt.o("q"), at2.i("a"))
    model.connect(two.o("out"), at2.i("b"))
    wraprst = model.add(Logical("in_wrap", width=1, op="and"))
    model.connect(data_consume.o("out"), wraprst.i("d0"))
    model.connect(at2.o("out"), wraprst.i("d1"))
    model.connect(wraprst.o("out"), cnt.i("rst"))

    def word_enable(idx: int):
        const = model.add(Constant(f"in_k{idx}", idx, width=2))
        eq = model.add(Relational(f"in_eq{idx}", width=2, op="eq", signed=False))
        model.connect(cnt.o("q"), eq.i("a"))
        model.connect(const.o("out"), eq.i("b"))
        en = model.add(Logical(f"in_en{idx}", width=1, op="and"))
        model.connect(data_consume.o("out"), en.i("d0"))
        model.connect(eq.o("out"), en.i("d1"))
        return en

    en0 = word_enable(0)
    en1 = word_enable(1)
    inject = word_enable(2)

    xch = model.add(Register("in_xc", width=WIDTH))
    model.connect(rd.o("data"), xch.i("d"))
    model.connect(en0.o("out"), xch.i("en"))
    yh = model.add(Register("in_y", width=WIDTH))
    model.connect(rd.o("data"), yh.i("d"))
    model.connect(en1.o("out"), yh.i("en"))

    return _Stage(
        xc=xch.o("q"),
        y=yh.o("q"),
        z=rd.o("data"),  # third word feeds the pipeline directly
        c=c0.o("q"),
        v=inject.o("out"),
    )


def _build_pe(model: Model, idx: int, stage: _Stage) -> _Stage:
    """One CORDIC processing element + its pipeline registers."""
    p = f"pe{idx}"
    sign = model.add(Slice(f"{p}_sign", msb=WIDTH - 1, lsb=WIDTH - 1))
    model.connect(stage.y, sign.i("a"))
    nsign = model.add(Inverter(f"{p}_nsign", width=1))
    model.connect(sign.o("out"), nsign.i("a"))

    # Y' = Y + d*XC  (d=+1 when Y<0): subtract when Y >= 0.
    ynext = model.add(AddSub(f"{p}_ynext", width=WIDTH))
    model.connect(stage.y, ynext.i("a"))
    model.connect(stage.xc, ynext.i("b"))
    model.connect(nsign.o("out"), ynext.i("sub"))
    # Z' = Z - d*C: subtract when Y < 0.
    znext = model.add(AddSub(f"{p}_znext", width=WIDTH))
    model.connect(stage.z, znext.i("a"))
    model.connect(stage.c, znext.i("b"))
    model.connect(sign.o("out"), znext.i("sub"))
    # XC' = XC >> 1 (arith), C' = C >> 1 (logical) — free wiring.
    xcnext = model.add(Shift(f"{p}_xcnext", width=WIDTH, amount=1,
                             direction="right", arithmetic=True))
    model.connect(stage.xc, xcnext.i("a"))
    cnext = model.add(Shift(f"{p}_cnext", width=WIDTH, amount=1,
                            direction="right", arithmetic=False))
    model.connect(stage.c, cnext.i("a"))

    regs = {}
    for name, src, width in (
        ("xc", xcnext.o("s"), WIDTH),
        ("y", ynext.o("s"), WIDTH),
        ("z", znext.o("s"), WIDTH),
        ("c", cnext.o("s"), WIDTH),
        ("v", stage.v, 1),
    ):
        reg = model.add(Register(f"{p}_r{name}", width=width))
        model.connect(src, reg.i("d"))
        regs[name] = reg

    return _Stage(
        xc=regs["xc"].o("q"),
        y=regs["y"].o("q"),
        z=regs["z"].o("q"),
        c=regs["c"].o("q"),
        v=regs["v"].o("q"),
    )


def _build_output_sequencer(model: Model, stage: _Stage, wr) -> None:
    """Stream (Y, Z) of each finished datum back over the output FSL."""
    yh = model.add(Register("out_y", width=WIDTH))
    model.connect(stage.y, yh.i("d"))
    model.connect(stage.v, yh.i("en"))
    zh = model.add(Register("out_z", width=WIDTH))
    model.connect(stage.z, zh.i("d"))
    model.connect(stage.v, zh.i("en"))

    busy = model.add(Register("out_busy", width=1))
    ocnt = model.add(Register("out_ocnt", width=1))
    nocnt = model.add(Inverter("out_nocnt", width=1))
    model.connect(ocnt.o("q"), nocnt.i("a"))
    first_half = model.add(Logical("out_first", width=1, op="and"))
    model.connect(busy.o("q"), first_half.i("d0"))
    model.connect(nocnt.o("out"), first_half.i("d1"))
    busy_next = model.add(Logical("out_busynext", width=1, op="or"))
    model.connect(stage.v, busy_next.i("d0"))
    model.connect(first_half.o("out"), busy_next.i("d1"))
    model.connect(busy_next.o("out"), busy.i("d"))
    model.connect(first_half.o("out"), ocnt.i("d"))

    sel = model.add(Mux("out_mux", width=WIDTH, n=2))
    model.connect(ocnt.o("q"), sel.i("sel"))
    model.connect(yh.o("q"), sel.i("d0"))
    model.connect(zh.o("q"), sel.i("d1"))
    model.connect(sel.o("out"), wr.i("data"))
    model.connect(busy.o("q"), wr.i("write"))


def build_cordic_model(
    p: int, fifo_depth: int = 16
) -> tuple[Model, MicroBlazeBlock]:
    """Build the complete CORDIC peripheral with ``p`` PEs."""
    if p < 1:
        raise ValueError("need at least one PE")
    model = Model(f"cordic_p{p}")
    mb = MicroBlazeBlock(model, fifo_depth=fifo_depth)
    rd = mb.master_fsl(0)
    wr = mb.slave_fsl(0)
    stage = _build_input_sequencer(model, rd)
    for idx in range(p):
        stage = _build_pe(model, idx, stage)
    _build_output_sequencer(model, stage, wr)
    return model, mb


class CordicPipelineGenerator(DesignGenerator):
    """PyGen-style generator for the parameterized CORDIC pipeline."""

    space = ParameterSpace(
        parameters=[
            Parameter("P", default=4, minimum=1, maximum=16,
                      doc="number of processing elements"),
            Parameter("ITERS", default=24, minimum=1, maximum=31,
                      doc="CORDIC iterations to perform"),
            Parameter("NDATA", default=32, minimum=1,
                      doc="number of divisions in the workload"),
            Parameter("FRAC", default=16, minimum=4, maximum=28,
                      doc="fraction bits of the Q-format data"),
            Parameter("FIFO_DEPTH", default=16, minimum=4,
                      doc="FSL FIFO depth"),
        ],
    )

    def generate(self, **params) -> GeneratedDesign:
        from repro.apps.cordic.software import cordic_hw_source

        binding = self.bind(**params)
        model, mb = build_cordic_model(binding["P"], binding["FIFO_DEPTH"])
        source = cordic_hw_source(
            p=binding["P"],
            iters=binding["ITERS"],
            ndata=binding["NDATA"],
            frac=binding["FRAC"],
            fifo_depth=binding["FIFO_DEPTH"],
        )
        return GeneratedDesign(binding, model, mb, source)
