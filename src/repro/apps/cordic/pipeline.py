"""Multi-processor CORDIC division: one CPU per rotation stage.

The paper's P-PE design keeps one MicroBlaze feeding a P-stage
*hardware* pipeline.  This variant turns the same algorithm into a
genuinely parallel **software** pipeline over a K-CPU FSL topology
(:class:`~repro.cosim.MultiCoSimulation`):

* CPU 0 (*feed*) streams each datum as an ``(XC, Y, Z)`` triple,
* CPUs 1..S (*stage s*) each run a statically-compiled share of the
  CORDIC iterations on every passing triple — the rotation constant
  ``C`` depends only on the global iteration index, so stage ``s``
  starts from the compile-time constant ``one >> offset(s)``,
* CPU S+1 (*collect*) stores the ``(Y, Z)`` results in its own BRAM,
  where verification reads them back against the bit-exact golden
  model (:func:`~repro.apps.cordic.algorithm.cordic_divide_fixed`).

Datum ``i+1``'s early rotations overlap datum ``i``'s late ones on
different processors — the throughput win over the single-CPU software
baseline (``CordicDesign(p=0)``) that EXPERIMENTS.md tabulates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.apps.common import VerificationError, read_int32_array
from repro.apps.cordic.algorithm import cordic_divide_fixed, generate_dataset
from repro.apps.cordic.software import _dataset_decls
from repro.asm.linker import Program
from repro.cosim.multicpu import CPUNode, MultiCoSimResult, MultiCoSimulation
from repro.cosim.topology import TopologySpec
from repro.iss.cpu import CPUConfig
from repro.mcc import CompileOptions, build_executable

DEFAULT_ITERS = 24
DEFAULT_NDATA = 32
DEFAULT_FRAC = 16
DEFAULT_SEED = 2005


def stage_split(iters: int, stages: int) -> list[int]:
    """Per-stage iteration counts (earlier stages absorb the
    remainder): ``sum(stage_split(i, s)) == i``, every entry >= 1."""
    if stages < 1:
        raise ValueError("need at least one rotation stage")
    if iters < stages:
        raise ValueError(f"cannot split {iters} iterations over "
                         f"{stages} stages")
    base, extra = divmod(iters, stages)
    return [base + (1 if s < extra else 0) for s in range(stages)]


def feed_source(ndata: int, frac: int, seed: int) -> str:
    """CPU 0: stream the dataset downstream, one (XC, Y, Z) triple per
    datum."""
    return f"""\
/* CORDIC pipeline feed (cpu0).  Generated. */
{_dataset_decls(ndata, frac, seed)}

int main(void) {{
    int *xp = Xa;
    int *bp = Yb;
    for (int i = 0; i < {ndata}; i++) {{
        putfsl(*xp, 0);
        putfsl(*bp, 0);
        putfsl(0, 0);
        xp++;
        bp++;
    }}
    return 0;
}}
"""


def stage_source(stage: int, offset: int, rounds: int, ndata: int,
                 frac: int) -> str:
    """CPU ``stage+1``: apply CORDIC iterations ``offset ..
    offset+rounds`` to every passing triple.  ``C`` starts at the
    compile-time constant ``one >> offset`` — the stage's position in
    the global iteration sequence, baked in at build time."""
    c_start = ((1 << frac) & 0xFFFFFFFF) >> offset
    return f"""\
/* CORDIC rotation stage {stage} (cpu{stage + 1}): iterations \
{offset}..{offset + rounds - 1}.  Generated. */
int main(void) {{
    for (int i = 0; i < {ndata}; i++) {{
        int xc = getfsl(0);
        int y = getfsl(0);
        int z = getfsl(0);
        int c = {c_start};
        for (int j = 0; j < {rounds}; j++) {{
            if (y < 0) {{ y += xc; z -= c; }}
            else       {{ y -= xc; z += c; }}
            xc >>= 1;
            c = (int)((unsigned)c >> 1);
        }}
        putfsl(xc, 0);
        putfsl(y, 0);
        putfsl(z, 0);
    }}
    return 0;
}}
"""


def collect_source(stages: int, ndata: int) -> str:
    """Last CPU: land every result triple in its own BRAM."""
    return f"""\
/* CORDIC pipeline collector (cpu{stages + 1}).  Generated. */
int Yv[{ndata}];
int Zv[{ndata}];

int main(void) {{
    int *yp = Yv;
    int *zp = Zv;
    for (int i = 0; i < {ndata}; i++) {{
        int xc = getfsl(0);
        *yp = getfsl(0);
        *zp = getfsl(0);
        yp++;
        zp++;
    }}
    return 0;
}}
"""


@dataclass
class CordicPipelineDesign:
    """A K-CPU pipelined CORDIC division design point.

    ``stages`` rotation CPUs plus the feed and collect processors:
    ``n_cpus == stages + 2``.
    """

    stages: int = 4
    iters: int = DEFAULT_ITERS
    ndata: int = DEFAULT_NDATA
    frac: int = DEFAULT_FRAC
    seed: int = DEFAULT_SEED
    link_depth: int = 16
    cpu_config: CPUConfig = field(default_factory=CPUConfig)
    verify: bool = True
    fast_forward: bool = True
    max_cycles: int = 2_000_000

    #: campaign dispatch marker: this design runs on MultiCoSimulation
    is_multi = True

    def __post_init__(self) -> None:
        self.split = stage_split(self.iters, self.stages)
        options = CompileOptions(
            hw_multiplier=self.cpu_config.use_hw_multiplier,
            hw_divider=self.cpu_config.use_hw_divider,
        )
        sources = [feed_source(self.ndata, self.frac, self.seed)]
        offset = 0
        for s, rounds in enumerate(self.split):
            sources.append(
                stage_source(s, offset, rounds, self.ndata, self.frac))
            offset += rounds
        sources.append(collect_source(self.stages, self.ndata))
        self.sources = sources
        self.programs: list[Program] = [
            build_executable(src, options) for src in sources
        ]

    # ------------------------------------------------------------------
    @property
    def n_cpus(self) -> int:
        return self.stages + 2

    @property
    def name(self) -> str:
        return f"cordic-pipe{self.stages}"

    def topology(self) -> TopologySpec:
        return TopologySpec.pipeline(self.n_cpus)

    def build_sim(self, deadlock_window: int | None = None) -> MultiCoSimulation:
        nodes = [CPUNode(program=program, cpu_config=self.cpu_config)
                 for program in self.programs]
        return MultiCoSimulation(
            nodes,
            self.topology(),
            link_depth=self.link_depth,
            fast_forward=self.fast_forward,
            deadlock_window=deadlock_window,
        )

    def expected_results(self) -> list[tuple[int, int]]:
        pairs = generate_dataset(self.ndata, self.frac, self.seed)
        return [cordic_divide_fixed(b, a, self.iters, self.frac)
                for a, b in pairs]

    # ------------------------------------------------------------------
    def run(self) -> MultiCoSimResult:
        sim = self.build_sim()
        result = sim.run(until=self.max_cycles)
        self.check(sim, result)
        return result

    def check(self, sim: MultiCoSimulation, result: MultiCoSimResult) -> None:
        if result.exit_code != 0:
            raise VerificationError(
                f"{self.name}: exited with {result.exit_code} "
                f"(halt: {result.halt_reason})")
        if self.verify:
            self._verify(sim)

    def _verify(self, sim: MultiCoSimulation) -> None:
        sink = sim.nodes[-1]
        got_y = read_int32_array(sink.cpu, sink.program, "Yv", self.ndata)
        got_z = read_int32_array(sink.cpu, sink.program, "Zv", self.ndata)
        for i, (exp_y, exp_z) in enumerate(self.expected_results()):
            if got_y[i] != exp_y or got_z[i] != exp_z:
                raise VerificationError(
                    f"{self.name}, datum {i}: got (y={got_y[i]}, "
                    f"z={got_z[i]}), expected (y={exp_y}, z={exp_z})")


def compare_with_software(stages: int = 4,
                          iters: int = DEFAULT_ITERS,
                          ndata: int = DEFAULT_NDATA) -> dict:
    """Cycle counts of the K-CPU pipeline vs the single-CPU software
    baseline on the identical dataset (the EXPERIMENTS.md table)."""
    from repro.apps.common import run_software_only
    from repro.apps.cordic.design import CordicDesign

    sw = CordicDesign(p=0, iters=iters, ndata=ndata)
    t0 = time.perf_counter()
    sw_result, _cpu = run_software_only(sw.program, sw.cpu_config)
    sw_wall = time.perf_counter() - t0
    sw.check(_cpu, sw_result)

    pipe = CordicPipelineDesign(stages=stages, iters=iters, ndata=ndata)
    pipe_result = pipe.run()
    return {
        "iters": iters,
        "ndata": ndata,
        "stages": stages,
        "n_cpus": pipe.n_cpus,
        "sw_cycles": sw_result.cycles,
        "pipe_cycles": pipe_result.cycles,
        "speedup": sw_result.cycles / pipe_result.cycles,
        "sw_wall_s": sw_wall,
        "pipe_wall_s": pipe_result.wall_seconds,
    }
