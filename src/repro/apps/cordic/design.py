"""CORDIC design points: build, run, verify, estimate.

A :class:`CordicDesign` bundles one partition choice (pure software or
a P-PE pipeline) with its compiled program, hardware model and
processor configuration.  ``run()`` co-simulates, then checks every
quotient in BRAM against the bit-exact golden model — the machine-
checked substitute for the paper's ML300-board validation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.apps.common import VerificationError, read_int32_array, run_software_only
from repro.apps.cordic.algorithm import cordic_divide_fixed, generate_dataset
from repro.apps.cordic.hardware import build_cordic_model
from repro.apps.cordic.software import cordic_hw_source, cordic_sw_source
from repro.cosim.environment import CoSimResult, CoSimulation
from repro.cosim.partition import DesignPoint, DesignSpec, PartitionKind
from repro.iss.cpu import CPUConfig
from repro.mcc import CompileOptions, build_executable
from repro.resources.estimator import DesignEstimate, estimate_design

DEFAULT_ITERS = 24
DEFAULT_NDATA = 32
DEFAULT_FRAC = 16
DEFAULT_SEED = 2005


@dataclass
class CordicDesign:
    """One evaluated point of the CORDIC application."""

    p: int  # 0 = pure software
    iters: int = DEFAULT_ITERS
    ndata: int = DEFAULT_NDATA
    frac: int = DEFAULT_FRAC
    seed: int = DEFAULT_SEED
    fifo_depth: int = 16
    cpu_config: CPUConfig = field(default_factory=CPUConfig)
    verify: bool = True
    fast_forward: bool = True  # co-sim execution strategy (p > 0 only)

    def __post_init__(self) -> None:
        options = CompileOptions(
            hw_multiplier=self.cpu_config.use_hw_multiplier,
            hw_divider=self.cpu_config.use_hw_divider,
        )
        if self.p == 0:
            source = cordic_sw_source(self.iters, self.ndata, self.frac, self.seed)
            self.model = None
            self.mb = None
        else:
            source = cordic_hw_source(
                self.p, self.iters, self.ndata, self.frac,
                self.fifo_depth, self.seed,
            )
            self.model, self.mb = build_cordic_model(self.p, self.fifo_depth)
        self.source = source
        self.program = build_executable(source, options)

    # ------------------------------------------------------------------
    @property
    def effective_iterations(self) -> int:
        """Iterations actually performed: the pipeline always runs a
        whole pass of P (ceil), the software exactly ``iters``."""
        if self.p == 0:
            return self.iters
        passes = -(-self.iters // self.p)
        return passes * self.p

    def expected_results(self) -> list[tuple[int, int]]:
        """(y, z) golden outputs for every datum."""
        pairs = generate_dataset(self.ndata, self.frac, self.seed)
        return [
            cordic_divide_fixed(b, a, self.effective_iterations, self.frac)
            for a, b in pairs
        ]

    # ------------------------------------------------------------------
    def run(self) -> CoSimResult:
        if self.p == 0:
            result, cpu = run_software_only(self.program, self.cpu_config)
        else:
            sim = CoSimulation(
                self.program, self.model, self.mb,
                cpu_config=self.cpu_config,
                fast_forward=self.fast_forward,
            )
            result = sim.run()
            cpu = sim.cpu
        self.check(cpu, result)
        return result

    def check(self, cpu, result: CoSimResult) -> None:
        """Post-run acceptance: exit code + golden-model compare.

        The tail of :meth:`run`, callable on an externally driven
        simulation (e.g. one lane of a batched sweep) so every engine
        applies the identical verdict and diagnostic text."""
        if result.exit_code != 0:
            raise VerificationError(
                f"CORDIC P={self.p}: program exited with {result.exit_code}"
            )
        if self.verify:
            self._verify(cpu)

    def fresh_hardware(self):
        """A new ``(model, mb)`` pair for this partition — what a
        batched campaign lane needs, without recompiling the program."""
        if self.p == 0:
            raise ValueError("software-only partition has no hardware")
        return build_cordic_model(self.p, self.fifo_depth)

    def _verify(self, cpu) -> None:
        got_y = read_int32_array(cpu, self.program, "Yv", self.ndata)
        got_z = read_int32_array(cpu, self.program, "Zv", self.ndata)
        for i, (exp_y, exp_z) in enumerate(self.expected_results()):
            if got_y[i] != exp_y or got_z[i] != exp_z:
                raise VerificationError(
                    f"CORDIC P={self.p}, datum {i}: got (y={got_y[i]}, "
                    f"z={got_z[i]}), expected (y={exp_y}, z={exp_z})"
                )

    # ------------------------------------------------------------------
    def estimate(self) -> DesignEstimate:
        return estimate_design(
            model=self.model,
            program=self.program,
            cpu_config=self.cpu_config,
            n_fsl_links=self.mb.n_links if self.mb is not None else 0,
        )

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return "cordic-sw" if self.p == 0 else f"cordic-p{self.p}"


def cordic_design_points(
    ps: tuple[int, ...] = (0, 2, 4, 6, 8),
    iters: int = DEFAULT_ITERS,
    ndata: int = DEFAULT_NDATA,
    **kwargs,
) -> list[DesignPoint]:
    """The Figure 5 sweep as design points for the explorer."""
    points = []
    for p in ps:
        kind = PartitionKind.SOFTWARE_ONLY if p == 0 else \
            PartitionKind.HW_ACCELERATED
        points.append(
            DesignPoint(
                name=f"cordic-{'sw' if p == 0 else f'p{p}'}-{iters}it",
                kind=kind,
                build=(lambda p=p: CordicDesign(p=p, iters=iters,
                                                ndata=ndata, **kwargs)),
                params={"P": p, "iterations": iters, "ndata": ndata},
            )
        )
    return points


def cordic_design_specs(
    ps: tuple[int, ...] = (0, 2, 4, 6, 8),
    iters: int = DEFAULT_ITERS,
    ndata: int = DEFAULT_NDATA,
    **kwargs,
) -> list[DesignSpec]:
    """The same sweep as picklable specs for the parallel engine."""
    specs = []
    for p in ps:
        kind = PartitionKind.SOFTWARE_ONLY if p == 0 else \
            PartitionKind.HW_ACCELERATED
        specs.append(
            DesignSpec(
                name=f"cordic-{'sw' if p == 0 else f'p{p}'}-{iters}it",
                factory="repro.apps.cordic.design:CordicDesign",
                params={"p": p, "iters": iters, "ndata": ndata, **kwargs},
                kind=kind,
            )
        )
    return specs
