"""Bit-exact reference model of the CORDIC division iteration.

This is the golden model every implementation (software on the ISS,
sysgen pipeline, RTL netlist) is checked against.  All arithmetic is
32-bit two's complement with the same incremental-shift formulation the
implementations use (``XC`` and ``C`` halve each iteration), so results
must match *exactly*, not approximately.
"""

from __future__ import annotations

from fractions import Fraction

_M32 = 0xFFFFFFFF

WIDTH = 32
DEFAULT_FRAC = 16


def _wrap(v: int) -> int:
    v &= _M32
    return v - 0x100000000 if v & 0x80000000 else v


def to_fixed(value: float | Fraction, frac: int = DEFAULT_FRAC) -> int:
    """Quantize ``value`` to a signed 32-bit Q(frac) integer (truncate)."""
    scaled = Fraction(value).limit_denominator(1 << 62) * (1 << frac)
    raw = scaled.numerator // scaled.denominator
    if not -(1 << 31) <= raw < (1 << 31):
        raise OverflowError(f"{value} does not fit Q{frac} in 32 bits")
    return raw


def from_fixed(raw: int, frac: int = DEFAULT_FRAC) -> float:
    """Back to float for reporting."""
    return raw / (1 << frac)


def cordic_divide_fixed(
    b_raw: int,
    a_raw: int,
    iterations: int,
    frac: int = DEFAULT_FRAC,
) -> tuple[int, int]:
    """Run ``iterations`` CORDIC steps on fixed-point inputs.

    Returns ``(y_raw, z_raw)`` — the residual and the quotient
    estimate, bit-exact against the hardware/software implementations.
    """
    one = 1 << frac
    xc = a_raw
    y = b_raw
    z = 0
    c = one
    for _ in range(iterations):
        if y < 0:
            y = _wrap(y + xc)
            z = _wrap(z - c)
        else:
            y = _wrap(y - xc)
            z = _wrap(z + c)
        xc = xc >> 1  # arithmetic shift (Python >> is arithmetic)
        c = (c & _M32) >> 1  # logical shift of the positive constant
    return y, z


def cordic_divide_trace(
    b_raw: int, a_raw: int, iterations: int, frac: int = DEFAULT_FRAC
) -> list[tuple[int, int, int, int]]:
    """Per-iteration (xc, y, z, c) trace, for debugging the pipeline."""
    one = 1 << frac
    xc, y, z, c = a_raw, b_raw, 0, one
    trace = [(xc, y, z, c)]
    for _ in range(iterations):
        if y < 0:
            y = _wrap(y + xc)
            z = _wrap(z - c)
        else:
            y = _wrap(y - xc)
            z = _wrap(z + c)
        xc >>= 1
        c = (c & _M32) >> 1
        trace.append((xc, y, z, c))
    return trace


def generate_dataset(
    n: int, frac: int = DEFAULT_FRAC, seed: int = 2005
) -> list[tuple[int, int]]:
    """Deterministic (a_raw, b_raw) divisor/dividend pairs with
    ``0 < b < a`` so the quotient converges in (0, 1) — the adaptive
    beamforming-style data the paper's application targets."""
    pairs: list[tuple[int, int]] = []
    state = seed & 0x7FFFFFFF
    for _ in range(n):
        # xorshift-style PRNG, reproducible across platforms
        state ^= (state << 13) & 0x7FFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0x7FFFFFFF
        a = 1.0 + (state % 60000) / 10000.0  # 1.0 .. 7.0
        state ^= (state << 13) & 0x7FFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0x7FFFFFFF
        b = (state % 9000) / 10000.0 * a  # 0 .. 0.9*a
        pairs.append((to_fixed(a, frac), to_fixed(b, frac)))
    return pairs


def quotient_error(a_raw: int, b_raw: int, z_raw: int,
                   frac: int = DEFAULT_FRAC) -> float:
    """Absolute error of the CORDIC quotient vs true division."""
    if a_raw == 0:
        raise ZeroDivisionError("a must be nonzero")
    true = Fraction(b_raw, a_raw)
    return abs(float(Fraction(z_raw, 1 << frac) - true))
