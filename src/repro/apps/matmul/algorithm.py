"""Reference models and workload generation for block matmul.

All arithmetic is 32-bit two's complement (products wrap), bit-exact
against both the software program and the hardware peripheral.
"""

from __future__ import annotations

_M32 = 0xFFFFFFFF


def _wrap(v: int) -> int:
    v &= _M32
    return v - 0x100000000 if v & 0x80000000 else v


def generate_matrices(n: int, seed: int = 2005) -> tuple[list[list[int]], list[list[int]]]:
    """Two deterministic n×n integer matrices with smallish entries
    (the beamforming-style coefficient updates the paper motivates)."""
    state = seed & 0x7FFFFFFF

    def nxt() -> int:
        nonlocal state
        state ^= (state << 13) & 0x7FFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0x7FFFFFFF
        return (state % 2001) - 1000  # -1000 .. 1000

    a = [[nxt() for _ in range(n)] for _ in range(n)]
    b = [[nxt() for _ in range(n)] for _ in range(n)]
    return a, b


def matmul_reference(a: list[list[int]], b: list[list[int]]) -> list[list[int]]:
    """Plain O(n³) product with 32-bit wrap semantics."""
    n = len(a)
    m = len(b[0])
    k_dim = len(b)
    out = [[0] * m for _ in range(n)]
    for i in range(n):
        row = a[i]
        for j in range(m):
            acc = 0
            for k in range(k_dim):
                acc = _wrap(acc + _wrap(row[k] * b[k][j]))
            out[i][j] = acc
    return out


def block_matmul_reference(
    a: list[list[int]], b: list[list[int]], block: int
) -> list[list[int]]:
    """Blocked product (same result, exercised blockwise like the
    hardware): C_IJ += A_IK × B_KJ over block×block tiles."""
    n = len(a)
    if n % block:
        raise ValueError(f"matrix size {n} not divisible by block {block}")
    out = [[0] * n for _ in range(n)]
    nb = n // block
    for jj in range(nb):
        for kk in range(nb):
            for ii in range(nb):
                for i in range(block):
                    for j in range(block):
                        acc = out[ii * block + i][jj * block + j]
                        for k in range(block):
                            acc = _wrap(
                                acc
                                + _wrap(
                                    a[ii * block + i][kk * block + k]
                                    * b[kk * block + k][jj * block + j]
                                )
                            )
                        out[ii * block + i][jj * block + j] = acc
    return out
