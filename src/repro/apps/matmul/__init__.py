"""Block matrix multiplication (paper Section IV-B).

The customized peripheral multiplies N×N *blocks*: the elements of a B
block are loaded once as FSL control words into a register file, then
A blocks stream through as data words, column by column; N embedded
multipliers work in parallel (one per result column) and N²
accumulators collect the products.  The software decomposes the full
matrices into blocks, drives the peripheral and combines the partial
products (paper: "the software program is responsible for controlling
data to and from the customized hardware peripheral, combining the
multiplication results of these matrix blocks, and generating the
result matrix").
"""

from repro.apps.matmul.algorithm import (
    block_matmul_reference,
    generate_matrices,
    matmul_reference,
)
from repro.apps.matmul.hardware import MatmulBlockGenerator, build_matmul_model
from repro.apps.matmul.software import matmul_hw_source, matmul_sw_source
from repro.apps.matmul.design import MatmulDesign, matmul_design_points

__all__ = [
    "matmul_reference",
    "block_matmul_reference",
    "generate_matrices",
    "build_matmul_model",
    "MatmulBlockGenerator",
    "matmul_sw_source",
    "matmul_hw_source",
    "MatmulDesign",
    "matmul_design_points",
]
