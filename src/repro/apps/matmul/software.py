"""mini-C sources for the block matrix multiplication application.

Both variants operate on the same generated global matrices ``A`` and
``B`` (2-D arrays) and produce ``C``; the verification layer compares
``C`` in BRAM against the NumPy-style reference.

The software baseline is the standard triple loop with the natural
pointer hoists a C programmer writes (row pointer for A/C, strided
column walker for B).  The hardware driver decomposes into blocks: per
(jj, kk) tile of B it sends N² control words, then for every ii streams
the A tile and accumulates the returned products into C — the paper's
"combining the multiplication results of these matrix blocks".
"""

from __future__ import annotations

from repro.apps.matmul.algorithm import generate_matrices


def _format_matrix(name: str, rows: list[list[int]]) -> str:
    n = len(rows)
    body = ",\n    ".join(
        "{" + ", ".join(str(v) for v in row) + "}" for row in rows
    )
    return f"int {name}[{n}][{n}] = {{\n    {body}\n}};"


def _matrix_decls(matn: int, seed: int) -> str:
    a, b = generate_matrices(matn, seed)
    return "\n".join(
        [
            _format_matrix("A", a),
            _format_matrix("B", b),
            f"int C[{matn}][{matn}];",
        ]
    )


def matmul_sw_source(matn: int = 16, seed: int = 2005) -> str:
    """Pure-software triple-loop product."""
    return f"""\
/* {matn}x{matn} matrix multiplication, pure software.  Generated. */
{_matrix_decls(matn, seed)}

int main(void) {{
    for (int i = 0; i < {matn}; i++) {{
        int *arow = A[i];
        int *crow = C[i];
        for (int j = 0; j < {matn}; j++) {{
            int acc = 0;
            int *bp = &B[0][j];
            for (int k = 0; k < {matn}; k++) {{
                acc += arow[k] * *bp;
                bp += {matn};
            }}
            crow[j] = acc;
        }}
    }}
    return 0;
}}
"""


def matmul_hw_source(block: int = 2, matn: int = 16, seed: int = 2005) -> str:
    """FSL driver for the N×N block-multiplier peripheral."""
    if matn % block:
        raise ValueError("matrix size must be divisible by the block size")
    nb = matn // block
    return f"""\
/* {matn}x{matn} matrix multiplication using the {block}x{block} block
 * multiplier peripheral ({nb}x{nb} blocks).  Generated. */
{_matrix_decls(matn, seed)}

int main(void) {{
    for (int jj = 0; jj < {nb}; jj++) {{
        for (int kk = 0; kk < {nb}; kk++) {{
            /* load B block (control words, column by column) */
            for (int j = 0; j < {block}; j++) {{
                int *bc = &B[kk * {block}][jj * {block} + j];
                for (int k = 0; k < {block}; k++) {{
                    cputfsl(*bc, 0);
                    bc += {matn};
                }}
            }}
            /* stream every A block in this block-column through it */
            for (int ii = 0; ii < {nb}; ii++) {{
                for (int k = 0; k < {block}; k++) {{
                    int *ac = &A[ii * {block}][kk * {block} + k];
                    for (int i = 0; i < {block}; i++) {{
                        putfsl(*ac, 0);
                        ac += {matn};
                    }}
                }}
                for (int j = 0; j < {block}; j++) {{
                    int *cc = &C[ii * {block}][jj * {block} + j];
                    for (int i = 0; i < {block}; i++) {{
                        *cc += getfsl(0);
                        cc += {matn};
                    }}
                }}
            }}
        }}
    }}
    return 0;
}}
"""
