"""Matmul design points: build, run, verify, estimate."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.common import VerificationError, read_int32_array, run_software_only
from repro.apps.matmul.algorithm import generate_matrices, matmul_reference
from repro.apps.matmul.hardware import build_matmul_model
from repro.apps.matmul.software import matmul_hw_source, matmul_sw_source
from repro.cosim.environment import CoSimResult, CoSimulation
from repro.cosim.partition import DesignPoint, DesignSpec, PartitionKind
from repro.iss.cpu import CPUConfig
from repro.mcc import CompileOptions, build_executable
from repro.resources.estimator import DesignEstimate, estimate_design

DEFAULT_MATN = 16
DEFAULT_SEED = 2005


@dataclass
class MatmulDesign:
    """One evaluated point of the matmul application.

    ``block = 0`` denotes the pure-software partition.
    """

    block: int
    matn: int = DEFAULT_MATN
    seed: int = DEFAULT_SEED
    fifo_depth: int = 16
    cpu_config: CPUConfig = field(default_factory=CPUConfig)
    verify: bool = True
    fast_forward: bool = True  # co-sim execution strategy (block > 0 only)

    def __post_init__(self) -> None:
        options = CompileOptions(
            hw_multiplier=self.cpu_config.use_hw_multiplier,
            hw_divider=self.cpu_config.use_hw_divider,
        )
        if self.block == 0:
            self.source = matmul_sw_source(self.matn, self.seed)
            self.model = None
            self.mb = None
        else:
            self.source = matmul_hw_source(self.block, self.matn, self.seed)
            self.model, self.mb = build_matmul_model(self.block, self.fifo_depth)
        self.program = build_executable(self.source, options)

    # ------------------------------------------------------------------
    def expected_result(self) -> list[list[int]]:
        a, b = generate_matrices(self.matn, self.seed)
        return matmul_reference(a, b)

    def run(self) -> CoSimResult:
        if self.block == 0:
            result, cpu = run_software_only(self.program, self.cpu_config)
        else:
            sim = CoSimulation(
                self.program, self.model, self.mb,
                cpu_config=self.cpu_config,
                fast_forward=self.fast_forward,
            )
            result = sim.run()
            cpu = sim.cpu
        self.check(cpu, result)
        return result

    def check(self, cpu, result: CoSimResult) -> None:
        """Post-run acceptance: exit code + golden-model compare.

        The tail of :meth:`run`, callable on an externally driven
        simulation (e.g. one lane of a batched sweep) so every engine
        applies the identical verdict and diagnostic text."""
        if result.exit_code != 0:
            raise VerificationError(
                f"matmul block={self.block}: exit code {result.exit_code}"
            )
        if self.verify:
            self._verify(cpu)

    def fresh_hardware(self):
        """A new ``(model, mb)`` pair for this partition — what a
        batched campaign lane needs, without recompiling the program."""
        if self.block == 0:
            raise ValueError("software-only partition has no hardware")
        return build_matmul_model(self.block, self.fifo_depth)

    def _verify(self, cpu) -> None:
        flat = read_int32_array(cpu, self.program, "C", self.matn * self.matn)
        expected = self.expected_result()
        for i in range(self.matn):
            for j in range(self.matn):
                got = flat[i * self.matn + j]
                if got != expected[i][j]:
                    raise VerificationError(
                        f"matmul block={self.block}: C[{i}][{j}] = {got}, "
                        f"expected {expected[i][j]}"
                    )

    def estimate(self) -> DesignEstimate:
        return estimate_design(
            model=self.model,
            program=self.program,
            cpu_config=self.cpu_config,
            n_fsl_links=self.mb.n_links if self.mb is not None else 0,
        )

    @property
    def name(self) -> str:
        return "matmul-sw" if self.block == 0 else f"matmul-{self.block}x{self.block}"


def matmul_design_points(
    blocks: tuple[int, ...] = (0, 2, 4),
    matn: int = DEFAULT_MATN,
    **kwargs,
) -> list[DesignPoint]:
    """The Figure 7 family as explorer design points."""
    points = []
    for block in blocks:
        kind = PartitionKind.SOFTWARE_ONLY if block == 0 else \
            PartitionKind.HW_ACCELERATED
        points.append(
            DesignPoint(
                name=f"matmul-{'sw' if block == 0 else f'{block}x{block}'}-n{matn}",
                kind=kind,
                build=(lambda block=block: MatmulDesign(block=block, matn=matn,
                                                        **kwargs)),
                params={"block": block, "N": matn},
            )
        )
    return points


def matmul_design_specs(
    blocks: tuple[int, ...] = (0, 2, 4),
    matn: int = DEFAULT_MATN,
    **kwargs,
) -> list[DesignSpec]:
    """The same family as picklable specs for the parallel engine."""
    specs = []
    for block in blocks:
        kind = PartitionKind.SOFTWARE_ONLY if block == 0 else \
            PartitionKind.HW_ACCELERATED
        specs.append(
            DesignSpec(
                name=f"matmul-{'sw' if block == 0 else f'{block}x{block}'}"
                     f"-n{matn}",
                factory="repro.apps.matmul.design:MatmulDesign",
                params={"block": block, "matn": matn, **kwargs},
                kind=kind,
            )
        )
    return specs
