"""N×N block-multiplier peripheral (paper Fig. 6), as sysgen blocks.

Dataflow per B-block / A-block pair:

1. N² *control* words load the B block into an 18-bit register file,
   column by column (paper: "the data elements of matrix blocks from
   matrix B ... are fed into the hardware peripheral as control
   words").
2. N² *data* words stream the A block, column by column.  Each
   arriving ``a_ik`` drives N embedded multipliers in parallel (one per
   result column j, fed ``b_kj`` through a k-selected mux); the
   products accumulate into N² accumulators addressed by the delayed
   row index (multiplier latency 3).
3. When the last product lands, the output sequencer streams the N²
   accumulated ``c_ij`` back over the result FSL and clears the
   accumulators for the next block.

N must be a power of two (the row/column indices are bit slices of the
arrival counter).  Multiplier inputs are 18 bits — one MULT18X18 per
result column, which is why Table I shows 2 extra multipliers for the
2×2 design and 4 for the 4×4.
"""

from __future__ import annotations

from repro.cosim.mb_block import MicroBlazeBlock
from repro.pygen.generator import DesignGenerator, GeneratedDesign
from repro.pygen.params import Parameter, ParameterSpace
from repro.sysgen.blocks import (
    Accumulator,
    Constant,
    Counter,
    Delay,
    Inverter,
    Logical,
    Mult,
    Mux,
    Register,
    Relational,
    Slice,
)
from repro.sysgen.model import Model

MULT_LATENCY = 3
B_WIDTH = 18
ACC_WIDTH = 32


def _eq_const(model: Model, name: str, signal, value: int, width: int):
    """signal == value (unsigned), as a 1-bit output ref."""
    const = model.add(Constant(f"{name}_c", value, width=width))
    eq = model.add(Relational(name, width=width, op="eq", signed=False))
    model.connect(signal, eq.i("a"))
    model.connect(const.o("out"), eq.i("b"))
    return eq.o("out")


def _and2(model: Model, name: str, a, b):
    g = model.add(Logical(name, width=1, op="and"))
    model.connect(a, g.i("d0"))
    model.connect(b, g.i("d1"))
    return g.o("out")


def build_matmul_model(
    n: int, fifo_depth: int = 16
) -> tuple[Model, MicroBlazeBlock]:
    """Build the block-multiplier peripheral for ``n``×``n`` blocks."""
    if n < 2 or n & (n - 1):
        raise ValueError("block size must be a power of two >= 2")
    n2 = n * n
    ibits = (n - 1).bit_length()  # bits of the row index
    cbits = (n2 - 1).bit_length()  # bits of the arrival counters

    model = Model(f"matmul_n{n}")
    mb = MicroBlazeBlock(model, fifo_depth=fifo_depth)
    rd = mb.master_fsl(0)
    wr = mb.slave_fsl(0)

    # ---- input gating ------------------------------------------------
    # `pending` interlocks the block protocol: once a whole A block has
    # been consumed, no further FSL words (data OR control) are
    # accepted until its results have streamed out — otherwise the next
    # block's products would race the output mux and the B reload would
    # clobber live operands.
    out_busy = model.add(Register("out_busy", width=1))
    pending = model.add(Register("pending", width=1))
    not_busy = model.add(Inverter("not_busy", width=1))
    model.connect(out_busy.o("q"), not_busy.i("a"))
    not_pending = model.add(Inverter("not_pending", width=1))
    model.connect(pending.o("q"), not_pending.i("a"))
    accept = _and2(model, "accept", not_busy.o("out"), not_pending.o("out"))
    read = _and2(model, "read_strobe", rd.o("exists"), accept)
    model.connect(read, rd.i("read"))
    notctrl = model.add(Inverter("notctrl", width=1))
    model.connect(rd.o("control"), notctrl.i("a"))
    data_consume = _and2(model, "data_consume", read, notctrl.o("out"))
    ctrl_consume = _and2(model, "ctrl_consume", read, rd.o("control"))

    # ---- B register file (loaded by control words, k fast / j slow) --
    b_cnt = model.add(Counter("b_cnt", width=cbits))
    model.connect(ctrl_consume, b_cnt.i("en"))
    b_wrap = _and2(
        model, "b_wrap", ctrl_consume,
        _eq_const(model, "b_last", b_cnt.o("q"), n2 - 1, cbits),
    )
    model.connect(b_wrap, b_cnt.i("rst"))
    bregs: dict[tuple[int, int], Register] = {}
    for j in range(n):
        for k in range(n):
            idx = j * n + k
            reg = model.add(Register(f"b_{k}_{j}", width=B_WIDTH))
            model.connect(rd.o("data"), reg.i("d"))
            en = _and2(
                model, f"b_en_{k}_{j}", ctrl_consume,
                _eq_const(model, f"b_at_{idx}", b_cnt.o("q"), idx, cbits),
            )
            model.connect(en, reg.i("en"))
            bregs[(k, j)] = reg

    # ---- A arrival counter: i = low bits, k = high bits ---------------
    a_cnt = model.add(Counter("a_cnt", width=cbits))
    model.connect(data_consume, a_cnt.i("en"))
    a_wrap = _and2(
        model, "a_wrap", data_consume,
        _eq_const(model, "a_last", a_cnt.o("q"), n2 - 1, cbits),
    )
    model.connect(a_wrap, a_cnt.i("rst"))
    i_idx = model.add(Slice("i_idx", msb=ibits - 1, lsb=0))
    model.connect(a_cnt.o("q"), i_idx.i("a"))
    k_idx = model.add(Slice("k_idx", msb=cbits - 1, lsb=ibits))
    model.connect(a_cnt.o("q"), k_idx.i("a"))

    # ---- N multipliers, one per result column -------------------------
    mults = []
    for j in range(n):
        bmux = model.add(Mux(f"bmux_{j}", width=B_WIDTH, n=n))
        model.connect(k_idx.o("out"), bmux.i("sel"))
        for k in range(n):
            model.connect(bregs[(k, j)].o("q"), bmux.i(f"d{k}"))
        mult = model.add(
            Mult(f"mult_{j}", width_a=B_WIDTH, width_b=B_WIDTH,
                 out_width=ACC_WIDTH, latency=MULT_LATENCY)
        )
        model.connect(rd.o("data"), mult.i("a"))
        model.connect(bmux.o("out"), mult.i("b"))
        mults.append(mult)

    # ---- alignment delays through the multiplier pipeline -------------
    valid_d = model.add(Delay("valid_d", width=1, n=MULT_LATENCY))
    model.connect(data_consume, valid_d.i("d"))
    i_d = model.add(Delay("i_d", width=ibits, n=MULT_LATENCY))
    model.connect(i_idx.o("out"), i_d.i("d"))

    # ---- N² accumulators, row-addressed -------------------------------
    row_en = []
    for i in range(n):
        en = _and2(
            model, f"row_en_{i}", valid_d.o("q"),
            _eq_const(model, f"row_at_{i}", i_d.o("q"), i, ibits),
        )
        row_en.append(en)

    # product completion counter
    prod_cnt = model.add(Counter("prod_cnt", width=cbits))
    model.connect(valid_d.o("q"), prod_cnt.i("en"))
    block_done = _and2(
        model, "block_done", valid_d.o("q"),
        _eq_const(model, "prod_last", prod_cnt.o("q"), n2 - 1, cbits),
    )
    model.connect(block_done, prod_cnt.i("rst"))

    # ---- output sequencer ---------------------------------------------
    out_cnt = model.add(Counter("out_cnt", width=cbits))
    model.connect(out_busy.o("q"), out_cnt.i("en"))
    last_out = _and2(
        model, "last_out", out_busy.o("q"),
        _eq_const(model, "out_at_last", out_cnt.o("q"), n2 - 1, cbits),
    )
    model.connect(last_out, out_cnt.i("rst"))
    not_last = model.add(Inverter("not_last", width=1))
    model.connect(last_out, not_last.i("a"))
    keep_busy = _and2(model, "keep_busy", out_busy.o("q"), not_last.o("out"))
    busy_next = model.add(Logical("busy_next", width=1, op="or"))
    model.connect(block_done, busy_next.i("d0"))
    model.connect(keep_busy, busy_next.i("d1"))
    model.connect(busy_next.o("out"), out_busy.i("d"))

    # pending: set when the last A word of a block is consumed, cleared
    # when its last result word goes out.
    keep_pending = _and2(model, "keep_pending", pending.o("q"),
                         not_last.o("out"))
    pending_next = model.add(Logical("pending_next", width=1, op="or"))
    model.connect(a_wrap, pending_next.i("d0"))
    model.connect(keep_pending, pending_next.i("d1"))
    model.connect(pending_next.o("out"), pending.i("d"))

    out_mux = model.add(Mux("out_mux", width=ACC_WIDTH, n=n2))
    model.connect(out_cnt.o("q"), out_mux.i("sel"))
    for j in range(n):
        for i in range(n):
            acc = model.add(Accumulator(f"acc_{i}_{j}", width=ACC_WIDTH))
            model.connect(mults[j].o("p"), acc.i("d"))
            model.connect(row_en[i], acc.i("en"))
            model.connect(last_out, acc.i("rst"))
            # output order: i fast, j slow (column by column of C)
            model.connect(acc.o("q"), out_mux.i(f"d{j * n + i}"))
    model.connect(out_mux.o("out"), wr.i("data"))
    model.connect(out_busy.o("q"), wr.i("write"))

    return model, mb


class MatmulBlockGenerator(DesignGenerator):
    """PyGen-style generator for the parameterized block multiplier."""

    space = ParameterSpace(
        parameters=[
            Parameter("BLOCK", default=2, choices=(2, 4, 8),
                      doc="block size N (one multiplier per column)"),
            Parameter("MATN", default=16, minimum=2,
                      doc="full matrix dimension"),
            Parameter("FIFO_DEPTH", default=16, minimum=4),
        ],
        constraints=[
            lambda b: (
                None if b["MATN"] % b["BLOCK"] == 0
                else f"MATN={b['MATN']} not divisible by BLOCK={b['BLOCK']}"
            ),
            lambda b: (
                None if b["BLOCK"] * b["BLOCK"] <= b["FIFO_DEPTH"]
                else "a block's results must fit the output FIFO"
            ),
        ],
    )

    def generate(self, **params) -> GeneratedDesign:
        from repro.apps.matmul.software import matmul_hw_source

        binding = self.bind(**params)
        model, mb = build_matmul_model(binding["BLOCK"], binding["FIFO_DEPTH"])
        source = matmul_hw_source(
            block=binding["BLOCK"], matn=binding["MATN"]
        )
        return GeneratedDesign(binding, model, mb, source)
