"""The paper's illustrative applications (Section IV)."""

__all__ = ["cordic", "matmul"]
