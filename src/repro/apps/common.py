"""Shared helpers for the application design classes."""

from __future__ import annotations

import time

from repro.asm.linker import Program
from repro.cosim.environment import CoSimResult
from repro.iss.cpu import CPU, CPUConfig, HaltReason
from repro.iss.run import make_cpu
from repro.telemetry import current_telemetry


def read_int32_array(cpu: CPU, program: Program, symbol: str, n: int) -> list[int]:
    """Read ``n`` signed 32-bit words from a global array in BRAM."""
    base = program.symbol(symbol)
    out = []
    for i in range(n):
        raw = cpu.mem.read_u32(base + 4 * i)
        out.append(raw - 0x100000000 if raw & 0x80000000 else raw)
    return out


def run_software_only(
    program: Program,
    config: CPUConfig | None = None,
    max_cycles: int = 50_000_000,
) -> tuple[CoSimResult, CPU]:
    """Run a pure-software program on the bare ISS, reporting the same
    result record as a co-simulation for uniform comparison."""
    cpu = make_cpu(program, config=config)
    telemetry = current_telemetry()
    if telemetry is not None:
        telemetry.attach_cpu(cpu)
        clock = lambda: cpu.cycle  # noqa: E731
        for channel in (*cpu.fsl.inputs, *cpu.fsl.outputs):
            if channel is not None:
                telemetry.attach_channel(channel, clock)
    start = time.perf_counter()
    reason = cpu.run(max_cycles=max_cycles)
    wall = time.perf_counter() - start
    result = CoSimResult(
        exit_code=cpu.exit_code,
        cycles=cpu.cycle,
        instructions=cpu.stats.instructions,
        stall_cycles=cpu.stats.stall_cycles,
        wall_seconds=wall,
        simulated_seconds=cpu.simulated_time_s(),
        halt_reason=reason if reason is not HaltReason.EXIT else HaltReason.EXIT,
    )
    return result, cpu


class VerificationError(AssertionError):
    """An application produced output differing from the golden model."""
