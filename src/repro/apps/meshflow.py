"""Deterministic 2D-mesh dataflow app for K-CPU fault campaigns.

One CPU per mesh node; tokens stream along the serpentine route the
conformance family uses (source corner → relay chain → sink), each hop
applying its own arithmetic transform.  Unlike the conformance drivers
(whose observable *is* the exit code), every node here exits 0 and
lands a running checksum in its own BRAM (``Out``), with the sink also
keeping the raw values (``Vals``) — so the campaign's invariant
checker owns the exit codes and ``_verify`` reads the data surface
back against the fault-free run.  This is ``mb32-faultsim mesh``: the
K-CPU campaign with ``link_drop`` and ``node_stall`` in play on a
topology with idle reverse links.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.common import VerificationError, read_int32_array
from repro.conformance.multicpu import NODE_ARITH, MultiScenario, _transform
from repro.cosim.multicpu import CPUNode, MultiCoSimResult, MultiCoSimulation
from repro.iss.cpu import CPUConfig
from repro.mcc import build_executable


def _node_source(scenario: MultiScenario, node_index: int,
                 arith: str) -> str:
    """Mini-C driver for one mesh node: checksum everything that passes
    through, exit 0, leave the checksum in BRAM."""
    in_ch, out_ch = scenario.stream_channels(node_index)
    tokens = scenario.tokens
    mult = (scenario.value_param % 7) + 1
    bias = scenario.value_param % 29
    body: list[str] = []
    decls = "int Out;"
    if in_ch is None:  # route head: the token source
        body += [
            f"        int v = i * {mult} + {bias};",
            f"        putfsl(v, {out_ch});",
        ]
    elif out_ch is None:  # route tail: the sink keeps the raw values
        decls = f"int Out;\nint Vals[{tokens}];"
        body += [
            f"        int v = getfsl({in_ch});",
            f"        v = {_transform(arith, 'v')};",
            "        Vals[i] = v;",
        ]
    else:  # relay hop
        body += [
            f"        int v = getfsl({in_ch});",
            f"        v = {_transform(arith, 'v')};",
            f"        putfsl(v, {out_ch});",
        ]
    body.append("        acc = acc * 3 + v;")
    inner = "\n".join(body)
    return f"""\
/* meshflow node {node_index}.  Generated. */
{decls}

int main(void) {{
    int acc = 1;
    for (int i = 0; i < {tokens}; i++) {{
{inner}
    }}
    Out = acc;
    return 0;
}}
"""


@dataclass
class MeshFlowDesign:
    """A ``rows`` x ``cols`` mesh design point for fault campaigns."""

    rows: int = 2
    cols: int = 2
    tokens: int = 8
    value_param: int = 17
    link_depth: int = 8
    max_cycles: int = 120_000
    verify: bool = True
    fast_forward: bool = True

    #: campaign dispatch marker: this design runs on MultiCoSimulation
    is_multi = True

    #: per-node ``Out`` checksums of the fault-free run (filled lazily)
    expected_out: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1 or self.rows * self.cols < 2:
            raise ValueError("mesh needs at least two nodes")
        n = self.rows * self.cols
        # the topology/route conventions come from the conformance
        # family; the node programs are this app's own (exit-0) drivers
        self.scenario = MultiScenario(
            name=f"meshflow{self.rows}x{self.cols}",
            seed="meshflow",
            topology_kind="mesh",
            n_cpus=n,
            rows=self.rows,
            cols=self.cols,
            link_depth=self.link_depth,
            tokens=self.tokens,
            value_param=self.value_param,
            max_cycles=self.max_cycles,
        )
        # arithmetic varies per hop so corruption anywhere lands on a
        # distinct surface; no node-local hardware — every injectable
        # channel is an inter-CPU link
        self.ariths = [NODE_ARITH[1 + k % (len(NODE_ARITH) - 1)]
                       for k in range(n)]
        self.sources = [_node_source(self.scenario, k, self.ariths[k])
                        for k in range(n)]
        self.programs = [build_executable(src) for src in self.sources]

    @property
    def name(self) -> str:
        return self.scenario.name

    def topology(self):
        return self.scenario.topology()

    def build_sim(self, deadlock_window: int | None = None) -> MultiCoSimulation:
        nodes = [CPUNode(program=program, cpu_config=CPUConfig())
                 for program in self.programs]
        return MultiCoSimulation(
            nodes,
            self.topology(),
            link_depth=self.link_depth,
            fast_forward=self.fast_forward,
            deadlock_window=deadlock_window,
        )

    # ------------------------------------------------------------------
    def run(self) -> MultiCoSimResult:
        sim = self.build_sim()
        result = sim.run(until=self.max_cycles)
        if result.exit_code != 0:
            raise VerificationError(
                f"{self.name}: fault-free run exited with "
                f"{result.exit_code} (halt: {result.halt_reason})")
        self.expected_out = self._surface(sim)
        return result

    def _surface(self, sim: MultiCoSimulation) -> list[int]:
        out = [read_int32_array(node.cpu, node.program, "Out", 1)[0]
               for node in sim.nodes]
        sink = sim.nodes[self.scenario.route()[-1]]
        out.extend(read_int32_array(sink.cpu, sink.program, "Vals",
                                    self.tokens))
        return out

    def _expected(self) -> list[int]:
        if not self.expected_out:
            self.run()
        return self.expected_out

    def _verify(self, sim: MultiCoSimulation) -> None:
        got = self._surface(sim)
        expected = self._expected()
        if got != expected:
            bad = next(i for i, (g, e) in enumerate(zip(got, expected))
                       if g != e)
            raise VerificationError(
                f"{self.name}: data surface mismatch at slot {bad}: "
                f"got {got[bad]}, expected {expected[bad]}")
