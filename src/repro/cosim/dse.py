"""Design-space exploration over partitions and configurations.

This automates what the paper's user does by hand with the
co-simulation environment: evaluate each candidate partition both for
*performance* (cycle count from co-simulation) and *cost* (rapid
resource estimation), then pick the best point under resource
constraints — e.g. "fastest CORDIC configuration using at most 1000
slices".

The evaluation engine itself lives in :mod:`repro.cosim.sweep`, which
fans design points out over a worker pool with per-point timeouts,
bounded retry and an on-disk result cache.  :func:`explore` remains as
a deprecated sequential wrapper over the same engine.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any

from repro.cosim.environment import CoSimResult
from repro.cosim.partition import DesignPoint, DesignSpec
from repro.resources.estimator import DesignEstimate
from repro.runapi import RunOutcome

#: structured per-point statuses reported by the sweep engine — a
#: failing point becomes data instead of a sweep-killing exception.
STATUS_OK = "ok"
STATUS_SELF_CHECK = "self-check-failed"
STATUS_DEADLOCK = "deadlock"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"


@dataclass
class DSEResult(RunOutcome):
    """Evaluation of one design point.

    ``result``/``estimate`` are ``None`` unless the point evaluated to
    completion; ``status`` is one of the ``STATUS_*`` strings and
    ``error`` carries the diagnostic for non-``ok`` points.  This is a
    :class:`~repro.runapi.RunOutcome`: ``status`` / ``error`` /
    ``cycles`` and the ``to_dict()`` key core are shared with
    :class:`~repro.cosim.environment.CoSimResult` and the fault
    campaign's :class:`~repro.faults.campaign.TrialOutcome`.
    """

    point: DesignPoint | DesignSpec
    result: CoSimResult | None
    estimate: DesignEstimate | None
    status: str = STATUS_OK
    error: str | None = None
    cache_hit: bool = False
    fingerprint: str | None = None
    attempts: int = 1
    #: per-point telemetry snapshot (plain dict) when the sweep ran
    #: with telemetry enabled; None otherwise (including cache hits,
    #: which skip the instrumented run)
    metrics: dict[str, Any] | None = None
    #: seconds of seeded jittered exponential backoff the engine waited
    #: before each retry of this point (one entry per retry; empty when
    #: the first attempt stood or backoff is disabled)
    backoff_s: list[float] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def cycles(self) -> int | None:
        return self.result.cycles if self.result is not None else None

    @property
    def slices(self) -> int | None:
        return self.estimate.total.slices if self.estimate is not None else None

    @property
    def execution_us(self) -> float | None:
        if self.result is None:
            return None
        return self.result.simulated_microseconds

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the per-point record of ``mb32-dse``)."""
        out: dict[str, Any] = {
            "name": self.point.name,
            "kind": self.point.kind.value if self.point.kind else None,
            "params": dict(self.point.params),
            "status": self.status,
            "error": self.error,
            "cycles": self.cycles,
            "cache_hit": self.cache_hit,
            "fingerprint": self.fingerprint,
            "attempts": self.attempts,
            "backoff_s": list(self.backoff_s),
        }
        if self.result is not None:
            out.update(
                cycles=self.result.cycles,
                instructions=self.result.instructions,
                stall_cycles=self.result.stall_cycles,
                simulated_us=self.result.simulated_microseconds,
                wall_seconds=self.result.wall_seconds,
                halt_reason=(
                    self.result.halt_reason.value
                    if self.result.halt_reason is not None
                    else None
                ),
            )
        if self.estimate is not None:
            total = self.estimate.total
            out.update(
                slices=total.slices, brams=total.brams, mult18=total.mult18
            )
        if self.metrics is not None:
            out["metrics"] = self.metrics
        return out


def feasible(
    r: DSEResult,
    max_slices: int | None = None,
    max_brams: int | None = None,
    max_mult18: int | None = None,
) -> bool:
    """Did the point evaluate successfully within the resource budget?"""
    if not r.ok or r.estimate is None:
        return False
    total = r.estimate.total
    if max_slices is not None and total.slices > max_slices:
        return False
    if max_brams is not None and total.brams > max_brams:
        return False
    if max_mult18 is not None and total.mult18 > max_mult18:
        return False
    return True


def rank(
    results: list[DSEResult],
    max_slices: int | None = None,
    max_brams: int | None = None,
    max_mult18: int | None = None,
) -> list[DSEResult]:
    """Sort results fastest-feasible-first.

    Points violating the resource constraints still appear (so reports
    can show them) but sort after all feasible points; failed points
    sort last of all.
    """
    return sorted(
        results,
        key=lambda r: (
            not r.ok,
            not feasible(r, max_slices, max_brams, max_mult18),
            r.cycles if r.cycles is not None else float("inf"),
        ),
    )


def explore(
    points: list[DesignPoint | DesignSpec],
    max_slices: int | None = None,
    max_brams: int | None = None,
    max_mult18: int | None = None,
) -> list[DSEResult]:
    """Evaluate every design point; return results sorted fastest-first.

    .. deprecated::
        ``explore()`` is a thin sequential wrapper kept for
        compatibility; use :func:`repro.cosim.sweep.sweep` to get
        parallel evaluation, per-point statuses, caching and progress
        reporting.  As before, the first failing point aborts with a
        ``RuntimeError`` (the sweep engine instead records it as data).
    """
    warnings.warn(
        "repro.cosim.dse.explore() is deprecated; use "
        "repro.cosim.sweep.sweep() for parallel, fault-tolerant sweeps",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.cosim.sweep import sweep

    report = sweep(points, workers=0)
    for r in report.results:
        if r.status == STATUS_TIMEOUT:
            raise RuntimeError(
                f"design point {r.point.name!r} did not terminate"
            )
        if not r.ok:
            raise RuntimeError(
                f"design point {r.point.name!r} failed self-check "
                f"({r.status}: {r.error})"
            )
    return rank(report.results, max_slices, max_brams, max_mult18)


def best(results: list[DSEResult]) -> DSEResult:
    """First (fastest feasible) result — raises on empty input."""
    if not results:
        raise ValueError("no design points evaluated")
    return results[0]
