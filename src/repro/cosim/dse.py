"""Design-space exploration over partitions and configurations.

This automates what the paper's user does by hand with the
co-simulation environment: evaluate each candidate partition both for
*performance* (cycle count from co-simulation) and *cost* (rapid
resource estimation), then pick the best point under resource
constraints — e.g. "fastest CORDIC configuration using at most 1000
slices".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cosim.environment import CoSimResult
from repro.cosim.partition import DesignPoint
from repro.resources.estimator import DesignEstimate


@dataclass
class DSEResult:
    """Evaluation of one design point."""

    point: DesignPoint
    result: CoSimResult
    estimate: DesignEstimate

    @property
    def cycles(self) -> int:
        return self.result.cycles

    @property
    def slices(self) -> int:
        return self.estimate.total.slices

    @property
    def execution_us(self) -> float:
        return self.result.simulated_microseconds


def explore(
    points: list[DesignPoint],
    max_slices: int | None = None,
    max_brams: int | None = None,
    max_mult18: int | None = None,
) -> list[DSEResult]:
    """Evaluate every design point; return results sorted fastest-first.

    Points violating the resource constraints are still evaluated (so
    reports can show them) but sort after all feasible points.
    """
    results: list[DSEResult] = []
    for point in points:
        instance = point.build()
        result = instance.run()
        if result.exit_code is None:
            raise RuntimeError(
                f"design point {point.name!r} did not terminate"
            )
        if result.exit_code != 0:
            raise RuntimeError(
                f"design point {point.name!r} failed self-check "
                f"(exit code {result.exit_code})"
            )
        results.append(DSEResult(point, result, instance.estimate()))

    def feasible(r: DSEResult) -> bool:
        total = r.estimate.total
        if max_slices is not None and total.slices > max_slices:
            return False
        if max_brams is not None and total.brams > max_brams:
            return False
        if max_mult18 is not None and total.mult18 > max_mult18:
            return False
        return True

    results.sort(key=lambda r: (not feasible(r), r.cycles))
    return results


def best(results: list[DSEResult]) -> DSEResult:
    """First (fastest feasible) result — raises on empty input."""
    if not results:
        raise ValueError("no design points evaluated")
    return results[0]
