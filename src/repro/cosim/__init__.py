"""The high-level cycle-accurate HW/SW co-simulation environment.

This is the paper's contribution (Section III): couple

* the cycle-accurate instruction simulator (:mod:`repro.iss`) running
  the compiled C program — the *software execution platform*,
* the arithmetic-level hardware model (:mod:`repro.sysgen`) — the
  *customized hardware peripherals*,
* the FSL FIFO models (:mod:`repro.bus.fsl`) — the *communication
  interface*,

under one clock.  The :class:`~repro.cosim.mb_block.MicroBlazeBlock`
plays the role of the paper's "MicroBlaze Simulink block": it owns the
FSL channels, exposes their hardware-side ports into the sysgen model
and shares the same channel objects with the CPU's FSL unit, keeping
both worlds cycle-consistent.
"""

from repro.cosim.mb_block import MicroBlazeBlock
from repro.cosim.environment import (
    CoSimDeadlock,
    CoSimResult,
    CoSimTimeout,
    CoSimulation,
    FastForwardError,
    run_timeout,
)
from repro.cosim.topology import (
    LinkSpec,
    TOPOLOGY_KINDS,
    TopologyError,
    TopologySpec,
)
from repro.cosim.multicpu import (
    CPUNode,
    MultiCoSimResult,
    MultiCoSimulation,
)
from repro.cosim.partition import DesignPoint, DesignSpec, PartitionKind
from repro.cosim.dse import DSEResult, explore
from repro.cosim.report import format_sweep, format_table
from repro.cosim.sweep import (
    SweepCache,
    SweepProgress,
    SweepReport,
    sweep,
)
from repro.cosim.sweep_batched import sweep_batched
from repro.cosim.batch import BatchedCoSimulation, LaneResult

__all__ = [
    "MicroBlazeBlock",
    "CoSimulation",
    "CoSimResult",
    "CoSimDeadlock",
    "CoSimTimeout",
    "FastForwardError",
    "run_timeout",
    "LinkSpec",
    "TOPOLOGY_KINDS",
    "TopologyError",
    "TopologySpec",
    "CPUNode",
    "MultiCoSimResult",
    "MultiCoSimulation",
    "DesignPoint",
    "DesignSpec",
    "PartitionKind",
    "explore",
    "DSEResult",
    "sweep",
    "sweep_batched",
    "BatchedCoSimulation",
    "LaneResult",
    "SweepCache",
    "SweepProgress",
    "SweepReport",
    "format_table",
    "format_sweep",
]
