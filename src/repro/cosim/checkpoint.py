"""Versioned, fingerprinted on-disk checkpoints of a co-simulation.

A checkpoint is a JSON document with three layers of protection:

* a **format version** (:data:`CHECKPOINT_VERSION`) so a future layout
  change fails loudly instead of silently misrestoring,
* a **configuration fingerprint** binding the snapshot to the exact
  program image, CPU configuration and model structure it was taken
  from — restoring into a different design is an error, not a corrupted
  run,
* a **payload digest** (sha256 over the canonical state JSON) so a
  truncated or hand-edited file is rejected before any state is loaded.

On disk the document travels inside the shared durable envelope
(:mod:`repro.runapi.durable`): writes fsync the file and its parent
directory (a host crash cannot lose the rename), and reads verify a
whole-file length+sha256 frame before parsing.

Restore-then-continue is bit-identical to an uninterrupted run: the
state dict covers every observable (``tests/test_checkpoint.py``
enforces this against the conformance oracle's observation surface in
both per-cycle and fast-forward modes).
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.runapi.durable import (
    DurableError,
    decode_envelope,
    durable_write,
    is_envelope,
)

#: bump when the state-dict layout changes incompatibly
CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """Raised for unreadable, corrupt or mismatched checkpoint files."""


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _payload_digest(state: dict) -> str:
    return hashlib.sha256(_canonical(state).encode()).hexdigest()


def sim_fingerprint(sim) -> str:
    """Deterministic identity of the *configuration* (not the state):
    program image + entry, CPU configuration, model structure (block
    names/types, probe count) and FSL channel names/depths.

    Accepts a single-CPU :class:`CoSimulation` or a
    :class:`~repro.cosim.multicpu.MultiCoSimulation`; the K-CPU
    fingerprint additionally binds the topology wiring and every
    node's program/configuration, so a checkpoint cannot restore into
    a differently shaped system.
    """
    h = hashlib.sha256()
    if hasattr(sim, "topology"):  # MultiCoSimulation
        h.update(repr(sim.topology.signature()).encode())
        for node in sim.nodes:
            h.update(node.name.encode())
            h.update(node.program.image)
            h.update(str(node.program.entry).encode())
            h.update(repr(node.cpu.config).encode())
        for channel in sim.links.values():
            h.update(f"{channel.name}:{channel.depth}".encode())
    else:
        h.update(sim.program.image)
        h.update(str(sim.program.entry).encode())
        h.update(repr(sim.cpu.config).encode())
    for model in sim._models:
        h.update(model.name.encode())
        for block in model.blocks:
            h.update(f"{block.name}:{type(block).__name__}".encode())
        h.update(str(len(model.probes)).encode())
    if hasattr(sim, "topology"):
        for node in sim.nodes:
            if node.mb_block is not None:
                for channel in node.mb_block.channels():
                    h.update(f"{channel.name}:{channel.depth}".encode())
    else:
        for channel in sim.mb_block.channels():
            h.update(f"{channel.name}:{channel.depth}".encode())
    return h.hexdigest()


def checkpoint_to_dict(sim, label: str = "") -> dict:
    """Build the full checkpoint document (in-memory form)."""
    state = sim.state_dict()
    cycle = sim.cycle if hasattr(sim, "topology") else sim.cpu.cycle
    return {
        "format": "mb32-checkpoint",
        "version": CHECKPOINT_VERSION,
        "label": label,
        "fingerprint": sim_fingerprint(sim),
        "cycle": cycle,
        "digest": _payload_digest(state),
        "state": state,
    }


def restore_from_dict(sim, doc: dict) -> None:
    """Validate and load a checkpoint document into ``sim``."""
    if not isinstance(doc, dict) or doc.get("format") != "mb32-checkpoint":
        raise CheckpointError("not an mb32 checkpoint document")
    if doc.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint version {doc.get('version')} unsupported "
            f"(expected {CHECKPOINT_VERSION})"
        )
    fingerprint = sim_fingerprint(sim)
    if doc.get("fingerprint") != fingerprint:
        raise CheckpointError(
            "checkpoint was taken from a different configuration "
            f"(fingerprint {str(doc.get('fingerprint'))[:12]}… != "
            f"{fingerprint[:12]}…)"
        )
    state = doc.get("state")
    if not isinstance(state, dict):
        raise CheckpointError("checkpoint has no state payload")
    if doc.get("digest") != _payload_digest(state):
        raise CheckpointError("checkpoint payload digest mismatch "
                              "(truncated or modified file)")
    sim.load_state(state)


def save_checkpoint(sim, path: str, label: str = "") -> dict:
    """Write a checkpoint durably (tmp + rename + fsync of the file
    *and* its parent directory, through the shared
    :func:`repro.runapi.durable.durable_write` envelope — a host crash
    can neither lose the rename nor leave torn contents); returns the
    doc."""
    doc = checkpoint_to_dict(sim, label)
    try:
        durable_write(path, json.dumps(doc).encode())
    except OSError as exc:
        raise CheckpointError(f"cannot write checkpoint {path}: {exc}") from exc
    return doc


def load_checkpoint(sim, path: str) -> dict:
    """Read, validate and load a checkpoint file into ``sim``.

    Envelope-framed checkpoints are integrity-verified before any
    JSON parsing; files written by pre-envelope versions (raw JSON)
    load transparently, falling back to the in-document payload digest
    for damage detection.
    """
    try:
        with open(path, "rb") as fh:
            blob = fh.read()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if is_envelope(blob):
        try:
            blob = decode_envelope(blob)
        except DurableError as exc:
            raise CheckpointError(
                f"checkpoint {path} is damaged ({exc.reason}): {exc}"
            ) from exc
    try:
        doc = json.loads(blob)
    except ValueError as exc:
        raise CheckpointError(f"checkpoint {path} is not JSON: {exc}") from exc
    restore_from_dict(sim, doc)
    return doc
