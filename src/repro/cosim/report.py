"""Reporting helpers for benches and the DSE: aligned ASCII tables for
terminals, plus the JSON and Markdown emitters behind ``mb32-dse``."""

from __future__ import annotations

import json
from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table (the bench harness prints the
    paper's tables through this)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _dse_row(r) -> tuple:
    """One result row; failed points render with dashes."""
    if r.estimate is not None and r.result is not None:
        total = r.estimate.total
        return (
            str(r.point),
            r.result.cycles,
            f"{r.result.simulated_microseconds:.1f}",
            total.slices,
            total.brams,
            total.mult18,
        )
    return (str(r.point), "-", "-", "-", "-", "-")


def format_dse(results) -> str:
    """Table of design-space exploration results."""
    return format_table(
        ["design", "cycles", "time (us)", "slices", "BRAMs", "MULT18s"],
        [_dse_row(r) for r in results],
    )


# ----------------------------------------------------------------------
# Sweep reports (mb32-dse)
# ----------------------------------------------------------------------
def format_sweep(report) -> str:
    """Terminal table for a :class:`~repro.cosim.sweep.SweepReport`."""
    rows = []
    for r in report.results:
        cycles = r.cycles if r.cycles is not None else "-"
        us = f"{r.execution_us:.1f}" if r.execution_us is not None else "-"
        slices = r.slices if r.slices is not None else "-"
        rows.append(
            (
                r.point.name,
                r.status,
                cycles,
                us,
                slices,
                "hit" if r.cache_hit else "",
                (r.error or "")[:60],
            )
        )
    table = format_table(
        ["design", "status", "cycles", "time (us)", "slices", "cache",
         "error"],
        rows,
    )
    summary = (
        f"{len(report.ok)}/{len(report.results)} ok, "
        f"{report.cache_hits} cache hits, "
        f"{report.workers} workers, "
        f"{report.wall_seconds:.2f}s wall"
    )
    return f"{table}\n\n{summary}"


def sweep_to_json(report, indent: int = 2) -> str:
    """JSON report of a sweep — the ``mb32-dse -o`` payload."""
    return json.dumps(report.to_dict(), indent=indent, sort_keys=False)


# ----------------------------------------------------------------------
# Conformance reports (mb32-conformance)
# ----------------------------------------------------------------------
def format_conformance(report) -> str:
    """Terminal table for a
    :class:`~repro.conformance.oracle.ConformanceReport`."""
    rows = []
    for verdict in report.verdicts:
        if verdict.ok:
            detail = ""
        elif verdict.build_error:
            detail = f"build: {verdict.build_error}"[:70]
        else:
            mode = sorted(verdict.divergences)[0]
            div = verdict.divergences[mode]
            detail = (f"{mode} @ {div['path']}: "
                      f"{div['reference']!r} -> {div['observed']!r}")[:70]
        rows.append(
            (
                verdict.scenario.name,
                "ok" if verdict.ok else "DIVERGED",
                verdict.reference.status if verdict.reference else "-",
                verdict.reference.cycles if verdict.reference else "-",
                detail,
            )
        )
    table = format_table(
        ["scenario", "verdict", "status", "cycles", "first divergence"],
        rows,
    )
    counts = ", ".join(f"{status}: {n}"
                       for status, n in report.status_counts().items())
    summary = (
        f"{report.total - len(report.failed)}/{report.total} scenarios "
        f"bit-identical across {len(report.modes)} modes ({counts})"
    )
    return f"{table}\n\n{summary}"


def conformance_to_json(report, indent: int = 2) -> str:
    """JSON report of a conformance run — the ``mb32-conformance -o``
    payload.  Keys are sorted and nothing wall-clock-dependent is
    included, so the same seed always produces a byte-identical file."""
    return json.dumps(report.to_dict(), indent=indent, sort_keys=True)


def format_drift(entries) -> str:
    """Terminal table for golden-corpus drift entries
    (:class:`~repro.conformance.golden.DriftEntry`)."""
    rows = [(e.name, e.kind, e.path or "", (e.message or "")[:70])
            for e in entries]
    table = format_table(["golden", "kind", "observable", "detail"], rows)
    bad = [e for e in entries if not e.ok]
    summary = (f"{len(entries) - len(bad)}/{len(entries)} golden traces "
               f"clean, {len(bad)} drifted")
    return f"{table}\n\n{summary}"


def sweep_to_markdown(report) -> str:
    """Markdown report of a sweep — the ``mb32-dse --markdown`` payload."""
    lines = [
        "# Design-space sweep report",
        "",
        f"- points: {len(report.results)} "
        f"({len(report.ok)} ok, {len(report.failed)} failed)",
        f"- workers: {report.workers}",
        f"- cache hits: {report.cache_hits}",
        f"- wall time: {report.wall_seconds:.2f} s",
        "",
        "| design | status | cycles | time (µs) | slices | BRAMs "
        "| MULT18s | cache | error |",
        "|---|---|---:|---:|---:|---:|---:|---|---|",
    ]
    for r in report.results:
        if r.estimate is not None:
            total = r.estimate.total
            slices, brams, mult18 = total.slices, total.brams, total.mult18
        else:
            slices = brams = mult18 = "-"
        cycles = r.cycles if r.cycles is not None else "-"
        us = f"{r.execution_us:.1f}" if r.execution_us is not None else "-"
        error = (r.error or "").replace("|", "\\|").replace("\n", " ")
        lines.append(
            f"| {r.point.name} | {r.status} | {cycles} | {us} | {slices} "
            f"| {brams} | {mult18} | {'hit' if r.cache_hit else ''} "
            f"| {error} |"
        )
    ranked = [r for r in report.ranked() if r.ok]
    if ranked:
        lines += ["", f"**Fastest:** {ranked[0].point.name} "
                      f"({ranked[0].cycles} cycles)"]
    return "\n".join(lines) + "\n"
