"""Plain-text reporting helpers for benches and the DSE."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table (the bench harness prints the
    paper's tables through this)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_dse(results) -> str:
    """Table of design-space exploration results."""
    rows = []
    for r in results:
        total = r.estimate.total
        rows.append(
            (
                str(r.point),
                r.result.cycles,
                f"{r.result.simulated_microseconds:.1f}",
                total.slices,
                total.brams,
                total.mult18,
            )
        )
    return format_table(
        ["design", "cycles", "time (us)", "slices", "BRAMs", "MULT18s"], rows
    )
