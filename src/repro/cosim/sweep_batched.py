"""Design-space sweeps on the lockstep vector engine.

:func:`sweep_batched` is the batched sibling of
:func:`repro.cosim.sweep.sweep`: it evaluates the same design points
and returns the same :class:`~repro.cosim.sweep.SweepReport`, but
points whose hardware is structurally identical (same
:func:`~repro.sysgen.batched.lockstep_signature` — the blocks, ports,
wiring and probes, not the value-like parameters) are simulated
together as lanes of one :class:`~repro.cosim.batch.BatchedCoSimulation`
instead of one by one.  Programs may differ per lane, so e.g. a CORDIC
sweep over datasets, iteration counts or compiler options batches even
though every point compiles its own executable.

Everything the vector engine cannot express falls back to the scalar
per-point evaluator with identical classification: software-only
points (no hardware model), points whose signature matches no other
point (a single lane gains nothing), structurally incompatible groups
(:class:`~repro.sysgen.batched.BatchUnsupported`), and lanes the
engine evicts mid-flight (replayed from cycle 0 on the scalar engine —
determinism makes the replay bit-identical).  Post-run acceptance runs
through the design's ``check(cpu, result)`` hook when it has one — the
exact tail of its ``run()`` — so verdicts and diagnostic text match
the scalar sweep byte for byte; instances without the hook get the
same exit-code classification :func:`~repro.cosim.sweep._evaluate`
applies.

The report differs from a ``workers=0`` scalar sweep only in
wall-clock fields (``wall_seconds`` and per-result timing, which are
not conformance observables) — the equivalence test in
``tests/test_batched_cosim.py`` locks this down.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Iterable

from repro.cosim.batch import BatchedCoSimulation, LaneResult, lane_factory
from repro.cosim.dse import (
    DSEResult,
    STATUS_DEADLOCK,
    STATUS_ERROR,
    STATUS_OK,
    STATUS_SELF_CHECK,
    STATUS_TIMEOUT,
)
from repro.cosim.environment import (
    CoSimDeadlock,
    CoSimTimeout,
    CoSimulation,
)
from repro.cosim.partition import DesignPoint, DesignSpec
from repro.cosim.sweep import (
    SweepCache,
    SweepProgress,
    SweepReport,
    _run_and_classify,
    _to_dse_result,
    point_fingerprint,
)
from repro.runapi import RunPolicy
from repro.runapi.engine import engine_scope
from repro.sysgen.batched import lockstep_signature

DEFAULT_BATCH_WIDTH = 32


def _fresh_payload() -> dict[str, Any]:
    return {
        "status": STATUS_ERROR,
        "error": None,
        "result": None,
        "estimate": None,
        "fingerprint": None,
        "cache_hit": False,
        "metrics": None,
    }


def _classify_lane(
    payload: dict[str, Any],
    lane_result: LaneResult,
    instance,
    cpu,
) -> None:
    """Fold one lane's outcome into a sweep payload, applying exactly
    the ladder the scalar evaluator applies around ``instance.run()``:
    run-level exceptions first, then the design's own post-run
    ``check`` (or the generic exit-code classification), then resource
    estimation."""
    exc = lane_result.error
    if exc is not None:
        if isinstance(exc, CoSimTimeout):
            payload.update(status=STATUS_TIMEOUT, error=str(exc))
        elif isinstance(exc, CoSimDeadlock):
            payload.update(status=STATUS_DEADLOCK, error=str(exc))
        elif isinstance(exc, AssertionError):
            payload.update(
                status=STATUS_SELF_CHECK,
                error=f"{type(exc).__name__}: {exc}",
            )
        else:
            payload.update(
                status=STATUS_ERROR, error=f"{type(exc).__name__}: {exc}"
            )
        return

    result = lane_result.result
    check = getattr(instance, "check", None)
    if check is not None:
        try:
            check(cpu, result)
        except AssertionError as exc:
            # the scalar path raises out of instance.run(): the result
            # is discarded and only the diagnostic survives
            payload.update(
                status=STATUS_SELF_CHECK,
                error=f"{type(exc).__name__}: {exc}",
            )
            return
        except Exception as exc:  # noqa: BLE001 - classified, not raised
            payload.update(
                status=STATUS_ERROR, error=f"{type(exc).__name__}: {exc}"
            )
            return
    elif result.exit_code is None:
        payload.update(
            status=STATUS_TIMEOUT,
            error="did not terminate within max_cycles",
            result=result,
        )
        return
    elif result.exit_code != 0:
        payload.update(
            status=STATUS_SELF_CHECK,
            error=f"failed self-check (exit code {result.exit_code})",
            result=result,
        )
        return

    try:
        estimate = instance.estimate()
    except Exception as exc:  # noqa: BLE001 - classified, not raised
        payload.update(
            status=STATUS_ERROR,
            error=f"resource estimation failed: {type(exc).__name__}: {exc}",
            result=result,
        )
        return
    payload.update(status=STATUS_OK, result=result, estimate=estimate)


def sweep_batched(
    points: Iterable[DesignPoint | DesignSpec],
    *,
    batch_width: int = DEFAULT_BATCH_WIDTH,
    timeout_s: float | None = None,
    cache_dir: str | None = None,
    progress: Callable[[SweepProgress], None] | None = None,
) -> SweepReport:
    """Evaluate every design point, batching compatible hardware.

    Parameters
    ----------
    points:
        The same :class:`DesignSpec` / :class:`DesignPoint` records
        :func:`~repro.cosim.sweep.sweep` takes.
    batch_width:
        Maximum lanes per vector batch; a compatibility group larger
        than this is split into consecutive chunks.
    timeout_s:
        Wall-clock budget applied to each *batch* (and to each scalar
        fallback point) via :class:`~repro.runapi.RunPolicy` — lanes
        still running when it expires report ``timeout``.  Unlike the
        scalar sweep's per-point budget this is shared by the whole
        chunk, so timeouts are coarser under batching (wall-clock
        outcomes are environmental either way).
    cache_dir:
        Same on-disk result cache as the scalar sweep — entries are
        interchangeable between the two engines.
    progress:
        Callback receiving a :class:`SweepProgress` after each
        completed point.

    Everything else (retries, journals, telemetry, worker pools) is a
    scalar-sweep feature: run those sweeps through
    :func:`~repro.cosim.sweep.sweep`.
    """
    if batch_width < 1:
        raise ValueError("batch_width must be >= 1")
    points = list(points)
    total = len(points)
    start = time.perf_counter()
    cache = SweepCache(cache_dir) if cache_dir is not None else None
    payloads: list[dict[str, Any] | None] = [None] * total
    instances: list[Any] = [None] * total
    state = {"done": 0, "cache_hits": 0, "cycles": 0}
    results: list[DSEResult | None] = [None] * total

    def record(index: int) -> None:
        result = _to_dse_result(points[index], payloads[index], attempts=1)
        results[index] = result
        state["done"] += 1
        if result.cache_hit:
            state["cache_hits"] += 1
        if result.result is not None:
            state["cycles"] += result.result.cycles
        if progress is not None:
            progress(
                SweepProgress(
                    total=total,
                    done=state["done"],
                    cache_hits=state["cache_hits"],
                    active_workers=0,
                    wall_seconds=time.perf_counter() - start,
                    cycles_done=state["cycles"],
                    last=result,
                )
            )

    # --- build, fingerprint, consult the cache, group ----------------
    scalar: list[int] = []
    groups: dict[Any, list[int]] = {}
    for index, point in enumerate(points):
        payload = _fresh_payload()
        payloads[index] = payload
        try:
            instance = point.build()
        except Exception as exc:  # noqa: BLE001 - classified, not raised
            payload["error"] = f"build failed: {type(exc).__name__}: {exc}"
            record(index)
            continue
        instances[index] = instance
        fingerprint = point_fingerprint(point, instance)
        payload["fingerprint"] = fingerprint
        if cache is not None:
            hit = cache.get(fingerprint)
            if hit is not None:
                result, estimate = hit
                payload.update(
                    status=STATUS_OK, result=result, estimate=estimate,
                    cache_hit=True,
                )
                record(index)
                continue
        model = getattr(instance, "model", None)
        if model is None:
            scalar.append(index)  # software-only partition
            continue
        try:
            signature = lockstep_signature(model)
        except Exception:  # noqa: BLE001 - unbatchable structure
            scalar.append(index)
            continue
        groups.setdefault(signature, []).append(index)

    # a lone lane gains nothing from the vector engine
    for signature, members in list(groups.items()):
        if len(members) < 2:
            scalar.extend(members)
            del groups[signature]

    # --- run each compatibility group in lockstep chunks -------------
    policy = RunPolicy(wall_timeout_s=timeout_s)
    for members in groups.values():
        for lo in range(0, len(members), batch_width):
            chunk = members[lo:lo + batch_width]
            try:
                with engine_scope("interpreter"):
                    sims = [
                        CoSimulation(
                            instances[i].program,
                            instances[i].model,
                            instances[i].mb,
                            cpu_config=instances[i].cpu_config,
                        )
                        for i in chunk
                    ]
                batch = BatchedCoSimulation(
                    [lane_factory(points[i].build) for i in chunk],
                    sims=sims,
                )
            except Exception:  # noqa: BLE001 - scalar engine reproduces it
                scalar.extend(chunk)
                continue
            lane_results = batch.run(policy=policy)
            for lane, index in enumerate(chunk):
                _classify_lane(
                    payloads[index],
                    lane_results[lane],
                    instances[index],
                    batch.lane(lane).cpu,
                )
                payload = payloads[index]
                if payload["status"] == STATUS_OK and cache is not None:
                    cache.put(
                        payload["fingerprint"],
                        payload["result"],
                        payload["estimate"],
                    )
                record(index)

    # --- scalar fallbacks --------------------------------------------
    for index in sorted(scalar):
        payload = payloads[index]
        _run_and_classify(instances[index], payload, timeout_s)
        if payload["status"] == STATUS_OK and cache is not None:
            cache.put(
                payload["fingerprint"],
                payload["result"],
                payload["estimate"],
            )
        record(index)

    return SweepReport(
        results=list(results),  # type: ignore[arg-type]
        wall_seconds=time.perf_counter() - start,
        workers=0,
    )
