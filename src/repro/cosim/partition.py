"""Hardware/software partition descriptions.

The paper's motivation is exploring "various partitions of the
applications on hardware and software" and "various configurations of
the soft processor".  A :class:`DesignPoint` names one candidate: which
portion runs as software, which as a customized peripheral, with which
parameters (number of CORDIC PEs, matrix block size, processor
options).  The design-space explorer (:mod:`repro.cosim.dse`)
instantiates and evaluates them.
"""

from __future__ import annotations

import enum
import importlib
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.cosim.environment import CoSimResult
from repro.resources.estimator import DesignEstimate


class PartitionKind(enum.Enum):
    SOFTWARE_ONLY = "software"
    HW_ACCELERATED = "hw-accelerated"


class DesignInstance(Protocol):
    """What a built design point must offer to the explorer."""

    def run(self) -> CoSimResult:
        """Co-simulate the application; returns timing results."""
        ...

    def estimate(self) -> DesignEstimate:
        """Rapid resource estimation (Section III-C)."""
        ...


@dataclass
class DesignPoint:
    """One candidate partition/configuration."""

    name: str
    kind: PartitionKind
    build: Callable[[], DesignInstance]
    params: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"{self.name} ({self.kind.value}{', ' + extras if extras else ''})"


@dataclass
class DesignSpec:
    """A picklable, JSON-able description of one design point.

    Unlike :class:`DesignPoint`, whose ``build`` is an arbitrary
    closure, a spec names its factory by dotted path
    (``"package.module:callable"``), so sweep worker processes can
    rebuild the instance locally and ``mb32-dse`` spec files can
    round-trip through JSON.  ``params`` are passed as keyword
    arguments to the factory; a ``cpu_config`` entry given as a plain
    dict is promoted to a :class:`~repro.iss.cpu.CPUConfig`.
    """

    name: str
    factory: str
    params: dict[str, Any] = field(default_factory=dict)
    kind: PartitionKind | None = None

    def resolve(self) -> Callable[..., DesignInstance]:
        """Import and return the factory callable."""
        modname, sep, attr = self.factory.partition(":")
        if not sep or not attr:
            raise ValueError(
                f"design spec {self.name!r}: factory must be "
                f"'module.path:callable', got {self.factory!r}"
            )
        obj: Any = importlib.import_module(modname)
        for part in attr.split("."):
            obj = getattr(obj, part)
        return obj

    def build(self) -> DesignInstance:
        params = dict(self.params)
        cpu_config = params.get("cpu_config")
        if isinstance(cpu_config, dict):
            from repro.iss.cpu import CPUConfig

            params["cpu_config"] = CPUConfig(**cpu_config)
        return self.resolve()(**params)

    # -- spec-file round trip ------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "factory": self.factory,
            "params": dict(self.params),
        }
        if self.kind is not None:
            out["kind"] = self.kind.value
        return out

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DesignSpec":
        kind = data.get("kind")
        return cls(
            name=data["name"],
            factory=data["factory"],
            params=dict(data.get("params", {})),
            kind=PartitionKind(kind) if kind is not None else None,
        )

    def __str__(self) -> str:
        extras = ", ".join(f"{k}={v}" for k, v in self.params.items())
        kind = self.kind.value if self.kind is not None else "spec"
        return f"{self.name} ({kind}{', ' + extras if extras else ''})"
