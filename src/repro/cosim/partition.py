"""Hardware/software partition descriptions.

The paper's motivation is exploring "various partitions of the
applications on hardware and software" and "various configurations of
the soft processor".  A :class:`DesignPoint` names one candidate: which
portion runs as software, which as a customized peripheral, with which
parameters (number of CORDIC PEs, matrix block size, processor
options).  The design-space explorer (:mod:`repro.cosim.dse`)
instantiates and evaluates them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.cosim.environment import CoSimResult
from repro.resources.estimator import DesignEstimate


class PartitionKind(enum.Enum):
    SOFTWARE_ONLY = "software"
    HW_ACCELERATED = "hw-accelerated"


class DesignInstance(Protocol):
    """What a built design point must offer to the explorer."""

    def run(self) -> CoSimResult:
        """Co-simulate the application; returns timing results."""
        ...

    def estimate(self) -> DesignEstimate:
        """Rapid resource estimation (Section III-C)."""
        ...


@dataclass
class DesignPoint:
    """One candidate partition/configuration."""

    name: str
    kind: PartitionKind
    build: Callable[[], DesignInstance]
    params: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        extras = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"{self.name} ({self.kind.value}{', ' + extras if extras else ''})"
