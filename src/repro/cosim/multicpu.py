"""K-CPU co-simulation: soft-processor arrays over FSL links.

:class:`MultiCoSimulation` generalizes the single-MicroBlaze
:class:`~repro.cosim.environment.CoSimulation` to K processors wired
into a :class:`~repro.cosim.topology.TopologySpec`: each inter-CPU link
is one plain FSL FIFO connected as a master (``put``) channel on the
source CPU's FSL unit and a slave (``get``) channel on the destination
CPU's — no hardware block mediates, exactly like a physical FSL wire
between two soft processors.  Every CPU may additionally carry its own
hardware model behind its own
:class:`~repro.cosim.mb_block.MicroBlazeBlock` (with a per-node channel
name prefix so names stay system-unique).

Deterministic inter-CPU ordering
--------------------------------
Per global cycle, non-halted CPUs tick in **node-index order**, then
every hardware model steps (node order).  A word pushed by CPU *i* in
cycle *t* is therefore visible to CPU *j*'s blocking/non-blocking get
in the *same* cycle iff ``i < j``, and in cycle *t+1* otherwise.  This
is the ordering contract all five conformance execution modes must
reproduce bit-for-bit.

Fast-forward soundness for K CPUs carries over from the single-CPU
argument: a window is only skipped when every *active* CPU reports a
positive ``advance_horizon()`` — i.e. none can issue an instruction or
complete a pending FSL transfer during the window — so no FIFO (link
or peripheral) changes state inside it, and every hardware model is
quiescent.  ``cpu.advance()`` itself re-validates the preconditions
and mirrors the per-cycle reject/stall accounting per CPU.

CPUs that exit stop ticking (their local cycle freezes at the exit
cycle, as it would under per-cycle execution); the run ends when all
CPUs halted or the global budget is exhausted.  The progress watchdog
trips when **no active CPU** has retired an instruction for a full
window.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.asm.linker import Program
from repro.bus.fsl import FSLChannel
from repro.cosim.environment import (
    CoSimDeadlock,
    CoSimResult,
    CoSimTimeout,
    FastForwardError,
)
from repro.cosim import environment as _environment
from repro.cosim.mb_block import MicroBlazeBlock
from repro.cosim.topology import TopologySpec
from repro.iss.cpu import ADVANCE_FOREVER, CPU, CPUConfig, HaltReason
from repro.iss.run import make_cpu
from repro.runapi import RunOutcome, RunPolicy
from repro.runapi.engine import (
    ENGINES,
    SCALAR_ENGINES,
    EngineError,
    current_engine,
)
from repro.sysgen.model import Model
from repro.telemetry import Telemetry, current_telemetry
from repro.telemetry.events import (
    COSIM_TRACK,
    DEADLOCK,
    FAST_FORWARD,
    TelemetryEvent,
)

__all__ = [
    "CPUNode",
    "MultiCoSimResult",
    "MultiCoSimulation",
]


@dataclass
class CPUNode:
    """One processor of a multi-CPU system.

    ``model``/``mb_block`` attach node-local hardware (built with a
    per-node :class:`MicroBlazeBlock` whose channel ids must not clash
    with the node's topology link channels).  ``name`` becomes the
    node's telemetry track and state-dict key; it defaults to
    ``cpu{index}``.
    """

    program: Program
    cpu_config: CPUConfig | None = None
    model: Model | None = None
    mb_block: MicroBlazeBlock | None = None
    memory_size: int | None = None
    name: str = ""
    #: filled in by MultiCoSimulation
    cpu: CPU = field(default=None, repr=False)  # type: ignore[assignment]


@dataclass
class MultiCoSimResult(RunOutcome):
    """Outcome of one multi-CPU run: the aggregate plus one
    :class:`~repro.cosim.environment.CoSimResult` per CPU (node order).

    ``cycles`` counts *global* clock cycles of this run; per-CPU cycle
    deltas can be shorter when a processor exited early.  ``exit_code``
    aggregates: ``None`` while any CPU has not exited, else the first
    nonzero code in node order, else 0.
    """

    exit_code: int | None
    cycles: int
    instructions: int
    stall_cycles: int
    wall_seconds: float
    simulated_seconds: float
    halt_reason: HaltReason | None
    cpus: tuple[CoSimResult, ...] = ()

    # the aggregate behaves exactly like a CoSimResult
    status = CoSimResult.status
    error = CoSimResult.error
    cycles_per_wall_second = CoSimResult.cycles_per_wall_second
    simulated_microseconds = CoSimResult.simulated_microseconds

    def extra_dict(self) -> dict:
        out = CoSimResult.extra_dict(self)
        out["cpus"] = [r.to_dict() for r in self.cpus]
        return out


class MultiCoSimulation:
    """Couples K CPUs over FSL point-to-point links (plus optional
    per-node hardware models) under one global clock."""

    DEADLOCK_WINDOW = _environment.CoSimulation.DEADLOCK_WINDOW

    def __init__(
        self,
        nodes: list[CPUNode],
        topology: TopologySpec,
        *,
        link_depth: int = FSLChannel.DEFAULT_DEPTH,
        fast_forward: bool = True,
        verify_fast_forward: bool = False,
        telemetry: Telemetry | None = None,
        deadlock_window: int | None = None,
        engine: str = "auto",
    ):
        if len(nodes) != topology.n_cpus:
            raise ValueError(
                f"topology expects {topology.n_cpus} CPUs, "
                f"got {len(nodes)} nodes")
        self.nodes = list(nodes)
        self.topology = topology
        self.link_depth = link_depth
        self.fast_forward = fast_forward
        self.verify_fast_forward = verify_fast_forward
        if engine not in ENGINES:
            raise EngineError(
                f"unknown engine {engine!r}; expected one of "
                f"{', '.join(ENGINES)}")
        if engine == "auto":
            ambient = current_engine()
            if ambient in SCALAR_ENGINES:
                engine = ambient
        if engine == "batched":
            raise EngineError(
                "engine='batched' is the N-simulations lockstep engine; "
                "a multi-CPU system is one simulation — batch whole "
                "MultiCoSimulations via scalar lanes instead")
        self.engine_request = engine

        #: inter-CPU FIFOs keyed by link name, in topology link order
        self.links: dict[str, FSLChannel] = topology.build_channels(link_depth)

        for index, node in enumerate(self.nodes):
            if not node.name:
                node.name = f"cpu{index}"
            ports = (node.mb_block.fsl_ports if node.mb_block is not None
                     else None)
            node.cpu = make_cpu(
                node.program,
                config=node.cpu_config,
                fsl=ports,
                memory_size=node.memory_size,
            )
            node.cpu.track = node.name
        for link in topology.links:
            channel = self.links[link.name]
            self.nodes[link.src].cpu.fsl.connect_output(
                link.src_channel, channel)
            self.nodes[link.dst].cpu.fsl.connect_input(
                link.dst_channel, channel)

        self.cpus: list[CPU] = [node.cpu for node in self.nodes]
        self._models: list[Model] = [
            node.model for node in self.nodes if node.model is not None
        ]
        if engine in SCALAR_ENGINES:
            for model in self._models:
                model.set_engine(engine)
        for model in self._models:
            model.compile()
        self._stores_touch_hw = any(
            hasattr(block, "opb_write")
            for m in self._models
            for block in m.blocks
        )
        if deadlock_window is not None:
            if deadlock_window < 1:
                raise ValueError("deadlock_window must be >= 1")
            self.DEADLOCK_WINDOW = deadlock_window
        #: the global clock — every non-halted CPU's local cycle tracks
        #: it; halted CPUs freeze at their exit cycle
        self._cycle = 0
        self.telemetry = telemetry if telemetry is not None \
            else current_telemetry()
        if self.telemetry is not None:
            self._attach_telemetry(self.telemetry)

    def _attach_telemetry(self, telemetry: Telemetry) -> None:
        clock = lambda: self._cycle  # noqa: E731
        for node in self.nodes:
            telemetry.attach_cpu(node.cpu)
            if node.mb_block is not None:
                for channel in node.mb_block.channels():
                    telemetry.attach_channel(channel, clock)
            if node.model is not None:
                for block in node.model.blocks:
                    telemetry.attach_block(block, clock)
        for channel in self.links.values():
            telemetry.attach_channel(channel, clock)

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    @property
    def cycle(self) -> int:
        """The global clock (== every active CPU's local cycle)."""
        return self._cycle

    @property
    def n_cpus(self) -> int:
        return len(self.nodes)

    @property
    def halted(self) -> bool:
        return all(cpu.halted for cpu in self.cpus)

    @property
    def halt_reason(self) -> HaltReason | None:
        """Aggregate halt reason: MAX_CYCLES while any CPU is parked on
        the budget, else the first non-EXIT reason, else EXIT."""
        reasons = [cpu.halt_reason for cpu in self.cpus]
        if any(r is HaltReason.MAX_CYCLES for r in reasons):
            return HaltReason.MAX_CYCLES
        if any(r is None for r in reasons):
            return None
        for reason in reasons:
            if reason is not HaltReason.EXIT:
                return reason
        return HaltReason.EXIT

    @property
    def exit_code(self) -> int | None:
        codes = [cpu.exit_code for cpu in self.cpus]
        if any(code is None for code in codes):
            return None
        return next((code for code in codes if code != 0), 0)

    def resume(self) -> None:
        """Clear MAX_CYCLES/breakpoint halts on every CPU (exited
        processors stay exited) so a further ``run()`` segment
        continues."""
        for cpu in self.cpus:
            if cpu.halted and cpu.halt_reason is not HaltReason.EXIT:
                cpu.resume()

    def all_channels(self) -> tuple[FSLChannel, ...]:
        """Every FSL FIFO of the system: inter-CPU links (topology
        order) then each node's peripheral channels (node order)."""
        channels = list(self.links.values())
        for node in self.nodes:
            if node.mb_block is not None:
                channels.extend(node.mb_block.channels())
        return tuple(channels)

    def channel_occupancies(self) -> dict[str, int]:
        return {ch.name: ch.occupancy for ch in self.all_channels()}

    def lockstep_signature(self) -> tuple:
        """Structural grouping key (the K-CPU face of
        :func:`repro.sysgen.batched.lockstep_signature`): topology
        wiring plus each node's model signature."""
        from repro.sysgen.batched import lockstep_signature as model_sig

        return (
            "multicpu",
            self.topology.signature(),
            tuple(
                model_sig(node.model) if node.model is not None else None
                for node in self.nodes
            ),
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self, cycles: int = 1,
             skip_cpus: frozenset[int] | set[int] = frozenset()) -> None:
        """Advance the whole system per-cycle (the reference ordering:
        CPUs in node order, then models).

        ``skip_cpus`` gates the named node indices off the clock for
        these cycles — the ``node_stall`` fault model: a stalled
        processor's local clock freezes while the rest of the system
        runs on.
        """
        cpus = self.cpus
        models = self._models
        for _ in range(cycles):
            if skip_cpus:
                for index, cpu in enumerate(cpus):
                    if index not in skip_cpus and not cpu.halted:
                        cpu.tick()
            else:
                for cpu in cpus:
                    if not cpu.halted:
                        cpu.tick()
            for m in models:
                m.step()
            self._cycle += 1

    def run(
        self,
        until: int | None = None,
        *,
        policy: RunPolicy | None = None,
    ) -> MultiCoSimResult:
        """Run until every CPU exits (or the global cycle budget).

        Mirrors :meth:`CoSimulation.run`: ``until`` is this call's
        global-cycle budget, ``policy`` overrides wall-clock budget,
        fast-forward mode and watchdog window for the call.
        """
        if policy is None:
            policy = RunPolicy()
        wall_timeout_s = policy.wall_timeout_s
        budget = policy.budget(until)

        override = (policy.fast_forward is not None
                    or policy.verify_fast_forward is not None
                    or policy.deadlock_window is not None)
        if not override:
            return self._run(budget, wall_timeout_s)
        saved_ff = self.fast_forward
        saved_vff = self.verify_fast_forward
        had_window = "DEADLOCK_WINDOW" in self.__dict__
        saved_window = self.DEADLOCK_WINDOW
        if policy.fast_forward is not None:
            self.fast_forward = policy.fast_forward
        if policy.verify_fast_forward is not None:
            self.verify_fast_forward = policy.verify_fast_forward
        if policy.deadlock_window is not None:
            if policy.deadlock_window < 1:
                raise ValueError("deadlock_window must be >= 1")
            self.DEADLOCK_WINDOW = policy.deadlock_window
        try:
            return self._run(budget, wall_timeout_s)
        finally:
            self.fast_forward = saved_ff
            self.verify_fast_forward = saved_vff
            if policy.deadlock_window is not None:
                if had_window:
                    self.DEADLOCK_WINDOW = saved_window
                else:
                    del self.__dict__["DEADLOCK_WINDOW"]

    def _run(self, max_cycles: int,
             wall_timeout_s: float | None) -> MultiCoSimResult:
        telemetry = self.telemetry
        events = telemetry.bus if telemetry is not None else None
        cpus = self.cpus
        models = self._models
        fast = self.fast_forward or self.verify_fast_forward
        verify = self.verify_fast_forward
        stores_touch_hw = self._stores_touch_hw
        if wall_timeout_s is None:
            wall_timeout_s = _environment._default_wall_timeout

        start = time.perf_counter()
        deadline = None if wall_timeout_s is None else start + wall_timeout_s
        cycles = 0
        window = self.DEADLOCK_WINDOW
        cycle0 = self._cycle
        # Watchdog boundaries stay absolute-window-aligned (see
        # CoSimulation._run) so a checkpoint-restored continuation
        # checks at exactly the cycles an uninterrupted run would.
        next_check = window - cycle0 % window
        baseline = [
            (cpu.cycle, cpu.stats.instructions, cpu.stats.stall_cycles)
            for cpu in cpus
        ]

        active = [cpu for cpu in cpus if not cpu.halted]
        hw_idle = False
        fsl_ops = sum(c.stats.fsl_puts + c.stats.fsl_gets for c in cpus)
        stores = sum(c.stats.stores for c in cpus)

        while active and cycles < max_cycles:
            if fast:
                if hw_idle:
                    hw_horizon = ADVANCE_FOREVER
                elif models:
                    hw_horizon = min(m.idle_horizon() for m in models)
                    hw_idle = hw_horizon >= ADVANCE_FOREVER
                else:
                    hw_horizon = ADVANCE_FOREVER
                    hw_idle = True
                if hw_horizon > 0:
                    skip = min(
                        min(cpu.advance_horizon() for cpu in active),
                        hw_horizon,
                        next_check - cycles,
                        max_cycles - cycles,
                    )
                    if skip > 0:
                        if verify:
                            self._skip_checked(skip, active)
                        else:
                            for cpu in active:
                                cpu.advance(skip)
                            for m in models:
                                m.fast_forward(skip)
                        cycles += skip
                        self._cycle += skip
                        if events is not None:
                            events.emit(TelemetryEvent(
                                FAST_FORWARD, self._cycle, COSIM_TRACK, skip
                            ))
                        if cycles >= next_check:
                            if deadline is not None and \
                                    time.perf_counter() >= deadline:
                                self._raise_timeout(wall_timeout_s, cycles)
                            if self._no_progress(cycle0 + cycles, window,
                                                 active):
                                self._raise_deadlock(window)
                            next_check = cycles + window
                        continue
            halted_now = False
            for cpu in active:
                cpu.tick()
                if cpu.halted:
                    halted_now = True
            if hw_idle:
                ops = sum(c.stats.fsl_puts + c.stats.fsl_gets for c in cpus)
                st = sum(c.stats.stores for c in cpus)
                if ops != fsl_ops or (stores_touch_hw and st != stores):
                    hw_idle = False
                fsl_ops = ops
                stores = st
                if hw_idle and not verify:
                    for m in models:
                        m.fast_forward(1)
                else:
                    for m in models:
                        m.step()
            else:
                for m in models:
                    m.step()
                fsl_ops = sum(c.stats.fsl_puts + c.stats.fsl_gets
                              for c in cpus)
                stores = sum(c.stats.stores for c in cpus)
            cycles += 1
            self._cycle += 1
            if halted_now:
                active = [cpu for cpu in active if not cpu.halted]
            if cycles >= next_check:
                if deadline is not None and time.perf_counter() >= deadline:
                    self._raise_timeout(wall_timeout_s, cycles)
                if active and self._no_progress(cycle0 + cycles, window,
                                                active):
                    self._raise_deadlock(window)
                next_check = cycles + window

        return self._finish(start, cycle0, baseline)

    def _no_progress(self, boundary: int, window: int,
                     active: list[CPU]) -> bool:
        """No *active* CPU retired an instruction within the last full
        window.  Retire cycles are per-CPU local clocks, which equal
        the global clock for every active CPU — so the comparison is
        exact and restore-transparent."""
        return (
            boundary >= 2 * window
            and max(cpu.stats.last_retire_cycle for cpu in active)
            <= boundary - window
        )

    def _skip_checked(self, skip: int, active: list[CPU]) -> None:
        """verify_fast_forward: run a would-be skipped window per-cycle
        and prove no CPU issued and no model moved."""
        instr_before = [cpu.stats.instructions for cpu in active]
        snapshot = [
            (
                m,
                [(p, len(p.samples), p.port.value) for p in m.probes],
                [
                    (b, {k: o.value for k, o in b.outputs.items()})
                    for b in m.blocks
                ],
            )
            for m in self._models
        ]
        models = self._models
        for _ in range(skip):
            for cpu in active:
                cpu.tick()
            for m in models:
                m.step()
        for cpu, before in zip(active, instr_before):
            if cpu.stats.instructions != before:
                raise FastForwardError(
                    f"{cpu.track}: an instruction retired inside a "
                    f"{skip}-cycle fast-forward window"
                )
        for m, probes, blocks in snapshot:
            for probe, n0, value in probes:
                tail = probe.samples[n0:]
                if len(tail) != skip or any(s != value for s in tail):
                    raise FastForwardError(
                        f"probe {probe.name!r} changed during a "
                        f"fast-forward window of model {m.name!r}"
                    )
            for block, outs in blocks:
                now = {k: o.value for k, o in block.outputs.items()}
                if now != outs:
                    raise FastForwardError(
                        f"block {block.name!r} outputs changed during a "
                        f"fast-forward window: {outs} -> {now}"
                    )

    def _finish(self, start: float, cycle0: int,
                baseline: list[tuple[int, int, int]]) -> MultiCoSimResult:
        wall = time.perf_counter() - start
        for cpu in self.cpus:
            if not cpu.halted:
                cpu.halted = True
                cpu.halt_reason = HaltReason.MAX_CYCLES
        per_cpu = []
        for cpu, (cyc0, instr0, stall0) in zip(self.cpus, baseline):
            run_cycles = cpu.cycle - cyc0
            per_cpu.append(CoSimResult(
                exit_code=cpu.exit_code,
                cycles=run_cycles,
                instructions=cpu.stats.instructions - instr0,
                stall_cycles=cpu.stats.stall_cycles - stall0,
                wall_seconds=wall,
                simulated_seconds=run_cycles / cpu.config.frequency_hz,
                halt_reason=cpu.halt_reason,
            ))
        run_cycles = self._cycle - cycle0
        frequency = self.cpus[0].config.frequency_hz
        return MultiCoSimResult(
            exit_code=self.exit_code,
            cycles=run_cycles,
            instructions=sum(r.instructions for r in per_cpu),
            stall_cycles=sum(r.stall_cycles for r in per_cpu),
            wall_seconds=wall,
            simulated_seconds=run_cycles / frequency,
            halt_reason=self.halt_reason,
            cpus=tuple(per_cpu),
        )

    def _raise_timeout(self, budget: float, cycles: int) -> None:
        pcs = ", ".join(f"{node.name}@{node.cpu.pc:#010x}"
                        for node in self.nodes)
        raise CoSimTimeout(
            f"multi-CPU co-simulation exceeded its {budget:.3f}s "
            f"wall-clock budget after {cycles} cycles ({pcs})"
        )

    def _raise_deadlock(self, window: int) -> None:
        if self.telemetry is not None:
            self.telemetry.bus.emit(TelemetryEvent(
                DEADLOCK, self._cycle, COSIM_TRACK, self.cpus[0].pc
            ))
        pcs = ", ".join(
            f"{node.name}@{node.cpu.pc:#010x}"
            f"{'(halted)' if node.cpu.halted else ''}"
            for node in self.nodes)
        raise CoSimDeadlock(
            f"no active CPU retired an instruction in {window} cycles "
            f"({pcs}); FSL occupancies: {self.channel_occupancies()}"
        )

    # ------------------------------------------------------------------
    # checkpointing / reuse
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Complete system state, JSON-safe: the global clock, every
        CPU (keyed by node name), every model, every link FIFO and
        every node-local peripheral channel set."""
        state = {
            "cycle": self._cycle,
            "cpus": {node.name: node.cpu.state_dict()
                     for node in self.nodes},
            "models": [m.state_dict() for m in self._models],
            "links": {name: ch.state_dict()
                      for name, ch in self.links.items()},
            "mb_channels": {
                node.name: node.mb_block.state_dict()
                for node in self.nodes if node.mb_block is not None
            },
        }
        if self.telemetry is not None:
            state["telemetry"] = self.telemetry.state_dict()
        return state

    def load_state(self, state: dict) -> None:
        names = {node.name for node in self.nodes}
        if set(state["cpus"]) != names:
            missing = names.symmetric_difference(state["cpus"])
            raise ValueError(
                "checkpoint CPU set does not match this system: "
                + ", ".join(sorted(missing)))
        if len(state["models"]) != len(self._models):
            raise ValueError(
                f"checkpoint has {len(state['models'])} models, "
                f"system has {len(self._models)}")
        if set(state["links"]) != set(self.links):
            missing = set(self.links).symmetric_difference(state["links"])
            raise ValueError(
                "checkpoint link set does not match this topology: "
                + ", ".join(sorted(missing)))
        self._cycle = int(state["cycle"])
        for node in self.nodes:
            node.cpu.load_state(state["cpus"][node.name])
        for model, payload in zip(self._models, state["models"]):
            model.load_state(payload)
        for name, channel in self.links.items():
            channel.load_state(state["links"][name])
        for node in self.nodes:
            if node.mb_block is not None:
                node.mb_block.load_state(state["mb_channels"][node.name])
        if self.telemetry is not None and "telemetry" in state:
            self.telemetry.load_state(state["telemetry"])

    def reset(self) -> None:
        """Per-CPU architectural reset (each clears its own sticky
        ``fsl.error``), program image reload, link/peripheral FIFO and
        statistics reset, model reset — a re-run must be byte-identical
        to a fresh system."""
        self._cycle = 0
        for node in self.nodes:
            node.cpu.reset(pc=node.program.entry)
            node.program.load_into(node.cpu.mem.bram)
            if node.model is not None:
                node.model.reset()
            if node.mb_block is not None:
                node.mb_block.reset(reset_stats=True)
        for channel in self.links.values():
            channel.reset(reset_stats=True)
        if self.telemetry is not None:
            self.telemetry.reset()
