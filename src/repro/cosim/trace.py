"""FSL transaction tracing for co-simulation runs.

Records every word crossing each FSL channel with its cycle, direction
and control bit — the bus-level visibility the paper's environment
gives the designer when debugging hardware/software partitions.

The tracer is a thin adapter over the telemetry event bus: channels
already emit :data:`~repro.telemetry.events.FSL_PUSH` /
:data:`~repro.telemetry.events.FSL_POP` events when a bus is attached,
so ``install()`` just subscribes — creating a private bus on channels
that have none.  When a :class:`~repro.telemetry.Telemetry` instance
will also be attached, attach it *before* installing the tracer so
both share one bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bus.fsl import FSLChannel
from repro.cosim.mb_block import MicroBlazeBlock
from repro.telemetry.events import (
    FSL_POP,
    FSL_PUSH,
    EventBus,
    TelemetryEvent,
)


@dataclass(frozen=True)
class Transaction:
    cycle: int
    channel: str
    direction: str  # 'push' or 'pop'
    data: int
    control: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "ctrl" if self.control else "data"
        return (f"[{self.cycle:8d}] {self.channel:<10} {self.direction:<4} "
                f"{kind} {self.data:#010x}")


@dataclass
class FSLTrace:
    """Subscribes to a channel owner's FSL channels to log transfers.

    The owner is anything exposing ``all_channels()`` (e.g. a
    :class:`~repro.cosim.multicpu.MultiCoSimulation`, covering every
    inter-CPU link and node-local channel) or ``channels()`` (the
    classic single :class:`MicroBlazeBlock`).
    """

    mb_block: MicroBlazeBlock  # or any object with (all_)channels()
    clock: Callable[[], int]  # returns the current cycle
    transactions: list[Transaction] = field(default_factory=list)
    _installed: bool = False
    _buses: list[EventBus] = field(default_factory=list)

    def _channels(self):
        owner = self.mb_block
        if hasattr(owner, "all_channels"):
            return owner.all_channels()
        return owner.channels()

    def install(self) -> "FSLTrace":
        if self._installed:
            return self
        for channel in self._channels():
            self._attach(channel)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if self._installed:
            for bus in self._buses:
                bus.unsubscribe(self._on_event)
            self._buses.clear()
            self._installed = False

    def _attach(self, channel: FSLChannel) -> None:
        if channel.events is None:
            channel.events = EventBus()
            channel.clock = self.clock
        if channel.events not in self._buses:
            channel.events.subscribe(self._on_event, kinds=(FSL_PUSH, FSL_POP))
            self._buses.append(channel.events)

    def _on_event(self, event: TelemetryEvent) -> None:
        self.transactions.append(Transaction(
            event.cycle,
            event.track,
            "push" if event.kind == FSL_PUSH else "pop",
            event.value,
            event.text == "ctrl",
        ))

    # ------------------------------------------------------------------
    def for_channel(self, name: str) -> list[Transaction]:
        return [t for t in self.transactions if t.channel == name]

    def pushes(self) -> list[Transaction]:
        return [t for t in self.transactions if t.direction == "push"]

    def pops(self) -> list[Transaction]:
        return [t for t in self.transactions if t.direction == "pop"]

    def occupancy_timeline(self, name: str) -> list[tuple[int, int]]:
        """(cycle, occupancy-after-event) for one channel — shows FIFO
        pressure over time."""
        out: list[tuple[int, int]] = []
        depth = 0
        for t in self.for_channel(name):
            depth += 1 if t.direction == "push" else -1
            out.append((t.cycle, depth))
        return out

    def text(self, last: int | None = None) -> str:
        items = self.transactions if last is None else \
            self.transactions[-last:]
        return "\n".join(str(t) for t in items)
