"""FSL transaction tracing for co-simulation runs.

Records every word crossing each FSL channel with its cycle, direction
and control bit — the bus-level visibility the paper's environment
gives the designer when debugging hardware/software partitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.bus.fsl import FSLChannel
from repro.cosim.mb_block import MicroBlazeBlock


@dataclass(frozen=True)
class Transaction:
    cycle: int
    channel: str
    direction: str  # 'push' or 'pop'
    data: int
    control: bool

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        kind = "ctrl" if self.control else "data"
        return (f"[{self.cycle:8d}] {self.channel:<10} {self.direction:<4} "
                f"{kind} {self.data:#010x}")


@dataclass
class FSLTrace:
    """Wraps a MicroBlazeBlock's channels to log all transfers."""

    mb_block: MicroBlazeBlock
    clock: Callable[[], int]  # returns the current cycle
    transactions: list[Transaction] = field(default_factory=list)
    _installed: bool = False

    def install(self) -> "FSLTrace":
        if self._installed:
            return self
        for channel in self.mb_block.channels():
            self._wrap(channel)
        self._installed = True
        return self

    def _wrap(self, channel: FSLChannel) -> None:
        orig_push = channel.push
        orig_pop = channel.pop
        trace = self

        def push(data: int, control: bool = False) -> bool:
            ok = orig_push(data, control)
            if ok:
                trace.transactions.append(
                    Transaction(trace.clock(), channel.name, "push",
                                data & 0xFFFFFFFF, bool(control))
                )
            return ok

        def pop():
            word = orig_pop()
            if word is not None:
                trace.transactions.append(
                    Transaction(trace.clock(), channel.name, "pop",
                                word.data, word.control)
                )
            return word

        channel.push = push  # type: ignore[method-assign]
        channel.pop = pop  # type: ignore[method-assign]

    # ------------------------------------------------------------------
    def for_channel(self, name: str) -> list[Transaction]:
        return [t for t in self.transactions if t.channel == name]

    def pushes(self) -> list[Transaction]:
        return [t for t in self.transactions if t.direction == "push"]

    def pops(self) -> list[Transaction]:
        return [t for t in self.transactions if t.direction == "pop"]

    def occupancy_timeline(self, name: str) -> list[tuple[int, int]]:
        """(cycle, occupancy-after-event) for one channel — shows FIFO
        pressure over time."""
        out: list[tuple[int, int]] = []
        depth = 0
        for t in self.for_channel(name):
            depth += 1 if t.direction == "push" else -1
            out.append((t.cycle, depth))
        return out

    def text(self, last: int | None = None) -> str:
        items = self.transactions if last is None else \
            self.transactions[-last:]
        return "\n".join(str(t) for t in items)
